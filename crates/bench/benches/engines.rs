//! Criterion end-to-end benchmarks: one per evaluation setting, each
//! comparing the four engines on a representative query (caches warm, as
//! in the paper's measurement protocol).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::{lubm, qfed};
use lusail_core::Lusail;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;

fn engines(w: &lusail_benchdata::Workload) -> Vec<(&'static str, Arc<dyn FederatedEngine>)> {
    vec![
        ("lusail", Arc::new(Lusail::default())),
        ("fedx", Arc::new(FedX::default())),
        (
            "hibiscus",
            Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        ),
        (
            "splendid",
            Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
        ),
    ]
}

fn bench_lubm(c: &mut Criterion) {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    for qname in ["Q2", "Q4"] {
        let mut group = c.benchmark_group(format!("lubm4/{qname}"));
        group.sample_size(10);
        let query = &w.query(qname).query;
        for (name, engine) in engines(&w) {
            // Warm the caches once so the measurement matches the paper's
            // protocol (source selection cached).
            let _ = engine.run(&w.federation, query);
            group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
                b.iter(|| black_box(engine.run(&w.federation, query).len()))
            });
        }
        group.finish();
    }
}

fn bench_qfed(c: &mut Criterion) {
    let w = qfed::generate(&qfed::QfedConfig::default());
    for qname in ["C2P2", "C2P2B", "Drug"] {
        let mut group = c.benchmark_group(format!("qfed/{qname}"));
        group.sample_size(10);
        let query = &w.query(qname).query;
        for (name, engine) in engines(&w) {
            let _ = engine.run(&w.federation, query);
            group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
                b.iter(|| black_box(engine.run(&w.federation, query).len()))
            });
        }
        group.finish();
    }
}

fn bench_lusail_phases(c: &mut Criterion) {
    // Ablation bench: LADE on vs off on a query where grouping matters.
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let q2 = &w.query("Q2").query;
    let mut group = c.benchmark_group("ablation/lade_q2");
    group.sample_size(10);
    let lade = Lusail::default();
    let _ = lade.run(&w.federation, q2);
    group.bench_function("with_lade", |b| {
        b.iter(|| black_box(lade.run(&w.federation, q2).len()))
    });
    let nolade = Lusail::new(lusail_core::LusailConfig {
        disable_lade: true,
        ..Default::default()
    });
    let _ = nolade.run(&w.federation, q2);
    group.bench_function("without_lade", |b| {
        b.iter(|| black_box(nolade.run(&w.federation, q2).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_lubm, bench_qfed, bench_lusail_phases);
criterion_main!(benches);
