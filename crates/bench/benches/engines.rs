//! End-to-end benchmarks: one per evaluation setting, each comparing the
//! four engines on a representative query (caches warm, as in the paper's
//! measurement protocol).
//!
//! Runs as a plain harness (`harness = false`): each benchmark times a
//! fixed number of iterations with `std::time::Instant` and prints the
//! median, so the suite needs no external benchmarking crate.

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::{lubm, qfed};
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::FederatedEngine;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 10;

/// Times `f` over [`SAMPLES`] runs and prints `label: median (min..max)`.
fn bench(label: &str, mut f: impl FnMut() -> usize) {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{label:<40} {:>9.3} ms  ({:.3} .. {:.3})",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1]
    );
}

fn engines(w: &lusail_benchdata::Workload) -> Vec<(&'static str, Arc<dyn FederatedEngine>)> {
    vec![
        ("lusail", Arc::new(Lusail::default())),
        ("fedx", Arc::new(FedX::default())),
        (
            "hibiscus",
            Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        ),
        (
            "splendid",
            Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
        ),
    ]
}

fn bench_lubm() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    for qname in ["Q2", "Q4"] {
        let query = &w.query(qname).query;
        for (name, engine) in engines(&w) {
            // Warm the caches once so the measurement matches the paper's
            // protocol (source selection cached).
            let _ = engine.run_with(&w.federation, query, &ExecOptions::default());
            bench(&format!("lubm4/{qname}/{name}"), || {
                engine
                    .run_with(&w.federation, query, &ExecOptions::default())
                    .expect("non-empty federation")
                    .solutions
                    .len()
            });
        }
    }
}

fn bench_qfed() {
    let w = qfed::generate(&qfed::QfedConfig::default());
    for qname in ["C2P2", "C2P2B", "Drug"] {
        let query = &w.query(qname).query;
        for (name, engine) in engines(&w) {
            let _ = engine.run_with(&w.federation, query, &ExecOptions::default());
            bench(&format!("qfed/{qname}/{name}"), || {
                engine
                    .run_with(&w.federation, query, &ExecOptions::default())
                    .expect("non-empty federation")
                    .solutions
                    .len()
            });
        }
    }
}

fn bench_lusail_phases() {
    // Ablation bench: LADE on vs off on a query where grouping matters.
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let q2 = &w.query("Q2").query;
    let lade = Lusail::default();
    let _ = lade.run_with(&w.federation, q2, &ExecOptions::default());
    bench("ablation/lade_q2/with_lade", || {
        lade.run_with(&w.federation, q2, &ExecOptions::default())
            .expect("non-empty federation")
            .solutions
            .len()
    });
    let nolade = Lusail::new(lusail_core::LusailConfig {
        disable_lade: true,
        ..Default::default()
    });
    let _ = nolade.run_with(&w.federation, q2, &ExecOptions::default());
    bench("ablation/lade_q2/without_lade", || {
        nolade
            .run_with(&w.federation, q2, &ExecOptions::default())
            .expect("non-empty federation")
            .solutions
            .len()
    });
}

fn main() {
    bench_lubm();
    bench_qfed();
    bench_lusail_phases();
}
