//! Micro-benchmarks for the substrate components: store pattern scans,
//! SPARQL parsing/writing, solution joins, and the LADE analysis passes.
//!
//! Runs as a plain harness (`harness = false`): each benchmark times a
//! fixed number of iterations with `std::time::Instant` and prints the
//! median, so the suite needs no external benchmarking crate.

use lusail_core::cache::{KeyedCache, ProbeCache};
use lusail_core::exec::Net;
use lusail_core::gjv::detect_gjvs;
use lusail_core::source_selection::select_sources;
use lusail_rdf::{Dictionary, Term, TermId};
use lusail_sparql::{parse_query, write_query, SolutionSet};
use lusail_store::TripleStore;
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 20;

/// Times `f` over [`SAMPLES`] runs and prints `label: median (min..max)`.
fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{label:<40} {:>10.1} µs  ({:.1} .. {:.1})",
        times[times.len() / 2],
        times[0],
        times[times.len() - 1]
    );
}

fn store_with_triples(n: usize) -> TripleStore {
    let dict = Dictionary::shared();
    let mut st = TripleStore::new(dict);
    for i in 0..n {
        st.insert_terms(
            &Term::iri(format!("http://b/s{}", i % (n / 10).max(1))),
            &Term::iri(format!("http://b/p{}", i % 8)),
            &Term::iri(format!("http://b/o{i}")),
        );
    }
    st
}

fn bench_store() {
    for n in [10_000usize, 100_000] {
        let st = store_with_triples(n);
        let p = st.dict().lookup(&Term::iri("http://b/p3")).unwrap();
        bench(&format!("store/scan_by_predicate/{n}"), || {
            let mut count = 0u64;
            st.scan(None, Some(p), None, |_| {
                count += 1;
                true
            });
            count
        });
        let s = st.dict().lookup(&Term::iri("http://b/s1")).unwrap();
        bench(&format!("store/scan_by_subject/{n}"), || {
            st.matches(Some(s), None, None).len()
        });
    }
}

fn bench_sparql() {
    let dict = Dictionary::new();
    let text = "PREFIX ub: <http://lubm.org/ub#> \
                SELECT ?x ?y ?z WHERE { \
                ?x a ub:GraduateStudent . ?y a ub:Professor . ?z a ub:Course . \
                ?x ub:advisor ?y . ?y ub:teacherOf ?z . ?x ub:takesCourse ?z . \
                FILTER (?x != ?y) OPTIONAL { ?x ub:name ?n } }";
    bench("sparql/parse", || parse_query(text, &dict).unwrap());
    let q = parse_query(text, &dict).unwrap();
    bench("sparql/write", || write_query(&q, &dict));
}

fn solutions(n: usize, vars: [&str; 2], stride: u32) -> SolutionSet {
    SolutionSet {
        vars: vars.iter().map(|s| s.to_string()).collect(),
        rows: (0..n as u32)
            .map(|i| vec![Some(TermId(i)), Some(TermId(i * stride))])
            .collect(),
    }
}

fn bench_join() {
    for n in [1_000usize, 50_000] {
        let a = solutions(n, ["x", "y"], 2);
        let b = solutions(n, ["y", "z"], 1);
        bench(&format!("join/hash_join/{n}"), || a.hash_join(&b).len());
        bench(&format!("join/par_hash_join/{n}"), || {
            lusail_core::join::par_hash_join(&a, &b, 4, 4, 10_000).len()
        });
    }
}

fn bench_lade() {
    let w = lusail_benchdata::lubm::generate(&lusail_benchdata::lubm::LubmConfig::new(4));
    let q4 = &w.query("Q4").query;
    let net = Net::default();
    bench("lade/source_selection_cold", || {
        let cache = ProbeCache::new(true);
        select_sources(&w.federation, &q4.pattern, &cache, &net)
    });
    let ask_cache = ProbeCache::new(true);
    let sources = select_sources(&w.federation, &q4.pattern, &ask_cache, &net);
    bench("lade/gjv_detection_cold", || {
        let check_cache = KeyedCache::new(true);
        detect_gjvs(
            &w.federation,
            &q4.pattern.triples,
            &sources,
            &check_cache,
            &net,
        )
    });
    let check_cache = KeyedCache::new(true);
    let analysis = detect_gjvs(
        &w.federation,
        &q4.pattern.triples,
        &sources,
        &check_cache,
        &net,
    );
    bench("lade/decompose", || {
        lusail_core::decompose::decompose(&q4.pattern.triples, &sources, &analysis)
    });
}

fn main() {
    bench_store();
    bench_sparql();
    bench_join();
    bench_lade();
}
