//! Criterion micro-benchmarks for the substrate components: store pattern
//! scans, SPARQL parsing/writing, solution joins, and the LADE analysis
//! passes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lusail_core::cache::{KeyedCache, ProbeCache};
use lusail_core::exec::RequestHandler;
use lusail_core::gjv::detect_gjvs;
use lusail_core::source_selection::select_sources;
use lusail_rdf::{Dictionary, Term, TermId};
use lusail_sparql::{parse_query, write_query, SolutionSet};
use lusail_store::TripleStore;

fn store_with_triples(n: usize) -> TripleStore {
    let dict = Dictionary::shared();
    let mut st = TripleStore::new(dict);
    for i in 0..n {
        st.insert_terms(
            &Term::iri(format!("http://b/s{}", i % (n / 10).max(1))),
            &Term::iri(format!("http://b/p{}", i % 8)),
            &Term::iri(format!("http://b/o{i}")),
        );
    }
    st
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for n in [10_000usize, 100_000] {
        let st = store_with_triples(n);
        let p = st.dict().lookup(&Term::iri("http://b/p3")).unwrap();
        group.bench_with_input(BenchmarkId::new("scan_by_predicate", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0u64;
                st.scan(None, Some(p), None, |_| {
                    count += 1;
                    true
                });
                black_box(count)
            })
        });
        let s = st.dict().lookup(&Term::iri("http://b/s1")).unwrap();
        group.bench_with_input(BenchmarkId::new("scan_by_subject", n), &n, |b, _| {
            b.iter(|| black_box(st.matches(Some(s), None, None).len()))
        });
    }
    group.finish();
}

fn bench_sparql(c: &mut Criterion) {
    let dict = Dictionary::new();
    let text = "PREFIX ub: <http://lubm.org/ub#> \
                SELECT ?x ?y ?z WHERE { \
                ?x a ub:GraduateStudent . ?y a ub:Professor . ?z a ub:Course . \
                ?x ub:advisor ?y . ?y ub:teacherOf ?z . ?x ub:takesCourse ?z . \
                FILTER (?x != ?y) OPTIONAL { ?x ub:name ?n } }";
    c.bench_function("sparql/parse", |b| {
        b.iter(|| black_box(parse_query(text, &dict).unwrap()))
    });
    let q = parse_query(text, &dict).unwrap();
    c.bench_function("sparql/write", |b| {
        b.iter(|| black_box(write_query(&q, &dict)))
    });
}

fn solutions(n: usize, vars: [&str; 2], stride: u32) -> SolutionSet {
    SolutionSet {
        vars: vars.iter().map(|s| s.to_string()).collect(),
        rows: (0..n as u32)
            .map(|i| vec![Some(TermId(i)), Some(TermId(i * stride))])
            .collect(),
    }
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    for n in [1_000usize, 50_000] {
        let a = solutions(n, ["x", "y"], 2);
        let b = solutions(n, ["y", "z"], 1);
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |bch, _| {
            bch.iter(|| black_box(a.hash_join(&b).len()))
        });
        group.bench_with_input(BenchmarkId::new("par_hash_join", n), &n, |bch, _| {
            bch.iter(|| {
                black_box(lusail_core::join::par_hash_join(&a, &b, 4, 10_000).len())
            })
        });
    }
    group.finish();
}

fn bench_lade(c: &mut Criterion) {
    let w = lusail_benchdata::lubm::generate(&lusail_benchdata::lubm::LubmConfig::new(4));
    let q4 = &w.query("Q4").query;
    let handler = RequestHandler::new();
    c.bench_function("lade/source_selection_cold", |b| {
        b.iter(|| {
            let cache = ProbeCache::new(true);
            black_box(select_sources(&w.federation, &q4.pattern, &cache, &handler))
        })
    });
    let ask_cache = ProbeCache::new(true);
    let sources = select_sources(&w.federation, &q4.pattern, &ask_cache, &handler);
    c.bench_function("lade/gjv_detection_cold", |b| {
        b.iter(|| {
            let check_cache = KeyedCache::new(true);
            black_box(detect_gjvs(
                &w.federation,
                &q4.pattern.triples,
                &sources,
                &check_cache,
                &handler,
            ))
        })
    });
    let check_cache = KeyedCache::new(true);
    let analysis = detect_gjvs(&w.federation, &q4.pattern.triples, &sources, &check_cache, &handler);
    c.bench_function("lade/decompose", |b| {
        b.iter(|| {
            black_box(lusail_core::decompose::decompose(
                &q4.pattern.triples,
                &sources,
                &analysis,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_store, bench_sparql, bench_join, bench_lade
}
criterion_main!(benches);
