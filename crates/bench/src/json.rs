//! A minimal JSON value with insertion-ordered objects, a stable
//! serializer, and a parser — just enough for the benchmark harness to
//! emit schema-stable reports and re-read committed baselines, without
//! pulling a serialization dependency into the workspace.
//!
//! Serialization is deterministic: object keys keep insertion order,
//! indentation is fixed at two spaces, and numbers render through Rust's
//! standard formatting (shortest round-trippable form for floats). Two
//! structurally equal values therefore serialize byte-identically — the
//! property the harness's determinism self-test and the regression gate
//! in `scripts/verify.sh` are built on.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (every harness counter).
    U64(u64),
    /// A float (wall-clock milliseconds).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) a key in an object value. Panics on
    /// non-objects — harness bug, not data.
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Object(entries) = self else {
            panic!("set on non-object");
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`; integer values widen.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's array elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn peek(bytes: &[u8], pos: &mut usize) -> Option<u8> {
    skip_ws(bytes, pos);
    bytes.get(*pos).copied()
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match peek(bytes, pos).ok_or("unexpected end of input")? {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Value::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Value::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Value::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    if peek(bytes, pos) == Some(b'}') {
        *pos += 1;
        return Ok(Value::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        match peek(bytes, pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    if peek(bytes, pos) == Some(b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        match peek(bytes, pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos).copied().ok_or("unterminated string")? {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos).copied().ok_or("unterminated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    c => return Err(format!("bad escape '\\{}' at byte {pos}", c as char)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let mut doc = Value::object();
        doc.set("schema", Value::Str("lusail-bench/v1".into()));
        doc.set("count", Value::U64(12345));
        doc.set("ms", Value::F64(1.5));
        doc.set("ok", Value::Bool(true));
        doc.set(
            "items",
            Value::Array(vec![Value::U64(1), Value::Null, Value::Str("a\"b".into())]),
        );
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // Serialization is stable: rendering the parse re-produces the text.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn set_replaces_and_get_finds() {
        let mut obj = Value::object();
        obj.set("k", Value::U64(1));
        obj.set("k", Value::U64(2));
        assert_eq!(obj.get("k").and_then(Value::as_u64), Some(2));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn numbers_pick_integer_or_float() {
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("-3").unwrap(), Value::F64(-3.0));
    }
}
