//! The deterministic benchmark suite behind the `lusail-bench` binary.
//!
//! One suite run executes the LUBM, QFed, and Bio2RDF workloads against
//! all four engines, under an instant federation, an accounting-only
//! WAN profile (virtual latency, no real sleeps), and — on LUBM only — a
//! real-sleep WAN profile whose wall times expose what parallel dispatch
//! overlaps, in two configurations:
//!
//! * **baseline** — store-side triple-pattern reordering off, Lusail's
//!   adaptive `VALUES` sizing off (the pre-optimization engine);
//! * **optimized** — both on (the defaults);
//! * **stats** — the optimized settings plus offline characteristic-set
//!   statistics ([`lusail_store::EndpointStats`]) attached to every
//!   endpoint, so Lusail's planner answers conclusive ASK/COUNT/check
//!   probes locally instead of crossing the wire (the baselines ignore
//!   the statistics — their runs double as an inertness control).
//!
//! Every run records two kinds of measurement:
//!
//! * **wall-clock stats** (median / p95 over N iterations) — honest but
//!   machine-dependent, excluded from determinism comparisons;
//! * **work counters** — wire requests by kind, bytes, store rows
//!   scanned, `VALUES` blocks/bindings, join probe rows, virtual network
//!   time — all sourced from `StatsSnapshot` windows and the structured
//!   trace, and exactly reproducible for a given seed.
//!
//! [`check_gate`] encodes the regression contract `scripts/verify.sh`
//! enforces: on LUBM and QFed the optimized Lusail configuration must
//! scan strictly fewer store rows than baseline without issuing more
//! wire requests.

use crate::json::Value;
use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::{bio2rdf, lubm, qfed, Workload};
use lusail_core::{Lusail, LusailConfig, QueryTrace, RequestKind, TraceSink};
use lusail_endpoint::{ExecOptions, FederatedEngine, ManualClock, NetworkProfile, StatsSnapshot};
use lusail_store::BackendKind;
use std::time::{Duration, Instant};

/// Schema tag stamped into every report.
pub const SCHEMA: &str = "lusail-bench/v1";

/// The workload axis.
pub const WORKLOADS: [&str; 3] = ["lubm", "qfed", "bio2rdf"];

/// The network-profile axis: an instant federation, an accounting-only
/// WAN (40 ms RTT, 10 Mbit/s — virtual time only, no real sleeps), and a
/// scaled-down WAN that *really* sleeps (0.3 ms per request) so wall
/// times reflect wire latency that parallel dispatch can overlap. The
/// real-sleep profile only runs on the LUBM workload to bound suite
/// runtime (the bound-join baselines issue thousands of requests).
pub const PROFILES: [&str; 3] = ["instant", "wan-sim", "wan-real"];

/// The configuration axis (see module docs).
pub const CONFIGS: [&str; 3] = ["baseline", "optimized", "stats"];

/// The engine axis.
pub const ENGINES: [&str; 4] = ["Lusail", "FedX", "HiBISCuS", "SPLENDID"];

/// The storage-backend axis: every endpoint's triples materialized into
/// the mutable BTree index store or the compressed sorted-column store
/// (see [`lusail_store::BackendKind`]). Backends are required to be
/// observationally identical in results — [`check_gate`] enforces
/// identical rows and completeness per run and no more scanned rows or
/// wire requests in aggregate, and the `footprint` section's
/// triples-per-resident-byte ratio must favor columns by at least
/// [`FOOTPRINT_RATIO_FLOOR`]×.
pub const BACKENDS: [&str; 2] = ["btree", "columns"];

/// The minimum btree/columns resident-byte ratio the gate demands of the
/// report's `footprint` section (columnar must pack at least this many
/// times more triples per resident byte).
pub const FOOTPRINT_RATIO_FLOOR: f64 = 5.0;

/// Options for one suite run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Wall-clock iterations per run (median/p95 are over these).
    pub iters: usize,
    /// Seed folded into every workload generator's seed.
    pub seed: u64,
    /// Drive Lusail's internal phase clock from a manual clock so engine
    /// timing metrics are frozen (counters are deterministic either way).
    pub fixed_clock: bool,
    /// Workload filter (empty = all of [`WORKLOADS`]).
    pub workloads: Vec<String>,
    /// Query-name filter (empty = all queries of each workload).
    pub queries: Vec<String>,
    /// Worker budgets to run each query at (empty = just 1, today's
    /// sequential behavior). Every budget is a full run axis; counters
    /// must be byte-identical across budgets ([`check_thread_invariance`]).
    pub threads: Vec<usize>,
    /// Storage-backend filter (empty = all of [`BACKENDS`]).
    pub backends: Vec<String>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            iters: 3,
            seed: 0,
            fixed_clock: false,
            workloads: Vec::new(),
            queries: Vec::new(),
            threads: Vec::new(),
            backends: Vec::new(),
        }
    }
}

impl SuiteOptions {
    fn wants_workload(&self, name: &str) -> bool {
        self.workloads.is_empty() || self.workloads.iter().any(|w| w.eq_ignore_ascii_case(name))
    }

    fn wants_query(&self, name: &str) -> bool {
        self.queries.is_empty() || self.queries.iter().any(|q| q.eq_ignore_ascii_case(name))
    }

    fn thread_list(&self) -> Vec<usize> {
        if self.threads.is_empty() {
            vec![1]
        } else {
            self.threads.clone()
        }
    }

    fn wants_backend(&self, name: &str) -> bool {
        self.backends.is_empty() || self.backends.iter().any(|b| b.eq_ignore_ascii_case(name))
    }
}

/// The accounting-only WAN profile: virtual latency and bandwidth are
/// charged into `virtual_time_ns` deterministically, nothing sleeps.
fn wan_sim() -> NetworkProfile {
    NetworkProfile {
        latency: Duration::from_millis(40),
        bandwidth_bytes_per_sec: Some(10 * 1_000_000 / 8),
        sleep: false,
    }
}

/// The real-sleep WAN profile: a scaled-down per-request latency that is
/// actually slept, so wall-clock medians feel wire time. Virtual-time
/// accounting uses the same formula as the sleep itself, so counters stay
/// byte-identical across worker budgets; only wall times move.
fn wan_real() -> NetworkProfile {
    NetworkProfile {
        latency: Duration::from_micros(300),
        bandwidth_bytes_per_sec: None,
        sleep: true,
    }
}

/// Builds one workload under one network profile, folding the suite seed
/// into the generator seed and materializing the endpoints' stores into
/// the requested storage backend.
fn build_workload(name: &str, profile: &str, seed: u64, backend: BackendKind) -> Workload {
    let profiles = |n: usize| match profile {
        "instant" => None,
        "wan-real" => Some(vec![wan_real(); n]),
        _ => Some(vec![wan_sim(); n]),
    };
    match name {
        "lubm" => {
            let mut cfg = lubm::LubmConfig::new(3);
            cfg.seed ^= seed;
            cfg.profiles = profiles(3);
            cfg.backend = backend;
            lubm::generate(&cfg)
        }
        "qfed" => {
            let mut cfg = qfed::QfedConfig::default();
            cfg.seed ^= seed;
            cfg.profiles = profiles(4);
            cfg.backend = backend;
            qfed::generate(&cfg)
        }
        "bio2rdf" => {
            let mut cfg = bio2rdf::Bio2RdfConfig::default();
            cfg.seed ^= seed;
            cfg.profiles = profiles(5);
            cfg.backend = backend;
            bio2rdf::generate(&cfg)
        }
        other => panic!("unknown workload {other}"),
    }
}

/// Instantiates one engine for one run. Index-building baselines
/// preprocess the endpoint handles (offline phase, not counted in run
/// windows because the engine is built before the window opens).
fn build_engine(
    engine: &str,
    workload: &Workload,
    optimized: bool,
    fixed_clock: bool,
) -> Box<dyn FederatedEngine> {
    let refs = workload.endpoint_refs();
    match engine {
        "Lusail" => {
            let config = LusailConfig {
                adaptive_values: optimized,
                ..LusailConfig::default()
            };
            let mut lusail = Lusail::new(config);
            if fixed_clock {
                lusail = lusail.with_clock(ManualClock::new());
            }
            Box::new(lusail)
        }
        "FedX" => Box::new(FedX::default()),
        "HiBISCuS" => Box::new(HiBisCus::new(HibiscusIndex::build(&refs))),
        "SPLENDID" => Box::new(Splendid::new(VoidIndex::build(&refs))),
        other => panic!("unknown engine {other}"),
    }
}

/// One run's deterministic work counters.
struct Counters {
    window: StatsSnapshot,
    values_blocks: usize,
    values_bindings: usize,
    join_probe_rows: u64,
    trace_checks: u64,
    rows: usize,
    complete: bool,
}

fn counters_value(c: &Counters) -> Value {
    let mut v = Value::object();
    v.set("ask_requests", Value::U64(c.window.ask_requests));
    v.set("select_requests", Value::U64(c.window.select_requests));
    v.set("count_requests", Value::U64(c.window.count_requests));
    v.set("check_queries", Value::U64(c.trace_checks));
    v.set("total_requests", Value::U64(c.window.total_requests()));
    v.set("bytes_sent", Value::U64(c.window.bytes_sent));
    v.set("bytes_returned", Value::U64(c.window.bytes_returned));
    v.set("rows_returned", Value::U64(c.window.rows_returned));
    v.set("rows_scanned", Value::U64(c.window.rows_scanned));
    v.set("virtual_time_ns", Value::U64(c.window.virtual_time_ns));
    v.set("values_blocks", Value::U64(c.values_blocks as u64));
    v.set("values_bindings", Value::U64(c.values_bindings as u64));
    v.set("join_probe_rows", Value::U64(c.join_probe_rows));
    v
}

/// One traced run on a fresh engine: the counter window plus trace-derived
/// work totals.
fn traced_run(
    engine_name: &str,
    workload: &Workload,
    query: &lusail_sparql::Query,
    optimized: bool,
    fixed_clock: bool,
    threads: usize,
) -> Counters {
    let engine = build_engine(engine_name, workload, optimized, fixed_clock);
    let sink = TraceSink::enabled();
    let before = workload.federation.stats_snapshot();
    let opts = ExecOptions::default()
        .with_threads(threads)
        .with_trace(sink.clone());
    let outcome = engine
        .run_with(&workload.federation, query, &opts)
        .expect("bench federations are non-empty");
    let window = workload.federation.stats_snapshot().since(&before);
    let trace = QueryTrace::from_sink(&sink);
    let (values_blocks, values_bindings) = trace.values_batch_totals();
    Counters {
        window,
        values_blocks,
        values_bindings,
        join_probe_rows: trace.join_probe_rows(),
        trace_checks: trace.requests(RequestKind::Check).requests,
        rows: outcome.solutions.len(),
        complete: outcome.complete,
    }
}

/// Median and 95th percentile of wall times, in milliseconds.
fn wall_stats(mut ms: Vec<f64>) -> (f64, f64) {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ms[ms.len() / 2];
    let p95 = ms[((ms.len() * 95).div_ceil(100)).saturating_sub(1)];
    (median, p95)
}

/// Runs the full suite and returns the report document.
pub fn run_suite(opts: &SuiteOptions) -> Value {
    let thread_list = opts.thread_list();
    let mut runs: Vec<Value> = Vec::new();
    // Aggregated (rows_scanned, total_requests, select_requests) per
    // (workload, engine, config, backend), summed over profiles and
    // queries.
    let mut totals: Vec<(String, String, String, String, [u64; 3])> = Vec::new();

    for workload_name in WORKLOADS {
        if !opts.wants_workload(workload_name) {
            continue;
        }
        for profile in PROFILES {
            // The real-sleep profile only runs on LUBM (see PROFILES doc).
            if profile == "wan-real" && workload_name != "lubm" {
                continue;
            }
            for config in CONFIGS {
                for backend_name in BACKENDS {
                    if !opts.wants_backend(backend_name) {
                        continue;
                    }
                    let backend = BackendKind::parse(backend_name).expect("known backend");
                    let optimized = config != "baseline";
                    // A fresh federation per pass: counters start cold and the
                    // reorder flag applies to the whole pass.
                    let workload = build_workload(workload_name, profile, opts.seed, backend);
                    for ep in &workload.endpoints {
                        ep.store().set_reorder(optimized);
                    }
                    if config == "stats" {
                        // The offline phase: summaries built before any run
                        // window opens, so nothing of it leaks into counters.
                        for (id, ep) in workload.endpoints.iter().enumerate() {
                            workload.federation.attach_stats(
                                id,
                                std::sync::Arc::new(lusail_store::EndpointStats::build(ep.store())),
                            );
                        }
                    }
                    for engine_name in ENGINES {
                        for nq in &workload.queries {
                            if !opts.wants_query(&nq.name) {
                                continue;
                            }
                            for (ti, &threads) in thread_list.iter().enumerate() {
                                let counters = traced_run(
                                    engine_name,
                                    &workload,
                                    &nq.query,
                                    optimized,
                                    opts.fixed_clock,
                                    threads,
                                );
                                let exec = ExecOptions::default().with_threads(threads);
                                let mut ms = Vec::with_capacity(opts.iters.max(1));
                                for _ in 0..opts.iters.max(1) {
                                    let engine = build_engine(
                                        engine_name,
                                        &workload,
                                        optimized,
                                        opts.fixed_clock,
                                    );
                                    let start = Instant::now();
                                    let _ = engine
                                        .run_with(&workload.federation, &nq.query, &exec)
                                        .expect("bench federations are non-empty");
                                    ms.push(start.elapsed().as_secs_f64() * 1e3);
                                }
                                let (median, p95) = wall_stats(ms);

                                let mut run = Value::object();
                                run.set("workload", Value::Str(workload_name.into()));
                                run.set("profile", Value::Str(profile.into()));
                                run.set("config", Value::Str(config.into()));
                                run.set("backend", Value::Str(backend_name.into()));
                                run.set("engine", Value::Str(engine_name.into()));
                                run.set("query", Value::Str(nq.name.clone()));
                                run.set("threads", Value::U64(threads as u64));
                                run.set("rows", Value::U64(counters.rows as u64));
                                run.set("complete", Value::Bool(counters.complete));
                                run.set("counters", counters_value(&counters));
                                let mut wall = Value::object();
                                wall.set("median_ms", Value::F64(median));
                                wall.set("p95_ms", Value::F64(p95));
                                run.set("wall", wall);
                                runs.push(run);

                                // The aggregate totals feed the rows-scanned
                                // gate; count each query once (budgets are
                                // counter-identical by contract anyway).
                                if ti > 0 {
                                    continue;
                                }
                                let key = (
                                    workload_name.to_string(),
                                    engine_name.to_string(),
                                    config.to_string(),
                                    backend_name.to_string(),
                                );
                                let delta = [
                                    counters.window.rows_scanned,
                                    counters.window.total_requests(),
                                    counters.window.select_requests,
                                ];
                                match totals.iter_mut().find(|(w, e, c, b, _)| {
                                    (w, e, c, b) == (&key.0, &key.1, &key.2, &key.3)
                                }) {
                                    Some((_, _, _, _, sums)) => {
                                        for (s, d) in sums.iter_mut().zip(delta) {
                                            *s += d;
                                        }
                                    }
                                    None => totals.push((key.0, key.1, key.2, key.3, delta)),
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Fold the per-config totals into one aggregate row per
    // (workload, engine, backend).
    let mut aggregates: Vec<Value> = Vec::new();
    for workload_name in WORKLOADS {
        for engine_name in ENGINES {
            for backend_name in BACKENDS {
                let mut agg = Value::object();
                agg.set("workload", Value::Str(workload_name.into()));
                agg.set("engine", Value::Str(engine_name.into()));
                agg.set("backend", Value::Str(backend_name.into()));
                let mut present = false;
                for config in CONFIGS {
                    if let Some((_, _, _, _, sums)) = totals.iter().find(|(w, e, c, b, _)| {
                        w == workload_name && e == engine_name && c == config && b == backend_name
                    }) {
                        let mut side = Value::object();
                        side.set("rows_scanned", Value::U64(sums[0]));
                        side.set("total_requests", Value::U64(sums[1]));
                        side.set("select_requests", Value::U64(sums[2]));
                        agg.set(config, side);
                        present = true;
                    }
                }
                if present {
                    aggregates.push(agg);
                }
            }
        }
    }

    let mut doc = Value::object();
    doc.set("schema", Value::Str(SCHEMA.into()));
    doc.set("seed", Value::U64(opts.seed));
    doc.set("iters", Value::U64(opts.iters as u64));
    doc.set("fixed_clock", Value::Bool(opts.fixed_clock));
    doc.set(
        "threads",
        Value::Array(thread_list.iter().map(|&t| Value::U64(t as u64)).collect()),
    );
    doc.set(
        "backends",
        Value::Array(
            BACKENDS
                .iter()
                .filter(|b| opts.wants_backend(b))
                .map(|&b| Value::Str(b.into()))
                .collect(),
        ),
    );
    doc.set("runs", Value::Array(runs));
    doc.set("aggregates", Value::Array(aggregates));
    doc
}

/// Strips every wall-clock section from a report, leaving only the
/// deterministic parts: the byte-identical payload two same-seed runs
/// must agree on.
pub fn counters_section(doc: &Value) -> Value {
    fn strip(v: &Value) -> Value {
        match v {
            Value::Object(entries) => Value::Object(
                entries
                    .iter()
                    .filter(|(k, _)| k != "wall")
                    .map(|(k, v)| (k.clone(), strip(v)))
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.iter().map(strip).collect()),
            other => other.clone(),
        }
    }
    strip(doc)
}

/// The regression gate: on LUBM and QFed, Lusail's optimized
/// configuration must scan strictly fewer store rows than baseline and
/// issue no more wire requests, and the stats configuration must issue
/// *strictly fewer* wire requests than optimized (the probe-elision
/// claim) while leaving every run's result rows and completeness flag
/// unchanged (statistics may only elide work, never change answers).
///
/// When the report carries the storage-backend axis, the gate also holds
/// the columnar backend to its contract: every columnar run must report
/// the same rows and completeness as its BTree twin; in aggregate the
/// columnar Lusail side may scan no more rows and issue no more wire
/// requests than BTree; and, if a `footprint` section is present, the
/// BTree-to-columns resident-byte ratio on the measured store must be at
/// least [`FOOTPRINT_RATIO_FLOOR`]. The per-config Lusail conditions
/// above are read from the BTree side (reports predating the axis carry
/// no `backend` fields and are treated as all-BTree).
/// Returns the list of gate lines (for printing) on success.
pub fn check_gate(doc: &Value) -> Result<Vec<String>, String> {
    let aggregates = doc
        .get("aggregates")
        .and_then(Value::as_array)
        .ok_or("report has no aggregates section")?;
    // Legacy reports predate the backend axis: absent means btree.
    fn backend_of(v: &Value) -> &str {
        v.get("backend").and_then(Value::as_str).unwrap_or("btree")
    }
    let mut lines = Vec::new();
    for workload in ["lubm", "qfed"] {
        let lusail_on = |backend: &str| {
            aggregates.iter().find(|a| {
                a.get("workload").and_then(Value::as_str) == Some(workload)
                    && a.get("engine").and_then(Value::as_str) == Some("Lusail")
                    && backend_of(a) == backend
            })
        };
        let agg =
            lusail_on("btree").ok_or_else(|| format!("no Lusail aggregate for {workload}"))?;
        let side_of = |agg: &Value, config: &str, key: &str| -> Result<u64, String> {
            agg.get(config)
                .and_then(|s| s.get(key))
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing {config}.{key} for {workload}"))
        };
        let side = |config: &str, key: &str| side_of(agg, config, key);
        let base_scanned = side("baseline", "rows_scanned")?;
        let opt_scanned = side("optimized", "rows_scanned")?;
        let base_requests = side("baseline", "total_requests")?;
        let opt_requests = side("optimized", "total_requests")?;
        if opt_scanned >= base_scanned {
            return Err(format!(
                "{workload}: optimized rows_scanned {opt_scanned} is not \
                 below baseline {base_scanned}"
            ));
        }
        if opt_requests > base_requests {
            return Err(format!(
                "{workload}: optimized total_requests {opt_requests} exceeds \
                 baseline {base_requests}"
            ));
        }
        let stats_requests = side("stats", "total_requests")?;
        if stats_requests >= opt_requests {
            return Err(format!(
                "{workload}: stats total_requests {stats_requests} is not \
                 below optimized {opt_requests} — statistics elided nothing"
            ));
        }
        lines.push(format!(
            "{workload}/Lusail: rows_scanned {base_scanned} -> {opt_scanned}, \
             requests {base_requests} -> {opt_requests} -> {stats_requests} (stats)"
        ));

        // The columnar twin, when the report carries the backend axis:
        // exact estimates may only help the planner, so the columnar
        // aggregate must scan no more rows and issue no more requests.
        if let Some(cols) = lusail_on("columns") {
            let col_scanned = side_of(cols, "optimized", "rows_scanned")?;
            let col_requests = side_of(cols, "optimized", "total_requests")?;
            if col_scanned > opt_scanned {
                return Err(format!(
                    "{workload}: columnar optimized rows_scanned {col_scanned} \
                     exceeds the BTree side's {opt_scanned}"
                ));
            }
            if col_requests > opt_requests {
                return Err(format!(
                    "{workload}: columnar optimized total_requests {col_requests} \
                     exceeds the BTree side's {opt_requests}"
                ));
            }
            lines.push(format!(
                "{workload}/Lusail columns: rows_scanned {opt_scanned} -> \
                 {col_scanned}, requests {opt_requests} -> {col_requests}"
            ));
        }
    }

    // Results must be untouched by elision: every stats run reports the
    // same rows and completeness as its optimized twin. (Reports that
    // carry only aggregates — e.g. synthetic gate inputs — skip this.)
    if let Some(runs) = doc.get("runs").and_then(Value::as_array) {
        let identity = |run: &Value| -> String {
            let mut id = ["workload", "profile", "engine", "query"]
                .iter()
                .map(|k| run.get(k).and_then(Value::as_str).unwrap_or("?"))
                .collect::<Vec<_>>()
                .join("/");
            let threads = run.get("threads").and_then(Value::as_u64).unwrap_or(1);
            id.push_str(&format!("/{}/t{threads}", backend_of(run)));
            id
        };
        for run in runs {
            if run.get("config").and_then(Value::as_str) != Some("stats") {
                continue;
            }
            let id = identity(run);
            let twin = runs
                .iter()
                .find(|r| {
                    r.get("config").and_then(Value::as_str) == Some("optimized")
                        && identity(r) == id
                })
                .ok_or_else(|| format!("stats run {id} has no optimized twin"))?;
            for key in ["rows", "complete"] {
                let got = run.get(key).unwrap_or(&Value::Null).render();
                let want = twin.get(key).unwrap_or(&Value::Null).render();
                if got != want {
                    return Err(format!(
                        "stats run {id}: {key} diverged from the optimized \
                         twin ({got} vs {want}) — statistics changed results"
                    ));
                }
            }
        }

        // Backend identity in results: every columnar run must report the
        // same rows and completeness as its BTree twin (same workload,
        // profile, config, engine, query, and budget).
        let backend_identity = |run: &Value| -> String {
            let mut id = ["workload", "profile", "config", "engine", "query"]
                .iter()
                .map(|k| run.get(k).and_then(Value::as_str).unwrap_or("?"))
                .collect::<Vec<_>>()
                .join("/");
            let threads = run.get("threads").and_then(Value::as_u64).unwrap_or(1);
            id.push_str(&format!("/t{threads}"));
            id
        };
        for run in runs {
            if backend_of(run) != "columns" {
                continue;
            }
            let id = backend_identity(run);
            let twin = runs
                .iter()
                .find(|r| backend_of(r) == "btree" && backend_identity(r) == id)
                .ok_or_else(|| format!("columnar run {id} has no BTree twin"))?;
            for key in ["rows", "complete"] {
                let got = run.get(key).unwrap_or(&Value::Null).render();
                let want = twin.get(key).unwrap_or(&Value::Null).render();
                if got != want {
                    return Err(format!(
                        "columnar run {id}: {key} diverged from the BTree \
                         twin ({got} vs {want}) — backends changed results"
                    ));
                }
            }
        }
    }

    // The footprint gate: the measured resident bytes of the same triple
    // set on both backends must favor columns by the documented floor.
    if let Some(fp) = doc.get("footprint") {
        let field = |key: &str| -> Result<u64, String> {
            fp.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("footprint section is missing {key}"))
        };
        let triples = field("triples")?;
        let btree_bytes = field("btree_resident_bytes")?;
        let columns_bytes = field("columns_resident_bytes")?;
        if triples == 0 || columns_bytes == 0 {
            return Err("footprint section measured an empty store".into());
        }
        let ratio = btree_bytes as f64 / columns_bytes as f64;
        if ratio < FOOTPRINT_RATIO_FLOOR {
            return Err(format!(
                "footprint: columns holds only {ratio:.2}x more triples per \
                 resident byte than btree (floor {FOOTPRINT_RATIO_FLOOR}x) — \
                 {btree_bytes} vs {columns_bytes} bytes for {triples} triples"
            ));
        }
        lines.push(format!(
            "footprint: {triples} triples, btree {btree_bytes} B \
             ({:.1} B/triple), columns {columns_bytes} B ({:.1} B/triple), \
             ratio {ratio:.1}x >= {FOOTPRINT_RATIO_FLOOR}x",
            btree_bytes as f64 / triples as f64,
            columns_bytes as f64 / triples as f64,
        ));
    }

    // The serving gate: the closed-loop server benchmark (if present)
    // must show zero shedding below capacity and bounded-latency
    // shedding under overload. See crate::serve.
    lines.extend(crate::serve::check_serve_gate(doc)?);
    Ok(lines)
}

/// Compares the in-scope runs of a fresh report against a committed
/// baseline: every run present in both (same workload/profile/config/
/// engine/query identity) must have byte-identical counters, rows, and
/// completeness. Runs only in the baseline (out of the re-run's scope)
/// are ignored; a run in scope but missing from the baseline is an error.
pub fn compare_runs(fresh: &Value, baseline: &Value) -> Result<usize, String> {
    let identity = |run: &Value| -> String {
        let mut id = ["workload", "profile", "config", "engine", "query"]
            .iter()
            .map(|k| run.get(k).and_then(Value::as_str).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join("/");
        // Legacy baselines predate the threads and backend axes: absent
        // means 1 worker on the btree backend.
        let threads = run.get("threads").and_then(Value::as_u64).unwrap_or(1);
        let backend = run
            .get("backend")
            .and_then(Value::as_str)
            .unwrap_or("btree");
        id.push_str(&format!("/{backend}/t{threads}"));
        id
    };
    let fresh_runs = fresh
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("fresh report has no runs")?;
    let base_runs = baseline
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("baseline report has no runs")?;
    let mut compared = 0;
    for run in fresh_runs {
        let id = identity(run);
        let base = base_runs
            .iter()
            .find(|b| identity(b) == id)
            .ok_or_else(|| format!("run {id} missing from the committed baseline"))?;
        for key in ["rows", "complete", "counters"] {
            let got = counters_section(run.get(key).unwrap_or(&Value::Null)).render();
            let want = counters_section(base.get(key).unwrap_or(&Value::Null)).render();
            if got != want {
                return Err(format!(
                    "run {id}: {key} diverged from the committed baseline\n\
                     fresh:    {got}\
                     baseline: {want}"
                ));
            }
        }
        compared += 1;
    }
    if compared == 0 {
        return Err("no runs in scope — nothing compared".into());
    }
    Ok(compared)
}

/// The parallel-determinism gate: every run identity
/// (workload/profile/config/engine/query) that appears at more than one
/// worker budget must have byte-identical rows, completeness, and
/// counters across all of its budgets. Returns the number of cross-budget
/// comparisons made (0 when the report has a single budget).
pub fn check_thread_invariance(doc: &Value) -> Result<usize, String> {
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("report has no runs")?;
    let identity = |run: &Value| -> String {
        let mut id = ["workload", "profile", "config", "engine", "query"]
            .iter()
            .map(|k| run.get(k).and_then(Value::as_str).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join("/");
        let backend = run
            .get("backend")
            .and_then(Value::as_str)
            .unwrap_or("btree");
        id.push_str(&format!("/{backend}"));
        id
    };
    let payload = |run: &Value| -> String {
        ["rows", "complete", "counters"]
            .iter()
            .map(|k| counters_section(run.get(k).unwrap_or(&Value::Null)).render())
            .collect::<Vec<_>>()
            .join("")
    };
    let mut seen: Vec<(String, u64, String)> = Vec::new();
    let mut compared = 0;
    for run in runs {
        let id = identity(run);
        let threads = run.get("threads").and_then(Value::as_u64).unwrap_or(1);
        let got = payload(run);
        match seen.iter().find(|(i, _, _)| *i == id) {
            Some((_, base_threads, want)) => {
                if got != *want {
                    return Err(format!(
                        "run {id}: counters at threads={threads} diverge from                          threads={base_threads} — the parallel executor leaked                          nondeterminism into the work counters"
                    ));
                }
                compared += 1;
            }
            None => seen.push((id, threads, got)),
        }
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scope() -> SuiteOptions {
        SuiteOptions {
            iters: 1,
            seed: 7,
            fixed_clock: true,
            workloads: vec!["lubm".into()],
            queries: vec!["Q1".into(), "Q4".into()],
            threads: Vec::new(),
            backends: Vec::new(),
        }
    }

    #[test]
    fn thread_axis_runs_are_byte_identical_in_counters() {
        let mut opts = small_scope();
        opts.threads = vec![1, 4];
        let doc = run_suite(&opts);
        let n = check_thread_invariance(&doc).unwrap();
        assert!(n > 0, "two budgets must produce cross-budget comparisons");
        // Tamper with one run's counters: the gate must fail.
        let mut tampered = doc.clone();
        if let Some(Value::Array(mut runs)) = tampered.get("runs").cloned() {
            if let Some(run) = runs
                .iter_mut()
                .find(|r| r.get("threads").and_then(Value::as_u64) == Some(4))
            {
                if let Some(mut c) = run.get("counters").cloned() {
                    c.set("rows_scanned", Value::U64(u64::MAX));
                    run.set("counters", c);
                }
            }
            tampered.set("runs", Value::Array(runs));
        }
        assert!(check_thread_invariance(&tampered).is_err());
    }

    #[test]
    fn same_seed_runs_are_byte_identical_in_counters() {
        let opts = small_scope();
        let a = counters_section(&run_suite(&opts)).render();
        let b = counters_section(&run_suite(&opts)).render();
        assert_eq!(a, b, "counter sections must be byte-identical");
        // Sanity: the section really carries runs and no wall sections.
        assert!(a.contains("\"rows_scanned\""));
        assert!(!a.contains("\"median_ms\""));
    }

    #[test]
    fn compare_runs_accepts_self_and_flags_divergence() {
        let opts = small_scope();
        let doc = run_suite(&opts);
        let n = compare_runs(&doc, &doc).unwrap();
        assert!(n > 0);
        // Perturb one counter in a copy: the comparison must fail.
        let mut tampered = doc.clone();
        if let Some(Value::Array(mut runs)) = tampered.get("runs").cloned() {
            if let Some(run) = runs.first_mut() {
                if let Some(mut c) = run.get("counters").cloned() {
                    c.set("rows_scanned", Value::U64(u64::MAX));
                    run.set("counters", c);
                }
            }
            tampered.set("runs", Value::Array(runs));
        }
        assert!(compare_runs(&doc, &tampered).is_err());
    }

    #[test]
    fn gate_checks_lusail_aggregates() {
        // A synthetic report exercising all three gate conditions.
        let mk =
            |base_scanned: u64, opt_scanned: u64, base_req: u64, opt_req: u64, stats_req: u64| {
                let mut doc = Value::object();
                let mut aggs = Vec::new();
                for wl in ["lubm", "qfed"] {
                    let mut agg = Value::object();
                    agg.set("workload", Value::Str(wl.into()));
                    agg.set("engine", Value::Str("Lusail".into()));
                    for (config, scanned, req) in [
                        ("baseline", base_scanned, base_req),
                        ("optimized", opt_scanned, opt_req),
                        ("stats", opt_scanned, stats_req),
                    ] {
                        let mut side = Value::object();
                        side.set("rows_scanned", Value::U64(scanned));
                        side.set("total_requests", Value::U64(req));
                        side.set("select_requests", Value::U64(0));
                        agg.set(config, side);
                    }
                    aggs.push(agg);
                }
                doc.set("aggregates", Value::Array(aggs));
                doc
            };
        assert!(check_gate(&mk(100, 50, 10, 10, 9)).is_ok());
        assert!(check_gate(&mk(100, 100, 10, 10, 9)).is_err()); // no scan win
        assert!(check_gate(&mk(100, 50, 10, 11, 9)).is_err()); // request regress
        assert!(check_gate(&mk(100, 50, 10, 10, 10)).is_err()); // no elision

        // The run-level half: a stats run whose rows diverge from its
        // optimized twin must fail the gate even when aggregates pass.
        let mut doc = mk(100, 50, 10, 10, 9);
        let mut runs = Vec::new();
        for (config, rows) in [("optimized", 5u64), ("stats", 5u64)] {
            let mut run = Value::object();
            run.set("workload", Value::Str("lubm".into()));
            run.set("profile", Value::Str("instant".into()));
            run.set("config", Value::Str(config.into()));
            run.set("engine", Value::Str("Lusail".into()));
            run.set("query", Value::Str("Q1".into()));
            run.set("threads", Value::U64(1));
            run.set("rows", Value::U64(rows));
            run.set("complete", Value::Bool(true));
            runs.push(run);
        }
        doc.set("runs", Value::Array(runs.clone()));
        assert!(check_gate(&doc).is_ok());
        runs[1].set("rows", Value::U64(6));
        doc.set("runs", Value::Array(runs));
        assert!(
            check_gate(&doc).is_err(),
            "diverging stats rows must fail the gate"
        );
    }

    #[test]
    fn gate_checks_backend_twins_and_footprint() {
        // A synthetic report with both backend aggregates, a pair of
        // backend-twin runs, and a footprint section.
        let mk = |col_scanned: u64, col_req: u64, col_rows: u64, columns_bytes: u64| {
            let mut doc = Value::object();
            let mut aggs = Vec::new();
            for wl in ["lubm", "qfed"] {
                for (backend, scanned, req) in
                    [("btree", 50u64, 10u64), ("columns", col_scanned, col_req)]
                {
                    let mut agg = Value::object();
                    agg.set("workload", Value::Str(wl.into()));
                    agg.set("engine", Value::Str("Lusail".into()));
                    agg.set("backend", Value::Str(backend.into()));
                    for (config, s, r) in [
                        ("baseline", 100u64, 10u64),
                        ("optimized", scanned, req),
                        ("stats", scanned, r9(req)),
                    ] {
                        let mut side = Value::object();
                        side.set("rows_scanned", Value::U64(s));
                        side.set("total_requests", Value::U64(r));
                        side.set("select_requests", Value::U64(0));
                        agg.set(config, side);
                    }
                    aggs.push(agg);
                }
            }
            doc.set("aggregates", Value::Array(aggs));
            let mut runs = Vec::new();
            for (backend, rows) in [("btree", 5u64), ("columns", col_rows)] {
                let mut run = Value::object();
                run.set("workload", Value::Str("lubm".into()));
                run.set("profile", Value::Str("instant".into()));
                run.set("config", Value::Str("optimized".into()));
                run.set("engine", Value::Str("Lusail".into()));
                run.set("query", Value::Str("Q1".into()));
                run.set("backend", Value::Str(backend.into()));
                run.set("threads", Value::U64(1));
                run.set("rows", Value::U64(rows));
                run.set("complete", Value::Bool(true));
                runs.push(run);
            }
            doc.set("runs", Value::Array(runs));
            let mut fp = Value::object();
            fp.set("triples", Value::U64(1_000_000));
            fp.set("btree_resident_bytes", Value::U64(60_000_000));
            fp.set("columns_resident_bytes", Value::U64(columns_bytes));
            doc.set("footprint", fp);
            doc
        };
        fn r9(req: u64) -> u64 {
            req.saturating_sub(1)
        }
        assert!(check_gate(&mk(40, 10, 5, 10_000_000)).is_ok());
        // Columnar scanning more rows than btree in aggregate fails.
        assert!(check_gate(&mk(60, 10, 5, 10_000_000)).is_err());
        // Columnar issuing more requests fails.
        assert!(check_gate(&mk(40, 11, 5, 10_000_000)).is_err());
        // A columnar run whose rows diverge from its btree twin fails.
        assert!(check_gate(&mk(40, 10, 6, 10_000_000)).is_err());
        // A footprint ratio below the floor fails (60 MB / 15 MB = 4x).
        assert!(check_gate(&mk(40, 10, 5, 15_000_000)).is_err());
    }
}
