//! Harness utilities shared by the per-figure experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index). The helpers here run an engine on a
//! query with request accounting and a soft timeout, and print/persist
//! result tables.

pub mod json;
pub mod serve;
pub mod suite;

use lusail_endpoint::ExecOptions;
use lusail_endpoint::{FederatedEngine, Federation, StatsSnapshot};
use lusail_sparql::{Query, SolutionSet};
use std::io::Write as _;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The outcome of one engine/query run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall time.
    pub elapsed: Duration,
    /// Network counters accumulated during the run (all endpoints).
    pub requests: StatsSnapshot,
    /// The solutions (`None` on timeout).
    pub solutions: Option<SolutionSet>,
    /// False when endpoint failures degraded the run to a partial answer
    /// (also false on timeout).
    pub complete: bool,
}

impl RunResult {
    /// True if the soft timeout fired (no solutions came back).
    pub fn timed_out(&self) -> bool {
        self.solutions.is_none()
    }

    /// Result rows (`None` on timeout).
    pub fn rows(&self) -> Option<usize> {
        self.solutions.as_ref().map(|s| s.len())
    }

    /// Milliseconds for table printing; `f64::NAN` on timeout.
    pub fn ms(&self) -> f64 {
        if self.timed_out() {
            f64::NAN
        } else {
            self.elapsed.as_secs_f64() * 1e3
        }
    }

    /// A compact display cell: time in ms, or `TIMEOUT`.
    pub fn cell(&self) -> String {
        if self.timed_out() {
            "TIMEOUT".to_string()
        } else {
            format!("{:.1}", self.ms())
        }
    }
}

/// Runs `engine` on `query`, measuring wall time and the federation's
/// request counters. If the run exceeds `timeout`, returns a timed-out
/// result; the worker thread is detached and left to finish (the paper's
/// harness likewise abandons runs at its one-hour limit).
pub fn run_with_timeout(
    engine: &Arc<dyn FederatedEngine>,
    fed: &Federation,
    query: &Query,
    timeout: Duration,
) -> RunResult {
    let before = fed.stats_snapshot();
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    {
        let engine = Arc::clone(engine);
        let fed = fed.clone();
        let query = query.clone();
        std::thread::spawn(move || {
            let outcome = engine
                .run_with(&fed, &query, &ExecOptions::default())
                .expect("bench federations are non-empty");
            let _ = tx.send(outcome);
        });
    }
    match rx.recv_timeout(timeout) {
        Ok(outcome) => RunResult {
            elapsed: start.elapsed(),
            requests: fed.stats_snapshot().since(&before),
            solutions: Some(outcome.solutions),
            complete: outcome.complete,
        },
        Err(_) => RunResult {
            elapsed: start.elapsed(),
            requests: fed.stats_snapshot().since(&before),
            solutions: None,
            complete: false,
        },
    }
}

/// Runs without a timeout (trusted-fast paths).
pub fn run(engine: &dyn FederatedEngine, fed: &Federation, query: &Query) -> RunResult {
    let before = fed.stats_snapshot();
    let start = Instant::now();
    let outcome = engine
        .run_with(fed, query, &ExecOptions::default())
        .expect("bench federations are non-empty");
    RunResult {
        elapsed: start.elapsed(),
        requests: fed.stats_snapshot().since(&before),
        solutions: Some(outcome.solutions),
        complete: outcome.complete,
    }
}

/// Repeats a run `n` times (after one warm-up that primes the caches, as
/// the paper does: "Lusail as well as its competitors are allowed to cache
/// the results of the source selection phase ... we run each query three
/// times and report their average") and averages the wall time. Counters
/// are taken from the *last* repetition (steady state).
pub fn run_averaged(
    engine: &dyn FederatedEngine,
    fed: &Federation,
    query: &Query,
    n: usize,
) -> RunResult {
    let _ = run(engine, fed, query); // warm-up primes ASK/check caches
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..n.max(1) {
        let r = run(engine, fed, query);
        total += r.elapsed;
        last = Some(r);
    }
    let mut result = last.expect("n >= 1");
    result.elapsed = total / n.max(1) as u32;
    result
}

/// A simple fixed-width table writer that also saves CSV under
/// `results/<name>.csv`.
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given CSV stem and column headers.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the table to stdout and writes `results/<name>.csv`.
    pub fn finish(&self) {
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            s
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            println!("{}", line(r));
        }
        // CSV (cells containing commas — e.g. grouped counts — are quoted).
        let csv_cell = |c: &String| -> String {
            if c.contains(',') {
                format!("\"{c}\"")
            } else {
                c.clone()
            }
        };
        if std::fs::create_dir_all("results").is_ok() {
            if let Ok(mut f) = std::fs::File::create(format!("results/{}.csv", self.name)) {
                let _ = writeln!(f, "{}", self.header.join(","));
                for r in &self.rows {
                    let cells: Vec<String> = r.iter().map(csv_cell).collect();
                    let _ = writeln!(f, "{}", cells.join(","));
                }
            }
        }
    }
}

/// Runs a list of engines over a list of queries with timeout and result
/// verification, producing one table row per (query, engine). Engines
/// that finish must agree with each other (multiset equality); the first
/// finisher's canonical result is the reference.
pub fn compare_engines(
    table_name: &str,
    fed: &Federation,
    engines: &[(&str, Arc<dyn FederatedEngine>)],
    queries: &[(&str, &Query)],
    timeout: Duration,
) -> Table {
    let mut header = vec!["query".to_string()];
    for (name, _) in engines {
        header.push(format!("{name} (ms)"));
        header.push(format!("{name} reqs"));
    }
    header.push("rows".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(table_name, &header_refs);

    for (qname, query) in queries {
        let mut cells = vec![qname.to_string()];
        let mut reference: Option<SolutionSet> = None;
        let mut rows = String::from("-");
        for (ename, engine) in engines {
            // Warm-up primes caches (the paper lets every system cache its
            // source selection), then the measured run.
            let warm = run_with_timeout(engine, fed, query, timeout);
            let r = if warm.timed_out() {
                warm
            } else {
                run_with_timeout(engine, fed, query, timeout)
            };
            // Incomplete (degraded) answers are legitimately partial:
            // they neither set the reference nor get cross-checked.
            if let (Some(sols), true) = (&r.solutions, r.complete) {
                let canon = sols.canonicalize();
                match &reference {
                    None => {
                        rows = sols.len().to_string();
                        reference = Some(canon);
                    }
                    // With LIMIT, any k-subset is a valid answer: engines
                    // need only agree on the row count.
                    Some(refsols) if query.limit.is_some() => assert_eq!(
                        refsols.len(),
                        canon.len(),
                        "{ename} returns a different row count on {qname}"
                    ),
                    Some(refsols) => assert_eq!(
                        *refsols, canon,
                        "{ename} disagrees with reference on {qname}"
                    ),
                }
            }
            cells.push(r.cell());
            cells.push(fmt_count(r.requests.total_requests()));
        }
        cells.push(rows);
        table.row(cells);
    }
    table
}

/// Formats a request count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }
}
