//! The closed-loop serving benchmark behind `lusail-bench run`'s
//! `serve` section.
//!
//! N closed-loop clients (each a tenant thread issuing its next query
//! the moment the previous one returns) drive one shared
//! [`QueryServer`] over a small LUBM federation, at two offered-load
//! points:
//!
//! * **low** — fewer clients than the admission capacity: nothing may
//!   be shed (the gate requires `shed == 0`);
//! * **overload** — many more clients than capacity over a real-sleep
//!   WAN profile: the server must shed (reject-with-reason, never
//!   queue), and the p99 latency of *admitted* queries must stay within
//!   [`SERVE_P99_FACTOR`]× the per-query deadline — overload degrades
//!   into fast typed rejections, not unbounded queueing delay.
//!
//! Latencies are wall-clock and machine-dependent (like every `wall`
//! section); the shed counts are structural: the low point cannot shed
//! because its concurrency never reaches capacity, and the overload
//! point must shed because it always exceeds it.

use crate::json::Value;
use lusail_benchdata::lubm;
use lusail_core::{Lusail, LusailConfig};
use lusail_endpoint::NetworkProfile;
use lusail_server::{BatchConfig, QueryServer, ServeError, ServerConfig, TenantPolicy};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The overload gate's latency bound: admitted-query p99 must not
/// exceed this many times the per-query deadline.
pub const SERVE_P99_FACTOR: f64 = 2.0;

struct PointSpec {
    clients: usize,
    capacity: usize,
    per_client: usize,
    deadline: Duration,
    /// Really sleep per request (the suite's scaled-down real-WAN
    /// profile) so admitted queries have nonzero service time to
    /// contend over.
    real_sleep: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * p / 100.0).ceil() as usize).saturating_sub(1);
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn run_point(spec: &PointSpec, seed: u64) -> Value {
    let mut cfg = lubm::LubmConfig::new(2);
    cfg.seed ^= seed;
    if spec.real_sleep {
        cfg.profiles = Some(vec![
            NetworkProfile {
                latency: Duration::from_micros(300),
                bandwidth_bytes_per_sec: None,
                sleep: true,
            };
            2
        ]);
    }
    let workload = lubm::generate(&cfg);
    let engine = Lusail::new(LusailConfig {
        probe_cache_capacity: Some(4096),
        ..LusailConfig::default()
    });
    let server = QueryServer::new(
        workload.federation.clone(),
        engine,
        ServerConfig {
            max_in_flight: spec.capacity,
            threads_per_query: 1,
            default_tenant: TenantPolicy {
                max_in_flight: spec.capacity.max(1),
                deadline_budget: spec.deadline,
            },
            ..ServerConfig::default()
        },
    );
    let queries: Vec<_> = workload.queries.iter().map(|nq| nq.query.clone()).collect();

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..spec.clients {
        let server = Arc::clone(&server);
        let queries = queries.clone();
        let per_client = spec.per_client;
        handles.push(std::thread::spawn(move || {
            let tenant = format!("client-{c}");
            let mut latencies_ms = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let query = &queries[(c + i) % queries.len()];
                let t0 = Instant::now();
                match server.execute(&tenant, query) {
                    Ok(_) => latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                    Err(ServeError::Rejected(_)) => {
                        // Counted server-side; a shed client backs off
                        // briefly instead of hammering the admission lock.
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(ServeError::Engine(e)) => panic!("engine error in bench: {e:?}"),
                }
            }
            latencies_ms
        }));
    }
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread panicked"))
        .collect();
    let wall = started.elapsed();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let counters = server.counters();
    let attempts = (spec.clients * spec.per_client) as u64;
    let mut point = Value::object();
    point.set("clients", Value::U64(spec.clients as u64));
    point.set("capacity", Value::U64(spec.capacity as u64));
    point.set("requests_per_client", Value::U64(spec.per_client as u64));
    point.set("deadline_ms", Value::U64(spec.deadline.as_millis() as u64));
    point.set("attempts", Value::U64(attempts));
    point.set("admitted", Value::U64(counters.admitted));
    point.set("complete_results", Value::U64(counters.complete_results));
    point.set("shed", Value::U64(counters.shed));
    point.set("deadline_rejected", Value::U64(counters.deadline_rejected));
    point.set(
        "shed_rate",
        Value::F64(counters.total_rejected() as f64 / attempts.max(1) as f64),
    );
    let mut wall_section = Value::object();
    wall_section.set("p50_ms", Value::F64(percentile(&latencies, 50.0)));
    wall_section.set("p99_ms", Value::F64(percentile(&latencies, 99.0)));
    wall_section.set(
        "throughput_qps",
        Value::F64(counters.admitted as f64 / wall.as_secs_f64().max(1e-9)),
    );
    point.set("wall", wall_section);
    point
}

/// One mode of the overlapping-tenants MQO point: the same tenant
/// threads issue the same query rounds (a barrier aligns each round so
/// identical queries genuinely coincide) against a freshly generated
/// copy of the federation, so the two modes' wire counters are fully
/// independent. Returns the per-(tenant, round) result digest plus the
/// wire and batching counters.
fn run_mqo_mode(
    batched: bool,
    tenants: usize,
    rounds: usize,
    seed: u64,
) -> (Vec<(usize, bool)>, u64, lusail_server::BatchStats) {
    let mut cfg = lubm::LubmConfig::new(2);
    cfg.seed ^= seed;
    let workload = lubm::generate(&cfg);
    let engine = Lusail::new(LusailConfig {
        probe_cache_capacity: Some(4096),
        ..LusailConfig::default()
    });
    let server = QueryServer::new(
        workload.federation.clone(),
        engine,
        ServerConfig {
            // Ample capacity: this point measures sharing, not shedding.
            max_in_flight: tenants,
            threads_per_query: 1,
            default_tenant: TenantPolicy {
                max_in_flight: 1,
                deadline_budget: Duration::from_secs(30),
            },
            batch: BatchConfig {
                enabled: batched,
                window: Duration::from_millis(20),
                max_batch: tenants,
            },
            ..ServerConfig::default()
        },
    );
    let queries: Vec<_> = workload.queries.iter().map(|nq| nq.query.clone()).collect();
    let before = server.federation().stats_snapshot();
    let barrier = Arc::new(Barrier::new(tenants));
    let mut handles = Vec::new();
    for c in 0..tenants {
        let server = Arc::clone(&server);
        let queries = queries.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let tenant = format!("tenant-{c}");
            let mut digest = Vec::with_capacity(rounds);
            for r in 0..rounds {
                // Every tenant runs the *same* query in the same round —
                // the overlap a cross-tenant batcher exists to exploit.
                let query = &queries[r % queries.len()];
                barrier.wait();
                let result = server
                    .execute(&tenant, query)
                    .expect("mqo point never sheds");
                digest.push((result.solutions.len(), result.complete));
            }
            digest
        }));
    }
    let mut digest = Vec::new();
    for h in handles {
        digest.extend(h.join().expect("tenant thread panicked"));
    }
    let wire = server
        .federation()
        .stats_snapshot()
        .since(&before)
        .total_requests();
    (digest, wire, server.batch_stats())
}

/// The overlapping-tenants MQO point: identical queries from concurrent
/// tenants, once through the direct path and once through the batching
/// scheduler, over independently instantiated copies of the same
/// federation. The gate demands byte-identical per-query results
/// (row count and completeness per tenant-round) and *strictly fewer*
/// wire requests batched than unbatched.
fn run_mqo_point(seed: u64) -> Value {
    const TENANTS: usize = 4;
    const ROUNDS: usize = 6;
    let (solo_digest, solo_wire, _) = run_mqo_mode(false, TENANTS, ROUNDS, seed);
    let (batched_digest, batched_wire, batch) = run_mqo_mode(true, TENANTS, ROUNDS, seed);
    let mut point = Value::object();
    point.set("tenants", Value::U64(TENANTS as u64));
    point.set("rounds", Value::U64(ROUNDS as u64));
    point.set(
        "results_identical",
        Value::Bool(solo_digest == batched_digest),
    );
    point.set("unbatched_wire_requests", Value::U64(solo_wire));
    point.set("batched_wire_requests", Value::U64(batched_wire));
    point.set("windows", Value::U64(batch.windows));
    point.set("shared_hits", Value::U64(batch.shared_hits));
    point.set("wire_requests_saved", Value::U64(batch.wire_requests_saved));
    point
}

/// Runs both load points and returns the report's `serve` section.
pub fn run_serve_bench(seed: u64) -> Value {
    let mut section = Value::object();
    section.set(
        "low",
        run_point(
            &PointSpec {
                clients: 2,
                capacity: 8,
                per_client: 12,
                deadline: Duration::from_secs(10),
                real_sleep: false,
            },
            seed,
        ),
    );
    section.set(
        "overload",
        run_point(
            &PointSpec {
                clients: 12,
                capacity: 2,
                per_client: 8,
                deadline: Duration::from_secs(2),
                real_sleep: true,
            },
            seed,
        ),
    );
    section.set("mqo_overlap", run_mqo_point(seed));
    section
}

/// Validates a report's `serve` section (if present): zero shed at low
/// offered load, nonzero shed under overload, and overload p99 within
/// [`SERVE_P99_FACTOR`]× the deadline. Returns printable gate lines.
pub fn check_serve_gate(doc: &Value) -> Result<Vec<String>, String> {
    let Some(serve) = doc.get("serve") else {
        return Ok(Vec::new());
    };
    let point = |label: &str| -> Result<&Value, String> {
        serve
            .get(label)
            .ok_or_else(|| format!("serve section is missing the {label} point"))
    };
    let num = |point: &Value, label: &str, key: &str| -> Result<f64, String> {
        point
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("serve.{label} is missing {key}"))
    };
    let wall_num = |point: &Value, label: &str, key: &str| -> Result<f64, String> {
        point
            .get("wall")
            .and_then(|w| w.get(key))
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("serve.{label}.wall is missing {key}"))
    };
    let mut lines = Vec::new();

    let low = point("low")?;
    let low_shed = num(low, "low", "shed")? + num(low, "low", "deadline_rejected")?;
    if low_shed > 0.0 {
        return Err(format!(
            "serve/low: {low_shed} queries rejected below capacity — \
             admission control sheds under low offered load"
        ));
    }
    lines.push(format!(
        "serve/low: {} clients vs capacity {}, 0 shed, p99 {:.1} ms, \
         {:.0} q/s",
        num(low, "low", "clients")?,
        num(low, "low", "capacity")?,
        wall_num(low, "low", "p99_ms")?,
        wall_num(low, "low", "throughput_qps")?,
    ));

    let over = point("overload")?;
    let over_shed = num(over, "overload", "shed")?;
    if over_shed == 0.0 {
        return Err(
            "serve/overload: zero queries shed with clients far over capacity — \
             overload is queueing instead of shedding"
                .into(),
        );
    }
    let deadline_ms = num(over, "overload", "deadline_ms")?;
    let p99 = wall_num(over, "overload", "p99_ms")?;
    let bound = deadline_ms * SERVE_P99_FACTOR;
    if p99 > bound {
        return Err(format!(
            "serve/overload: admitted-query p99 {p99:.1} ms exceeds \
             {SERVE_P99_FACTOR}x the {deadline_ms} ms deadline ({bound:.0} ms)"
        ));
    }
    lines.push(format!(
        "serve/overload: {} clients vs capacity {}, shed rate {:.0}%, \
         p99 {:.1} ms <= {bound:.0} ms",
        num(over, "overload", "clients")?,
        num(over, "overload", "capacity")?,
        num(over, "overload", "shed_rate")? * 100.0,
        p99,
    ));

    // The cross-tenant batching point (absent from pre-batching reports):
    // sharing must be free in the answers and strictly cheaper on the
    // wire — equal wire counts would mean the scheduler batched nothing.
    if let Some(mqo) = serve.get("mqo_overlap") {
        let identical = mqo
            .get("results_identical")
            .and_then(Value::as_bool)
            .ok_or("serve.mqo_overlap is missing results_identical")?;
        if !identical {
            return Err(
                "serve/mqo_overlap: batched per-query results diverged from unbatched — \
                 cross-tenant sharing changed an answer"
                    .into(),
            );
        }
        let solo_wire = num(mqo, "mqo_overlap", "unbatched_wire_requests")?;
        let batched_wire = num(mqo, "mqo_overlap", "batched_wire_requests")?;
        if batched_wire >= solo_wire {
            return Err(format!(
                "serve/mqo_overlap: batched execution spent {batched_wire} wire requests \
                 vs {solo_wire} unbatched — batching must be strictly cheaper on overlap"
            ));
        }
        let shared_hits = num(mqo, "mqo_overlap", "shared_hits")?;
        if shared_hits < 1.0 {
            return Err(
                "serve/mqo_overlap: no shared subquery hits — identical concurrent \
                 queries never landed in one window"
                    .into(),
            );
        }
        lines.push(format!(
            "serve/mqo_overlap: {} tenants x {} rounds identical results, wire \
             {batched_wire} batched < {solo_wire} unbatched ({} shared hits)",
            num(mqo, "mqo_overlap", "tenants")?,
            num(mqo, "mqo_overlap", "rounds")?,
            shared_hits,
        ));
    }
    Ok(lines)
}
