//! §VI-D "Real Endpoints" — Lusail vs FedX on a Bio2RDF-style federation
//! with the three representative workload queries R1–R3.
//!
//! In the paper FedX threw runtime exceptions on all three; here both
//! engines run, and the table shows the request/latency gap on the same
//! queries.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin real_endpoints
//! ```

use lusail_baselines::FedX;
use lusail_bench::compare_engines;
use lusail_benchdata::bio2rdf::{generate, Bio2RdfConfig};
use lusail_core::Lusail;
use lusail_endpoint::{FederatedEngine, NetworkProfile};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("§VI-D — Bio2RDF-style real-endpoint federation (R1–R3)\n");
    // Public endpoints sit behind real WANs: give each a modest latency.
    let w = generate(&Bio2RdfConfig {
        profiles: Some(vec![NetworkProfile::wan(5, 100); 5]),
        ..Default::default()
    });
    println!(
        "federation: {} endpoints, {} triples\n",
        w.federation.len(),
        w.federation.total_triples()
    );
    let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
        ("Lusail", Arc::new(Lusail::default())),
        ("FedX", Arc::new(FedX::default())),
    ];
    let queries: Vec<(&str, &lusail_sparql::Query)> = w
        .queries
        .iter()
        .map(|nq| (nq.name.as_str(), &nq.query))
        .collect();
    let table = compare_engines(
        "real_endpoints",
        &w.federation,
        &engines,
        &queries,
        Duration::from_secs(120),
    );
    table.finish();
    println!(
        "\nPaper: Lusail answered R1/R2/R3 in 12/8/35 s against the live \
         Bio2RDF endpoints while FedX failed with runtime exceptions. \
         Here both run; the gap shows up as request count × WAN latency."
    );
}
