//! Figure 10 — profiling Lusail's three phases.
//!
//! * (a) Phase breakdown (source selection / query analysis / execution)
//!   on LargeRDFBench-style queries of increasing complexity: S10, C4, B1.
//! * (b, c) Phase breakdown for LUBM Q3 and Q4 while the number of
//!   endpoints grows, with and without the ASK/check-query cache.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig10_profiling [max_endpoints]
//! ```
//!
//! `max_endpoints` defaults to 64; pass 256 to reproduce the paper's full
//! sweep (the 480-core-cluster experiment — slower but it runs).

use lusail_bench::Table;
use lusail_benchdata::{lrb, lubm};
use lusail_core::{Lusail, LusailConfig};

fn main() {
    let max_endpoints: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    // ---- (a) phases by query complexity --------------------------------
    println!("Figure 10(a) — phase profile on LargeRDFBench-style queries\n");
    let w = lrb::generate(&lrb::LrbConfig::default());
    let engine = Lusail::default();
    let mut table = Table::new(
        "fig10a_phases",
        &[
            "query",
            "source sel (ms)",
            "analysis (ms)",
            "execution (ms)",
            "total (ms)",
        ],
    );
    for name in ["S10", "C4", "B1"] {
        let nq = w.query(name);
        engine.clear_caches(); // cold, like the paper's profile runs
        let r = engine.execute(&w.federation, &nq.query).unwrap();
        table.row(vec![
            name.to_string(),
            format!("{:.2}", r.metrics.source_selection.as_secs_f64() * 1e3),
            format!("{:.2}", r.metrics.analysis.as_secs_f64() * 1e3),
            format!("{:.2}", r.metrics.execution.as_secs_f64() * 1e3),
            format!("{:.2}", r.metrics.total.as_secs_f64() * 1e3),
        ]);
    }
    table.finish();
    println!(
        "\nExpected shape: execution dominates; analysis (LADE checks + \
         COUNT probes) stays small relative to execution for the complex \
         and large queries.\n"
    );

    // ---- (b, c) phases vs number of endpoints ---------------------------
    for (fig, qname) in [("fig10b", "Q3"), ("fig10c", "Q4")] {
        println!(
            "Figure 10({}) — {} phases vs endpoints (cache on / off)\n",
            &fig[5..],
            qname
        );
        let mut table = Table::new(
            &format!("{fig}_{qname}_scale"),
            &[
                "endpoints",
                "source sel (ms)",
                "analysis (ms)",
                "execution (ms)",
                "total cached (ms)",
                "total uncached (ms)",
            ],
        );
        let mut n = 4usize;
        while n <= max_endpoints {
            let w = lubm::generate(&lubm::LubmConfig::new(n));
            let nq = w.query(qname);

            // Cached: warm-up run primes ASK/check/count caches, then
            // measure.
            let cached_engine = Lusail::default();
            let _ = cached_engine.execute(&w.federation, &nq.query);
            let r = cached_engine.execute(&w.federation, &nq.query).unwrap();

            // Uncached: caches disabled entirely.
            let uncached_engine = Lusail::new(LusailConfig {
                use_cache: false,
                ..Default::default()
            });
            let ru = uncached_engine.execute(&w.federation, &nq.query).unwrap();

            table.row(vec![
                n.to_string(),
                format!("{:.2}", r.metrics.source_selection.as_secs_f64() * 1e3),
                format!("{:.2}", r.metrics.analysis.as_secs_f64() * 1e3),
                format!("{:.2}", r.metrics.execution.as_secs_f64() * 1e3),
                format!("{:.2}", r.metrics.total.as_secs_f64() * 1e3),
                format!("{:.2}", ru.metrics.total.as_secs_f64() * 1e3),
            ]);
            n *= 2;
        }
        table.finish();
        println!();
    }
    println!(
        "Expected shape (paper): query analysis is lightweight; source \
         selection grows slowly with endpoints; execution dominates and \
         grows with endpoints; the cache pays off, especially for Q4 and \
         at high endpoint counts."
    );
}
