//! Figure 14 — geo-distributed federation: endpoints behind simulated WAN
//! links in "7 regions" (a mix of per-endpoint latencies), all systems.
//!
//! * (a) LargeRDFBench complex queries,
//! * (b) LargeRDFBench large queries,
//! * (c) LUBM on two endpoints.
//!
//! Latencies are scaled down (2–10 ms instead of tens-to-hundreds) so the
//! sweep completes quickly; the crossovers the paper reports come from
//! the *request-count × latency* product, which is preserved.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig14_geo [timeout_secs]
//! ```

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_bench::compare_engines;
use lusail_benchdata::{lrb, lubm};
use lusail_core::Lusail;
use lusail_endpoint::{FederatedEngine, NetworkProfile};
use std::sync::Arc;
use std::time::Duration;

/// A "7-region" latency assignment: endpoints rotate through region RTTs.
fn region_profiles(n: usize) -> Vec<NetworkProfile> {
    let region_latency_ms = [2u64, 3, 4, 5, 6, 8, 10];
    (0..n)
        .map(|i| NetworkProfile::wan(region_latency_ms[i % region_latency_ms.len()], 200))
        .collect()
}

fn main() {
    let timeout_secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);

    // ---- (a, b) LargeRDFBench complex and large -------------------------
    let w = lrb::generate(&lrb::LrbConfig {
        profiles: Some(region_profiles(13)),
        ..Default::default()
    });
    let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
        ("Lusail", Arc::new(Lusail::default())),
        ("FedX", Arc::new(FedX::default())),
        (
            "HiBISCuS",
            Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        ),
        (
            "SPLENDID",
            Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
        ),
    ];
    for (fig, cat) in [("a", "complex"), ("b", "large")] {
        println!(
            "Figure 14({fig}) — geo-distributed LargeRDFBench {cat} queries \
             (timeout {timeout_secs}s)\n"
        );
        let queries: Vec<(&str, &lusail_sparql::Query)> = w
            .queries
            .iter()
            .filter(|nq| lrb::category(&nq.name) == cat)
            .map(|nq| (nq.name.as_str(), &nq.query))
            .collect();
        let table = compare_engines(
            &format!("fig14{fig}_geo_{cat}"),
            &w.federation,
            &engines,
            &queries,
            Duration::from_secs(timeout_secs),
        );
        table.finish();
        println!();
    }

    // ---- (c) LUBM, two endpoints ----------------------------------------
    println!("Figure 14(c) — geo-distributed LUBM, 2 endpoints\n");
    let mut config = lubm::LubmConfig::new(2);
    config.profiles = Some(region_profiles(2));
    let w = lubm::generate(&config);
    let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
        ("Lusail", Arc::new(Lusail::default())),
        ("FedX", Arc::new(FedX::default())),
        (
            "HiBISCuS",
            Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        ),
        (
            "SPLENDID",
            Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
        ),
    ];
    let queries: Vec<(&str, &lusail_sparql::Query)> = w
        .queries
        .iter()
        .map(|nq| (nq.name.as_str(), &nq.query))
        .collect();
    let table = compare_engines(
        "fig14c_geo_lubm",
        &w.federation,
        &engines,
        &queries,
        Duration::from_secs(timeout_secs),
    );
    table.finish();
    println!(
        "\nPaper shape: the WAN multiplies every request's cost; Lusail's \
         LUBM queries stay near-interactive while FedX/HiBISCuS pay the \
         round trip thousands of times (>1000 s in the paper's Fig. 14(c))."
    );
}
