//! §VI-A "Data Preprocessing Cost" — what index-based systems pay before
//! the first query.
//!
//! SPLENDID (VOID statistics) and HiBISCuS (authority summaries) must
//! scan every endpoint's data; Lusail and FedX start cold. The paper
//! reports 25 s (QFed) and 3,513 s (LargeRDFBench) for SPLENDID. We time
//! both index builds at two LRB scales to show the growth with data size.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin preprocessing_cost
//! ```

use lusail_baselines::{HibiscusIndex, VoidIndex};
use lusail_bench::Table;
use lusail_benchdata::{lrb, qfed};
use std::time::Instant;

fn main() {
    println!("Data preprocessing cost (index-based systems only)\n");
    let mut table = Table::new(
        "preprocessing_cost",
        &[
            "benchmark",
            "triples",
            "SPLENDID VOID (ms)",
            "HiBISCuS authorities (ms)",
            "Lusail/FedX",
        ],
    );

    let q = qfed::generate(&qfed::QfedConfig::default());
    let t0 = Instant::now();
    let _void = VoidIndex::build(&q.endpoint_refs());
    let void_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let _hib = HibiscusIndex::build(&q.endpoint_refs());
    let hib_ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(vec![
        "QFed-style".into(),
        q.federation.total_triples().to_string(),
        format!("{void_ms:.1}"),
        format!("{hib_ms:.1}"),
        "0 (index-free)".into(),
    ]);

    for scale in [1.0f64, 4.0] {
        let w = lrb::generate(&lrb::LrbConfig {
            scale,
            ..Default::default()
        });
        let t0 = Instant::now();
        let _void = VoidIndex::build(&w.endpoint_refs());
        let void_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let _hib = HibiscusIndex::build(&w.endpoint_refs());
        let hib_ms = t0.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            format!("LRB-style (scale {scale})"),
            w.federation.total_triples().to_string(),
            format!("{void_ms:.1}"),
            format!("{hib_ms:.1}"),
            "0 (index-free)".into(),
        ]);
    }
    table.finish();
    println!(
        "\nPaper: SPLENDID needed 25 s for QFed and 3,513 s for \
         LargeRDFBench. The cost scales with data size, and endpoints may \
         not even allow the statistics crawl — the paper's argument for \
         index-free federation (endpoints join and leave at no cost)."
    );
}
