//! Extended-version features (§V, detailed in the paper's companion
//! report [11]): multi-query optimization and multi-machine execution.
//!
//! * **MQO** — a batch of overlapping queries (the C2P2 family) executed
//!   with shared subquery relations vs. one-at-a-time.
//! * **Multi-machine** — a LUBM query workload over WAN-latency endpoints
//!   executed by 1 / 2 / 4 mediator machines.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin extras_mqo_cluster
//! ```

use lusail_bench::{fmt_count, Table};
use lusail_benchdata::{lubm, qfed};
use lusail_core::{Lusail, LusailCluster, LusailConfig};
use lusail_endpoint::NetworkProfile;
use std::time::Instant;

fn main() {
    // ---- MQO ------------------------------------------------------------
    println!("Multi-query optimization: the C2P2 family as one batch\n");
    let w = qfed::generate(&qfed::QfedConfig::default());
    let family: Vec<lusail_sparql::Query> = w
        .queries
        .iter()
        .filter(|nq| nq.name.starts_with("C2P2"))
        .map(|nq| nq.query.clone())
        .collect();

    let mut table = Table::new("extras_mqo", &["mode", "ms", "select requests"]);
    // Sequential: fresh engine per run (the queries arrive independently).
    let before = w.federation.stats_snapshot();
    let t0 = Instant::now();
    let engine = Lusail::default();
    for q in &family {
        let _ = engine.execute(&w.federation, q);
    }
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let seq = w.federation.stats_snapshot().since(&before);
    table.row(vec![
        "sequential".into(),
        format!("{seq_ms:.1}"),
        fmt_count(seq.select_requests),
    ]);

    let before = w.federation.stats_snapshot();
    let t0 = Instant::now();
    let engine = Lusail::default();
    let (_, report) = engine.execute_batch(&w.federation, &family).unwrap();
    let mqo_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mqo = w.federation.stats_snapshot().since(&before);
    table.row(vec![
        "MQO batch".into(),
        format!("{mqo_ms:.1}"),
        fmt_count(mqo.select_requests),
    ]);
    table.finish();
    println!(
        "shared: {} of {} subqueries evaluated once\n",
        report.total_subqueries - report.distinct_subqueries,
        report.total_subqueries
    );

    // ---- Multi-machine ----------------------------------------------------
    println!("Multi-machine execution: LUBM workload, WAN endpoints\n");
    let mut config = lubm::LubmConfig::new(4);
    config.profiles = Some(vec![NetworkProfile::wan(3, 200); 4]);
    let w = lubm::generate(&config);
    // Workload: every benchmark query, four times over.
    let workload: Vec<lusail_sparql::Query> = (0..4)
        .flat_map(|_| w.queries.iter().map(|nq| nq.query.clone()))
        .collect();

    let mut table = Table::new(
        "extras_cluster",
        &["mediator machines", "workload ms", "queries/sec"],
    );
    for machines in [1usize, 2, 4] {
        let cluster = LusailCluster::new(machines, LusailConfig::default());
        // Warm-up primes each machine's caches.
        let _ = cluster.execute_workload(&w.federation, &workload);
        let t0 = Instant::now();
        let results = cluster.execute_workload(&w.federation, &workload).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(results.len(), workload.len());
        table.row(vec![
            machines.to_string(),
            format!("{ms:.1}"),
            format!("{:.1}", workload.len() as f64 / (ms / 1e3)),
        ]);
    }
    table.finish();
    println!(
        "\nExpected: MQO cuts requests by sharing the family's common core; \
         mediator machines scale workload throughput until the endpoints \
         saturate."
    );
}
