//! `lusail-bench` — the deterministic benchmark harness.
//!
//! ```text
//! lusail-bench run   [--out PATH] [--iters N] [--seed N] [--fixed-clock]
//!                    [--workload NAME]... [--query NAME]... [--threads N]...
//! lusail-bench check --against PATH [--workload NAME]... [--query NAME]...
//!                    [--threads N]...
//! ```
//!
//! `run` executes the suite (see `lusail_bench::suite`) and writes the
//! schema-stable JSON report; it fails if the optimization regression
//! gate does not hold. `check` re-runs the in-scope slice with the
//! committed report's seed and compares the deterministic counter
//! sections exactly, then re-validates the gate on the committed file —
//! the CI smoke `scripts/verify.sh` runs.

use lusail_bench::json;
use lusail_bench::serve::run_serve_bench;
use lusail_bench::suite::{
    check_gate, check_thread_invariance, compare_runs, run_suite, SuiteOptions,
};
use lusail_benchdata::lubm;
use lusail_rdf::Triple;
use lusail_store::{ColumnStore, StorageBackend, TripleStore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicIsize, Ordering};

/// A counting wrapper around the system allocator: `LIVE_BYTES` tracks
/// net live heap bytes, so the footprint measurement below can report the
/// *real* allocator delta of building each storage backend instead of
/// trusting the backends' own `resident_bytes` models.
struct CountingAlloc;

static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(
            new_size as isize - layout.size() as isize,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> isize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Measures the real resident heap cost of the two storage backends on a
/// generated ~1M-triple LUBM store (one university, scaled-up
/// departments): the same pre-collected triples are materialized into
/// each backend inside an allocator-delta window. The temporary BTree
/// store the columnar build sorts from is dropped *inside* the columnar
/// window, so that window nets out to the packed columns alone. The
/// resulting section feeds the `check_gate` footprint floor.
fn measure_footprint() -> json::Value {
    use json::Value;
    let cfg = lubm::LubmConfig {
        departments: 3840,
        ..lubm::LubmConfig::new(1)
    };
    let workload = lubm::generate(&cfg);
    let dict = std::sync::Arc::clone(workload.oracle.dict());
    let mut triples: Vec<Triple> = Vec::with_capacity(workload.oracle.len());
    workload.oracle.scan(None, None, None, |t| {
        triples.push(t);
        true
    });
    drop(workload);

    let before = live_bytes();
    let mut btree = TripleStore::new(std::sync::Arc::clone(&dict));
    for &t in &triples {
        btree.insert(t);
    }
    let btree_bytes = (live_bytes() - before).max(0) as u64;
    let btree_model = StorageBackend::resident_bytes(&btree);
    drop(btree);

    let before = live_bytes();
    let columns = {
        let mut tmp = TripleStore::new(std::sync::Arc::clone(&dict));
        for &t in &triples {
            tmp.insert(t);
        }
        ColumnStore::from_store(&tmp)
    };
    let columns_bytes = (live_bytes() - before).max(0) as u64;
    let columns_model = columns.resident_bytes();

    let mut fp = Value::object();
    fp.set("triples", Value::U64(triples.len() as u64));
    fp.set("btree_resident_bytes", Value::U64(btree_bytes));
    fp.set("columns_resident_bytes", Value::U64(columns_bytes));
    // The backends' own self-reported models ride along for context; the
    // gate reads only the measured deltas above.
    fp.set("btree_model_bytes", Value::U64(btree_model));
    fp.set("columns_model_bytes", Value::U64(columns_model));
    fp
}

fn usage() -> ! {
    eprintln!(
        "usage: lusail-bench run [--out PATH] [--iters N] [--seed N] [--fixed-clock]\n\
         \x20                       [--workload NAME]... [--query NAME]... [--threads N]...\n\
         \x20                       [--backend btree|columns]... [--serve]\n\
         \x20      lusail-bench check --against PATH [--workload NAME]... [--query NAME]...\n\
         \x20                       [--threads N]... [--backend btree|columns]..."
    );
    std::process::exit(2);
}

struct Cli {
    command: String,
    out: Option<String>,
    against: Option<String>,
    serve: bool,
    opts: SuiteOptions,
}

fn parse_args() -> Cli {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) if c == "run" || c == "check" => c,
        _ => usage(),
    };
    let mut cli = Cli {
        command,
        out: None,
        against: None,
        serve: false,
        opts: SuiteOptions::default(),
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => cli.out = Some(need(&mut args, "--out")),
            "--against" => cli.against = Some(need(&mut args, "--against")),
            "--iters" => {
                cli.opts.iters = need(&mut args, "--iters").parse().unwrap_or_else(|_| {
                    eprintln!("--iters needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cli.opts.seed = need(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                })
            }
            "--fixed-clock" => cli.opts.fixed_clock = true,
            "--serve" => cli.serve = true,
            "--workload" => cli.opts.workloads.push(need(&mut args, "--workload")),
            "--backend" => {
                let name = need(&mut args, "--backend");
                if lusail_store::BackendKind::parse(&name).is_none() {
                    eprintln!("--backend must be one of: btree, columns");
                    std::process::exit(2);
                }
                cli.opts.backends.push(name);
            }
            "--query" => cli.opts.queries.push(need(&mut args, "--query")),
            "--threads" => {
                cli.opts
                    .threads
                    .push(need(&mut args, "--threads").parse().unwrap_or_else(|_| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }))
            }
            _ => usage(),
        }
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_args();
    match cli.command.as_str() {
        "run" => cmd_run(&cli),
        "check" => cmd_check(&cli),
        _ => unreachable!(),
    }
}

fn cmd_run(cli: &Cli) -> ExitCode {
    let mut doc = run_suite(&cli.opts);
    // The footprint section only joins full-scope reports (it measures a
    // fixed large store, independent of the run filters, but partial
    // reports are throwaway slices that should stay cheap).
    let full_scope = cli.opts.workloads.is_empty()
        && cli.opts.queries.is_empty()
        && cli.opts.backends.is_empty();
    if full_scope {
        doc.set("footprint", measure_footprint());
    }
    // The closed-loop serving benchmark is opt-in: wall-clock latencies
    // vary by machine, so it only joins reports meant to carry them.
    if cli.serve {
        doc.set("serve", run_serve_bench(cli.opts.seed));
    }
    let text = doc.render();
    match &cli.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    match check_thread_invariance(&doc) {
        Ok(0) => {}
        Ok(n) => println!("thread invariance ok: {n} cross-budget comparison(s)"),
        Err(e) => {
            eprintln!("thread invariance FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The gate only applies when the scope covers its workloads in full.
    if full_scope {
        match check_gate(&doc) {
            Ok(lines) => {
                for line in lines {
                    println!("gate ok: {line}");
                }
            }
            Err(e) => {
                eprintln!("regression gate FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_check(cli: &Cli) -> ExitCode {
    let Some(path) = &cli.against else {
        eprintln!("check needs --against PATH");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Re-run the in-scope slice with the committed seed: the counter
    // sections must be exactly reproducible. Wall iterations are skipped
    // (iters=1) — times are excluded from the comparison anyway.
    let mut opts = cli.opts.clone();
    opts.iters = 1;
    opts.fixed_clock = true;
    opts.seed = baseline
        .get("seed")
        .and_then(json::Value::as_u64)
        .unwrap_or(0);
    let fresh = run_suite(&opts);
    match compare_runs(&fresh, &baseline) {
        Ok(n) => println!("counters check ok: {n} run(s) reproduced exactly"),
        Err(e) => {
            eprintln!("counters check FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    match check_thread_invariance(&fresh) {
        Ok(0) => {}
        Ok(n) => println!("thread invariance ok: {n} cross-budget comparison(s)"),
        Err(e) => {
            eprintln!("thread invariance FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    match check_gate(&baseline) {
        Ok(lines) => {
            for line in lines {
                println!("gate ok: {line}");
            }
        }
        Err(e) => {
            eprintln!("regression gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
