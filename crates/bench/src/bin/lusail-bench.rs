//! `lusail-bench` — the deterministic benchmark harness.
//!
//! ```text
//! lusail-bench run   [--out PATH] [--iters N] [--seed N] [--fixed-clock]
//!                    [--workload NAME]... [--query NAME]... [--threads N]...
//! lusail-bench check --against PATH [--workload NAME]... [--query NAME]...
//!                    [--threads N]...
//! ```
//!
//! `run` executes the suite (see `lusail_bench::suite`) and writes the
//! schema-stable JSON report; it fails if the optimization regression
//! gate does not hold. `check` re-runs the in-scope slice with the
//! committed report's seed and compares the deterministic counter
//! sections exactly, then re-validates the gate on the committed file —
//! the CI smoke `scripts/verify.sh` runs.

use lusail_bench::json;
use lusail_bench::suite::{
    check_gate, check_thread_invariance, compare_runs, run_suite, SuiteOptions,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: lusail-bench run [--out PATH] [--iters N] [--seed N] [--fixed-clock]\n\
         \x20                       [--workload NAME]... [--query NAME]... [--threads N]...\n\
         \x20      lusail-bench check --against PATH [--workload NAME]... [--query NAME]...\n\
         \x20                       [--threads N]..."
    );
    std::process::exit(2);
}

struct Cli {
    command: String,
    out: Option<String>,
    against: Option<String>,
    opts: SuiteOptions,
}

fn parse_args() -> Cli {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) if c == "run" || c == "check" => c,
        _ => usage(),
    };
    let mut cli = Cli {
        command,
        out: None,
        against: None,
        opts: SuiteOptions::default(),
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => cli.out = Some(need(&mut args, "--out")),
            "--against" => cli.against = Some(need(&mut args, "--against")),
            "--iters" => {
                cli.opts.iters = need(&mut args, "--iters").parse().unwrap_or_else(|_| {
                    eprintln!("--iters needs a positive integer");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cli.opts.seed = need(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                })
            }
            "--fixed-clock" => cli.opts.fixed_clock = true,
            "--workload" => cli.opts.workloads.push(need(&mut args, "--workload")),
            "--query" => cli.opts.queries.push(need(&mut args, "--query")),
            "--threads" => {
                cli.opts
                    .threads
                    .push(need(&mut args, "--threads").parse().unwrap_or_else(|_| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }))
            }
            _ => usage(),
        }
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_args();
    match cli.command.as_str() {
        "run" => cmd_run(&cli),
        "check" => cmd_check(&cli),
        _ => unreachable!(),
    }
}

fn cmd_run(cli: &Cli) -> ExitCode {
    let doc = run_suite(&cli.opts);
    let text = doc.render();
    match &cli.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    match check_thread_invariance(&doc) {
        Ok(0) => {}
        Ok(n) => println!("thread invariance ok: {n} cross-budget comparison(s)"),
        Err(e) => {
            eprintln!("thread invariance FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    // The gate only applies when the scope covers its workloads in full.
    if cli.opts.workloads.is_empty() && cli.opts.queries.is_empty() {
        match check_gate(&doc) {
            Ok(lines) => {
                for line in lines {
                    println!("gate ok: {line}");
                }
            }
            Err(e) => {
                eprintln!("regression gate FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_check(cli: &Cli) -> ExitCode {
    let Some(path) = &cli.against else {
        eprintln!("check needs --against PATH");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Re-run the in-scope slice with the committed seed: the counter
    // sections must be exactly reproducible. Wall iterations are skipped
    // (iters=1) — times are excluded from the comparison anyway.
    let mut opts = cli.opts.clone();
    opts.iters = 1;
    opts.fixed_clock = true;
    opts.seed = baseline
        .get("seed")
        .and_then(json::Value::as_u64)
        .unwrap_or(0);
    let fresh = run_suite(&opts);
    match compare_runs(&fresh, &baseline) {
        Ok(n) => println!("counters check ok: {n} run(s) reproduced exactly"),
        Err(e) => {
            eprintln!("counters check FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    match check_thread_invariance(&fresh) {
        Ok(0) => {}
        Ok(n) => println!("thread invariance ok: {n} cross-budget comparison(s)"),
        Err(e) => {
            eprintln!("thread invariance FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    match check_gate(&baseline) {
        Ok(lines) => {
            for line in lines {
                println!("gate ok: {line}");
            }
        }
        Err(e) => {
            eprintln!("regression gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
