//! Figure 13 — LargeRDFBench query performance on the local cluster
//! setting: all systems over the simple / complex / large categories.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig13_largerdfbench [timeout_secs] [scale]
//! ```

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_bench::compare_engines;
use lusail_benchdata::lrb::{category, generate, LrbConfig};
use lusail_core::Lusail;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let timeout_secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!(
        "Figure 13 — LargeRDFBench-style runtimes, local setting \
         (timeout {timeout_secs}s, scale {scale})\n"
    );

    let w = generate(&LrbConfig {
        scale,
        ..Default::default()
    });
    let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
        ("Lusail", Arc::new(Lusail::default())),
        ("FedX", Arc::new(FedX::default())),
        (
            "HiBISCuS",
            Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        ),
        (
            "SPLENDID",
            Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
        ),
    ];
    for cat in ["simple", "complex", "large"] {
        println!("--- {cat} queries ---\n");
        let queries: Vec<(&str, &lusail_sparql::Query)> = w
            .queries
            .iter()
            .filter(|nq| category(&nq.name) == cat)
            .map(|nq| (nq.name.as_str(), &nq.query))
            .collect();
        let table = compare_engines(
            &format!("fig13_lrb_{cat}"),
            &w.federation,
            &engines,
            &queries,
            Duration::from_secs(timeout_secs),
        );
        table.finish();
        println!();
    }
    println!(
        "Paper shape: simple queries are close across systems (little \
         intermediate data, heterogeneous schemas); Lusail pulls ahead on \
         complex and dominates large queries, where the baselines time \
         out or error; C4 (LIMIT 50) is the one query FedX wins thanks to \
         its first-k cutoff, which Lusail's naive LIMIT lacks."
    );
}
