//! Figure 11 — QFed query performance: Lusail vs FedX, HiBISCuS, and
//! SPLENDID on the C2P2 family and the Drug query.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig11_qfed [timeout_secs]
//! ```

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_bench::compare_engines;
use lusail_benchdata::qfed::{generate, QfedConfig};
use lusail_core::Lusail;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let timeout_secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("Figure 11 — QFed query runtimes (timeout {timeout_secs}s)\n");

    let w = generate(&QfedConfig::default());
    let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
        ("Lusail", Arc::new(Lusail::default())),
        ("FedX", Arc::new(FedX::default())),
        (
            "HiBISCuS",
            Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        ),
        (
            "SPLENDID",
            Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
        ),
    ];
    let queries: Vec<(&str, &lusail_sparql::Query)> = w
        .queries
        .iter()
        .map(|nq| (nq.name.as_str(), &nq.query))
        .collect();
    let table = compare_engines(
        "fig11_qfed",
        &w.federation,
        &engines,
        &queries,
        Duration::from_secs(timeout_secs),
    );
    table.finish();
    println!(
        "\nPaper shape: Lusail leads throughout; filter variants (…F) are \
         fast everywhere (selective); big-literal variants (C2P2B, C2P2BO) \
         hurt the bound-join systems badly — FedX/HiBISCuS moved so much \
         literal data there that they timed out in the paper."
    );
}
