//! Figure 9 — evaluating different threshold values for delayed-subquery
//! detection: μ, μ+σ, μ+2σ, and Chauvenet-outliers-only.
//!
//! The paper runs LargeRDFBench on geo-distributed endpoints and reports
//! the *total* time per query category under each policy; μ+σ wins
//! consistently and becomes the default. We reproduce the sweep on the
//! LRB-style federation with simulated WAN latency (small, real sleeps)
//! so delaying (or failing to delay) a heavy subquery has a visible
//! network cost.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig9_delay_thresholds [latency_ms] [mbps] [scale]
//! ```

use lusail_bench::{run_averaged, Table};
use lusail_benchdata::lrb::{self, category, LrbConfig};
use lusail_core::{DelayPolicy, Lusail, LusailConfig};
use lusail_endpoint::NetworkProfile;

fn main() {
    let latency_ms: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let mbps: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let scale: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    println!(
        "Figure 9 — delay-threshold sweep on LargeRDFBench-style data \
         (WAN latency {latency_ms} ms, {mbps} Mbit/s, scale {scale})\n"
    );

    let config = LrbConfig {
        scale,
        profiles: Some(vec![NetworkProfile::wan(latency_ms, mbps); 13]),
        ..Default::default()
    };
    let w = lrb::generate(&config);

    let policies = [
        ("mu", DelayPolicy::Mu),
        ("mu+sigma", DelayPolicy::MuSigma),
        ("mu+2sigma", DelayPolicy::Mu2Sigma),
        ("outliers", DelayPolicy::OutliersOnly),
    ];

    let mut table = Table::new(
        "fig9_delay_thresholds",
        &[
            "category",
            "mu (s)",
            "mu+sigma (s)",
            "mu+2sigma (s)",
            "outliers (s)",
        ],
    );
    for cat in ["simple", "complex", "large"] {
        let mut cells = vec![cat.to_string()];
        for (_, policy) in &policies {
            let engine = Lusail::new(LusailConfig {
                delay_policy: *policy,
                ..Default::default()
            });
            let mut total = 0.0;
            for nq in w.queries.iter().filter(|nq| category(&nq.name) == cat) {
                let r = run_averaged(&engine, &w.federation, &nq.query, 1);
                total += r.elapsed.as_secs_f64();
            }
            cells.push(format!("{total:.2}"));
        }
        table.row(cells);
    }
    table.finish();
    println!(
        "\nPaper shape: μ delays too much for large queries (kills \
         parallelism); μ+2σ and outliers-only delay too little for \
         simple/complex queries (heavy subqueries run unbound); μ+σ is \
         consistently good and is Lusail's default."
    );
}
