//! Figure 3 — FedX's sensitivity to the number of endpoints, with cached
//! source selection.
//!
//! The paper's motivation experiment (§II): run FedX on LUBM Q2 with 1–4
//! university endpoints and on the QFed Drug query with 2–4 sources, with
//! source-selection results cached, and show that response time tracks
//! the number of remote requests. Lusail's numbers are printed alongside
//! to show the gap the rest of the paper explains.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig3_fedx_sensitivity
//! ```

use lusail_baselines::FedX;
use lusail_bench::{fmt_count, run_averaged, Table};
use lusail_benchdata::{lubm, qfed};
use lusail_core::Lusail;
use lusail_endpoint::Federation;
use std::sync::Arc;

fn main() {
    println!("Figure 3 — FedX sensitivity to the number of endpoints\n");

    // --- LUBM Q2, 1..4 endpoints ---------------------------------------
    let mut table = Table::new(
        "fig3_lubm_q2",
        &[
            "endpoints",
            "fedx ms",
            "fedx requests",
            "lusail ms",
            "lusail requests",
            "rows",
        ],
    );
    for n in 1..=4usize {
        let w = lubm::generate(&lubm::LubmConfig::new(n));
        let q2 = &w.query("Q2").query;
        let fedx = FedX::default();
        let lusail = Lusail::default();
        // run_averaged warm-up primes the ASK cache: the counted window
        // excludes source selection, as the figure specifies.
        let fx = run_averaged(&fedx, &w.federation, q2, 3);
        let lu = run_averaged(&lusail, &w.federation, q2, 3);
        table.row(vec![
            n.to_string(),
            fx.cell(),
            fmt_count(fx.requests.total_requests()),
            lu.cell(),
            fmt_count(lu.requests.total_requests()),
            fx.rows().unwrap_or(0).to_string(),
        ]);
    }
    println!("(a) LUBM Q2 (the paper's Q2 = LUBM Q9 triangle)\n");
    table.finish();

    // --- QFed Drug query, 2..4 sources ----------------------------------
    let mut table = Table::new(
        "fig3_qfed_drug",
        &[
            "endpoints",
            "fedx ms",
            "fedx requests",
            "lusail ms",
            "lusail requests",
            "rows",
        ],
    );
    let w = qfed::generate(&qfed::QfedConfig::default());
    for n in 2..=4usize {
        // Restrict the federation to the first n sources; Diseasome and
        // DrugBank (the Drug query's required sources) come first.
        let mut fed = Federation::new(Arc::clone(w.federation.dict()));
        let order = ["Diseasome", "DrugBank", "DailyMed", "Sider"];
        for name in order.iter().take(n) {
            let (_, ep) = w.federation.endpoint_by_name(name).expect("endpoint");
            fed.add(Arc::clone(ep));
        }
        let drug = &w.query("Drug").query;
        let fedx = FedX::default();
        let lusail = Lusail::default();
        let fx = run_averaged(&fedx, &fed, drug, 3);
        let lu = run_averaged(&lusail, &fed, drug, 3);
        table.row(vec![
            n.to_string(),
            fx.cell(),
            fmt_count(fx.requests.total_requests()),
            lu.cell(),
            fmt_count(lu.requests.total_requests()),
            fx.rows().unwrap_or(0).to_string(),
        ]);
    }
    println!("\n(b) QFed Drug query\n");
    table.finish();

    println!(
        "\nThe paper's observation: FedX's runtime and request count climb \
         together with the endpoint count (bound joins ship intermediate \
         bindings one block at a time), while Lusail's stay nearly flat."
    );
}
