//! Figure 12 — LUBM query performance on (a) two and (b) four university
//! endpoints, all systems.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin fig12_lubm [timeout_secs]
//! ```

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_bench::compare_engines;
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_core::Lusail;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let timeout_secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    for n in [2usize, 4] {
        println!(
            "Figure 12({}) — LUBM Q1–Q4 on {n} endpoints (timeout {timeout_secs}s)\n",
            if n == 2 { "a" } else { "b" }
        );
        let w = generate(&LubmConfig::new(n));
        let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
            ("Lusail", Arc::new(Lusail::default())),
            ("FedX", Arc::new(FedX::default())),
            (
                "HiBISCuS",
                Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
            ),
            (
                "SPLENDID",
                Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
            ),
        ];
        let queries: Vec<(&str, &lusail_sparql::Query)> = w
            .queries
            .iter()
            .map(|nq| (nq.name.as_str(), &nq.query))
            .collect();
        let table = compare_engines(
            &format!("fig12_lubm_{n}ep"),
            &w.federation,
            &engines,
            &queries,
            Duration::from_secs(timeout_secs),
        );
        table.finish();
        println!();
    }
    println!(
        "Paper shape: identical schemas stop FedX/HiBISCuS from forming \
         exclusive groups, so Q1/Q2 run one-pattern-at-a-time there while \
         Lusail detects them as disjoint (one request per endpoint) — up \
         to three orders of magnitude apart in the paper. Q3/Q4 join \
         across endpoints; Lusail delays the generic subquery."
    );
}
