//! Endpoint-count scalability (§VI, footnote 8): "The competitors do not
//! scale to more than four [universities] while Lusail scales to 256."
//!
//! Runs LUBM Q2 (the disjoint triangle) and Q4 (cross-endpoint join) on a
//! doubling number of endpoints for every engine, with a soft timeout.
//! The baselines' bound joins multiply requests with endpoints and
//! intermediate rows; Lusail's request count stays linear in endpoints.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin scalability [max_endpoints] [timeout_secs]
//! ```

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_bench::{compare_engines, Table};
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_core::Lusail;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let max_endpoints: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let timeout_secs: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("Scalability with endpoint count (LUBM; timeout {timeout_secs}s per engine/query)\n");

    for qname in ["Q2", "Q4"] {
        println!("--- {qname} ---\n");
        let mut n = 2usize;
        let mut rows_tables: Vec<Table> = Vec::new();
        while n <= max_endpoints {
            let w = generate(&LubmConfig::new(n));
            let engines: Vec<(&str, Arc<dyn FederatedEngine>)> = vec![
                ("Lusail", Arc::new(Lusail::default())),
                ("FedX", Arc::new(FedX::default())),
                (
                    "HiBISCuS",
                    Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
                ),
                (
                    "SPLENDID",
                    Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
                ),
            ];
            let q = &w.query(qname).query;
            let queries = [(format!("{n} endpoints"), q)];
            let query_refs: Vec<(&str, &lusail_sparql::Query)> = queries
                .iter()
                .map(|(name, q)| (name.as_str(), *q))
                .collect();
            let table = compare_engines(
                &format!("scalability_{qname}_{n}"),
                &w.federation,
                &engines,
                &query_refs,
                Duration::from_secs(timeout_secs),
            );
            rows_tables.push(table);
            n *= 2;
        }
        for t in &rows_tables {
            t.finish();
        }
        println!();
    }
    println!(
        "Expected: Lusail's time and requests grow ~linearly with \
         endpoints; the bound-join systems grow superlinearly (requests ∝ \
         endpoints × intermediate rows) until they hit the timeout — the \
         paper's footnote-8 claim."
    );
}
