//! Table I — dataset statistics for every benchmark setting.
//!
//! Prints endpoint names and triple counts for the scaled-down QFed-,
//! LargeRDFBench-, LUBM-, and Bio2RDF-style federations, alongside the
//! sizes the paper reports, so the scale factor is explicit.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin table1_datasets
//! ```

use lusail_bench::{fmt_count, Table};
use lusail_benchdata::{bio2rdf, lrb, lubm, qfed};
use lusail_endpoint::SparqlEndpoint;

fn main() {
    let mut table = Table::new(
        "table1_datasets",
        &[
            "benchmark",
            "endpoint",
            "triples (this repo)",
            "triples (paper)",
        ],
    );

    let q = qfed::generate(&qfed::QfedConfig::default());
    let qfed_paper = [
        ("DrugBank", "766,920"),
        ("Diseasome", "91,182"),
        ("Sider", "193,249"),
        ("DailyMed", "164,276"),
    ];
    for ep in &q.endpoints {
        let paper = qfed_paper
            .iter()
            .find(|(n, _)| *n == ep.name())
            .map(|(_, t)| *t)
            .unwrap_or("-");
        table.row(vec![
            "QFed".into(),
            ep.name().into(),
            fmt_count(ep.triple_count() as u64),
            paper.into(),
        ]);
    }
    table.row(vec![
        "QFed".into(),
        "Total".into(),
        fmt_count(q.federation.total_triples() as u64),
        "1,215,627".into(),
    ]);

    let l = lrb::generate(&lrb::LrbConfig::default());
    let lrb_paper = [
        ("LinkedTCGA-M", "415,030,327"),
        ("LinkedTCGA-E", "344,576,146"),
        ("LinkedTCGA-A", "35,329,868"),
        ("ChEBI", "4,772,706"),
        ("DBPedia-Subset", "42,849,609"),
        ("DrugBank", "517,023"),
        ("GeoNames", "107,950,085"),
        ("Jamendo", "1,049,647"),
        ("KEGG", "1,090,830"),
        ("LinkedMDB", "6,147,996"),
        ("New York Times", "335,198"),
        ("Semantic Web Dog Food", "103,595"),
        ("Affymetrix", "44,207,146"),
    ];
    for ep in &l.endpoints {
        let paper = lrb_paper
            .iter()
            .find(|(n, _)| *n == ep.name())
            .map(|(_, t)| *t)
            .unwrap_or("-");
        table.row(vec![
            "LargeRDFBench".into(),
            ep.name().into(),
            fmt_count(ep.triple_count() as u64),
            paper.into(),
        ]);
    }
    table.row(vec![
        "LargeRDFBench".into(),
        "Total".into(),
        fmt_count(l.federation.total_triples() as u64),
        "1,003,960,176".into(),
    ]);

    let u = lubm::generate(&lubm::LubmConfig::new(4));
    table.row(vec![
        "LUBM".into(),
        "4 universities".into(),
        fmt_count(u.federation.total_triples() as u64),
        "~552,000 (4 × ~138K)".into(),
    ]);

    let b = bio2rdf::generate(&bio2rdf::Bio2RdfConfig::default());
    for ep in &b.endpoints {
        table.row(vec![
            "Bio2RDF".into(),
            ep.name().into(),
            fmt_count(ep.triple_count() as u64),
            "-".into(),
        ]);
    }

    println!("Table I — datasets used in experiments (scaled down)\n");
    table.finish();
    println!(
        "\nPaper totals: QFed 1.2M, LargeRDFBench 1.0B, LUBM 35.3M (256 \
         universities). This repo regenerates the same federation shapes \
         at laptop scale; pass larger configs to the generators to grow \
         them."
    );
}
