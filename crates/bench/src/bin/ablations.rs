//! Ablations of Lusail's design choices (DESIGN.md):
//!
//! 1. **LADE on/off** — with LADE disabled every triple pattern is its own
//!    subquery (the §II strawman of independent pattern evaluation).
//! 2. **Delay policy** — quick check across policies on one query (the
//!    full sweep lives in `fig9_delay_thresholds`).
//! 3. **Bound-join block size** — requests vs block size for delayed
//!    subqueries.
//! 4. **ASK/check cache on/off** — repeated-query latency.
//!
//! ```sh
//! cargo run --release -p lusail-bench --bin ablations
//! ```

use lusail_bench::{fmt_count, run, run_averaged, Table};
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_core::{DelayPolicy, Lusail, LusailConfig};

fn main() {
    let w = generate(&LubmConfig::new(4));

    // ---- 1. LADE on/off --------------------------------------------------
    println!("Ablation 1 — locality-aware decomposition on/off (LUBM, 4 endpoints)\n");
    let mut table = Table::new(
        "ablation_lade",
        &[
            "query",
            "LADE ms",
            "LADE reqs",
            "noLADE ms",
            "noLADE reqs",
            "rows",
        ],
    );
    let with_lade = Lusail::default();
    let without = Lusail::new(LusailConfig {
        disable_lade: true,
        ..Default::default()
    });
    for nq in &w.queries {
        let a = run_averaged(&with_lade, &w.federation, &nq.query, 3);
        let b = run_averaged(&without, &w.federation, &nq.query, 3);
        assert_eq!(
            a.solutions.as_ref().unwrap().canonicalize(),
            b.solutions.as_ref().unwrap().canonicalize(),
            "LADE ablation changed results on {}",
            nq.name
        );
        table.row(vec![
            nq.name.clone(),
            a.cell(),
            fmt_count(a.requests.total_requests()),
            b.cell(),
            fmt_count(b.requests.total_requests()),
            a.rows().unwrap().to_string(),
        ]);
    }
    table.finish();

    // ---- 2. Delay policies on Q4 -----------------------------------------
    println!("\nAblation 2 — delay policy on LUBM Q4\n");
    let mut table = Table::new("ablation_delay_policy", &["policy", "ms", "requests"]);
    for (name, policy) in [
        ("mu", DelayPolicy::Mu),
        ("mu+sigma", DelayPolicy::MuSigma),
        ("mu+2sigma", DelayPolicy::Mu2Sigma),
        ("outliers", DelayPolicy::OutliersOnly),
    ] {
        let engine = Lusail::new(LusailConfig {
            delay_policy: policy,
            ..Default::default()
        });
        let r = run_averaged(&engine, &w.federation, &w.query("Q4").query, 3);
        table.row(vec![
            name.to_string(),
            r.cell(),
            fmt_count(r.requests.total_requests()),
        ]);
    }
    table.finish();

    // ---- 3. Block size for bound subqueries -------------------------------
    println!("\nAblation 3 — VALUES block size on LUBM Q3 (delayed subquery)\n");
    let mut table = Table::new("ablation_block_size", &["block size", "ms", "requests"]);
    for block_size in [10usize, 50, 100, 500] {
        let engine = Lusail::new(LusailConfig {
            block_size,
            ..Default::default()
        });
        let r = run_averaged(&engine, &w.federation, &w.query("Q3").query, 3);
        table.row(vec![
            block_size.to_string(),
            r.cell(),
            fmt_count(r.requests.total_requests()),
        ]);
    }
    table.finish();

    // ---- 4. Cache on/off ----------------------------------------------------
    println!("\nAblation 4 — probe cache on/off, LUBM Q4 run twice\n");
    let mut table = Table::new(
        "ablation_cache",
        &["config", "run1 reqs", "run2 reqs", "run2 ms"],
    );
    for (name, use_cache) in [("cache on", true), ("cache off", false)] {
        let engine = Lusail::new(LusailConfig {
            use_cache,
            ..Default::default()
        });
        let r1 = run(&engine, &w.federation, &w.query("Q4").query);
        let r2 = run(&engine, &w.federation, &w.query("Q4").query);
        table.row(vec![
            name.to_string(),
            fmt_count(r1.requests.total_requests()),
            fmt_count(r2.requests.total_requests()),
            r2.cell(),
        ]);
    }
    table.finish();
    println!(
        "\nExpected: LADE cuts requests dramatically on Q1/Q2 (disjoint); \
         μ+σ is the balanced delay policy; larger blocks trade requests \
         for per-request payload; the cache eliminates repeat ASK/check/\
         COUNT probes."
    );
}
