//! Solution sets: the tabular results exchanged between endpoints and
//! federated engines.

use lusail_rdf::{FxHashMap, TermId};

/// One solution row; column order follows [`SolutionSet::vars`]. `None`
/// means the variable is unbound in this solution (e.g. OPTIONAL misses).
pub type Row = Vec<Option<TermId>>;

/// A set of solutions over a fixed variable schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolutionSet {
    /// Column names (variable names without `?`), in column order.
    pub vars: Vec<String>,
    /// The solution rows.
    pub rows: Vec<Row>,
}

impl SolutionSet {
    /// An empty solution set over the given variables.
    pub fn empty(vars: Vec<String>) -> Self {
        SolutionSet {
            vars,
            rows: Vec::new(),
        }
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column index of a variable, if present.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Reads the binding of `var` in row `i`.
    pub fn get(&self, i: usize, var: &str) -> Option<TermId> {
        self.col(var).and_then(|c| self.rows[i][c])
    }

    /// Appends all rows of `other`, aligning columns by variable name.
    /// Variables missing from `other` become unbound; variables new in
    /// `other` are added as columns (unbound in existing rows).
    pub fn append(&mut self, other: SolutionSet) {
        if self.vars == other.vars {
            self.rows.extend(other.rows);
            return;
        }
        // Add any new columns.
        for v in &other.vars {
            if self.col(v).is_none() {
                self.vars.push(v.clone());
                for row in &mut self.rows {
                    row.push(None);
                }
            }
        }
        let mapping: Vec<usize> = other
            .vars
            .iter()
            .map(|v| self.col(v).expect("column just added"))
            .collect();
        for orow in other.rows {
            let mut row = vec![None; self.vars.len()];
            for (j, val) in orow.into_iter().enumerate() {
                row[mapping[j]] = val;
            }
            self.rows.push(row);
        }
    }

    /// Projects onto the given variables (in the given order). Variables
    /// absent from the schema yield all-unbound columns, matching SPARQL's
    /// treatment of projecting an unbound variable.
    pub fn project(&self, vars: &[String]) -> SolutionSet {
        let cols: Vec<Option<usize>> = vars.iter().map(|v| self.col(v)).collect();
        let rows = self
            .rows
            .iter()
            .map(|row| cols.iter().map(|c| c.and_then(|c| row[c])).collect())
            .collect();
        SolutionSet {
            vars: vars.to_vec(),
            rows,
        }
    }

    /// Removes duplicate rows, preserving first-seen order.
    pub fn dedup(&mut self) {
        let mut seen = lusail_rdf::FxHashSet::default();
        self.rows.retain(|row| seen.insert(row.clone()));
    }

    /// Truncates to at most `n` rows.
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// The distinct binding tuples over the given (present) columns, in
    /// first-seen order. Used by bound joins to build `VALUES` blocks.
    pub fn distinct_tuples(&self, vars: &[String]) -> Vec<Row> {
        let cols: Vec<usize> = vars.iter().filter_map(|v| self.col(v)).collect();
        let mut seen = lusail_rdf::FxHashSet::default();
        let mut out = Vec::new();
        for row in &self.rows {
            let tuple: Row = cols.iter().map(|&c| row[c]).collect();
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
        out
    }

    /// The distinct bound values of `var` across all rows.
    pub fn distinct_values(&self, var: &str) -> Vec<TermId> {
        let Some(c) = self.col(var) else {
            return Vec::new();
        };
        let mut seen = lusail_rdf::FxHashSet::default();
        let mut out = Vec::new();
        for row in &self.rows {
            if let Some(id) = row[c] {
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Canonicalizes for multiset comparison in tests: projects columns in
    /// sorted-variable order and sorts rows. Two solution sets are
    /// SPARQL-equivalent iff their canonical forms are equal.
    pub fn canonicalize(&self) -> SolutionSet {
        let mut vars = self.vars.clone();
        vars.sort();
        let mut out = self.project(&vars);
        out.rows.sort();
        out
    }

    /// Estimates the wire size of this solution set in bytes (used by the
    /// simulated network layer): 8 bytes per cell plus schema overhead.
    pub fn wire_bytes(&self) -> u64 {
        let header: u64 = self.vars.iter().map(|v| v.len() as u64 + 1).sum();
        header + (self.rows.len() as u64) * (self.vars.len() as u64) * 8
    }

    /// Hash-joins two solution sets on their shared variables. Rows join if
    /// all shared variables that are bound on both sides agree; the SPARQL
    /// compatibility rule (unbound matches anything) applies.
    ///
    /// For the common case where shared variables are bound on both sides
    /// this is a standard build/probe hash join on the key of shared
    /// variables; rows with unbound key parts fall back to a scan bucket.
    /// A single shared variable (the overwhelmingly common case) avoids
    /// per-row key allocations entirely.
    pub fn hash_join(&self, other: &SolutionSet) -> SolutionSet {
        let shared: Vec<String> = self
            .vars
            .iter()
            .filter(|v| other.col(v).is_some())
            .cloned()
            .collect();
        if shared.is_empty() {
            return self.cross_join(other);
        }
        if shared.len() == 1 {
            return self.hash_join_single(other, &shared[0]);
        }
        let out_vars: Vec<String> = self
            .vars
            .iter()
            .cloned()
            .chain(other.vars.iter().filter(|v| self.col(v).is_none()).cloned())
            .collect();

        // Build side: smaller relation.
        let (build, probe, build_is_self) = if self.rows.len() <= other.rows.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let build_key_cols: Vec<usize> = shared.iter().map(|v| build.col(v).unwrap()).collect();
        let probe_key_cols: Vec<usize> = shared.iter().map(|v| probe.col(v).unwrap()).collect();

        let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
        let mut unbound_keys: Vec<usize> = Vec::new();
        for (i, row) in build.rows.iter().enumerate() {
            let key: Option<Vec<TermId>> = build_key_cols.iter().map(|&c| row[c]).collect();
            match key {
                Some(key) => table.entry(key).or_default().push(i),
                None => unbound_keys.push(i),
            }
        }

        // Precompute output column sources once: (self column, other
        // column); the join column may be unbound on one side, so both are
        // consulted.
        let col_src: Vec<(Option<usize>, Option<usize>)> = out_vars
            .iter()
            .map(|v| (self.col(v), other.col(v)))
            .collect();
        let mut out = SolutionSet::empty(out_vars);
        let mut emit = |self_row: &Row, other_row: &Row| {
            let row: Row = col_src
                .iter()
                .map(|&(sc, oc)| {
                    let a = sc.and_then(|c| self_row[c]);
                    let b = oc.and_then(|c| other_row[c]);
                    a.or(b)
                })
                .collect();
            out.rows.push(row);
        };

        for prow in &probe.rows {
            let key: Option<Vec<TermId>> = probe_key_cols.iter().map(|&c| prow[c]).collect();
            if let Some(key) = key {
                if let Some(matches) = table.get(&key) {
                    for &bi in matches {
                        let brow = &build.rows[bi];
                        let (srow, orow) = if build_is_self {
                            (brow, prow)
                        } else {
                            (prow, brow)
                        };
                        emit(srow, orow);
                    }
                }
                // Build rows with unbound key parts are compatible with any
                // probe row whose remaining values agree.
                for &bi in &unbound_keys {
                    let brow = &build.rows[bi];
                    if compatible(brow, &build_key_cols, prow, &probe_key_cols) {
                        let (srow, orow) = if build_is_self {
                            (brow, prow)
                        } else {
                            (prow, brow)
                        };
                        emit(srow, orow);
                    }
                }
            } else {
                // Probe row has unbound key parts: scan the whole build side.
                for brow in &build.rows {
                    if compatible(brow, &build_key_cols, prow, &probe_key_cols) {
                        let (srow, orow) = if build_is_self {
                            (brow, prow)
                        } else {
                            (prow, brow)
                        };
                        emit(srow, orow);
                    }
                }
            }
        }
        out
    }

    /// Single-shared-variable hash join: keys are raw `TermId`s, no
    /// per-row allocation.
    fn hash_join_single(&self, other: &SolutionSet, var: &str) -> SolutionSet {
        let out_vars: Vec<String> = self
            .vars
            .iter()
            .cloned()
            .chain(other.vars.iter().filter(|v| self.col(v).is_none()).cloned())
            .collect();
        let (build, probe, build_is_self) = if self.rows.len() <= other.rows.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let bc = build.col(var).expect("shared var");
        let pc = probe.col(var).expect("shared var");

        let mut table: FxHashMap<TermId, Vec<usize>> = FxHashMap::default();
        let mut unbound_keys: Vec<usize> = Vec::new();
        for (i, row) in build.rows.iter().enumerate() {
            match row[bc] {
                Some(key) => table.entry(key).or_default().push(i),
                None => unbound_keys.push(i),
            }
        }

        // Precompute output column sources: (from_self, column).
        let col_src: Vec<(bool, usize)> = out_vars
            .iter()
            .map(|v| match self.col(v) {
                Some(c) => (true, c),
                None => (false, other.col(v).expect("var from other")),
            })
            .collect();
        let mut out = SolutionSet::empty(out_vars);
        let jc = out.col(var).expect("join var in schema");
        let emit = |self_row: &Row, other_row: &Row, key: Option<TermId>, out: &mut SolutionSet| {
            let mut row: Row = col_src
                .iter()
                .map(|&(from_self, c)| if from_self { self_row[c] } else { other_row[c] })
                .collect();
            // The join column may have been copied from the side where
            // it was unbound; patch it with the agreed value.
            if row[jc].is_none() {
                row[jc] = key;
            }
            out.rows.push(row);
        };

        for prow in &probe.rows {
            match prow[pc] {
                Some(key) => {
                    if let Some(matches) = table.get(&key) {
                        for &bi in matches {
                            let brow = &build.rows[bi];
                            let (srow, orow) = if build_is_self {
                                (brow, prow)
                            } else {
                                (prow, brow)
                            };
                            emit(srow, orow, Some(key), &mut out);
                        }
                    }
                    // Build rows unbound on the join var match any key.
                    for &bi in &unbound_keys {
                        let brow = &build.rows[bi];
                        let (srow, orow) = if build_is_self {
                            (brow, prow)
                        } else {
                            (prow, brow)
                        };
                        emit(srow, orow, Some(key), &mut out);
                    }
                }
                None => {
                    // Probe row unbound on the join var: compatible with
                    // every build row.
                    for brow in &build.rows {
                        let (srow, orow) = if build_is_self {
                            (brow, prow)
                        } else {
                            (prow, brow)
                        };
                        emit(srow, orow, brow[bc], &mut out);
                    }
                }
            }
        }
        out
    }

    /// Cross product (no shared variables).
    fn cross_join(&self, other: &SolutionSet) -> SolutionSet {
        let out_vars: Vec<String> = self
            .vars
            .iter()
            .cloned()
            .chain(other.vars.iter().cloned())
            .collect();
        let mut out = SolutionSet::empty(out_vars);
        out.rows.reserve(self.rows.len() * other.rows.len());
        for a in &self.rows {
            for b in &other.rows {
                let mut row = a.clone();
                row.extend(b.iter().copied());
                out.rows.push(row);
            }
        }
        out
    }

    /// Left-joins `other` into `self` (OPTIONAL semantics): rows that find
    /// no compatible partner keep their bindings with the right-hand columns
    /// unbound.
    pub fn left_join(&self, other: &SolutionSet) -> SolutionSet {
        let shared: Vec<String> = self
            .vars
            .iter()
            .filter(|v| other.col(v).is_some())
            .cloned()
            .collect();
        let out_vars: Vec<String> = self
            .vars
            .iter()
            .cloned()
            .chain(other.vars.iter().filter(|v| self.col(v).is_none()).cloned())
            .collect();
        let mut out = SolutionSet::empty(out_vars);
        let self_cols: Vec<usize> = shared.iter().map(|v| self.col(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|v| other.col(v).unwrap()).collect();

        // Index the right side by fully-bound key.
        let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
        let mut loose: Vec<usize> = Vec::new();
        for (i, row) in other.rows.iter().enumerate() {
            let key: Option<Vec<TermId>> = other_cols.iter().map(|&c| row[c]).collect();
            match key {
                Some(k) => table.entry(k).or_default().push(i),
                None => loose.push(i),
            }
        }

        for srow in &self.rows {
            let mut matched = false;
            let key: Option<Vec<TermId>> = self_cols.iter().map(|&c| srow[c]).collect();
            let mut candidates: Vec<usize> = Vec::new();
            match key {
                Some(ref k) => {
                    if let Some(v) = table.get(k) {
                        candidates.extend_from_slice(v);
                    }
                    candidates.extend_from_slice(&loose);
                }
                None => candidates.extend(0..other.rows.len()),
            }
            for oi in candidates {
                let orow = &other.rows[oi];
                if compatible(srow, &self_cols, orow, &other_cols) {
                    matched = true;
                    let mut row: Row = Vec::with_capacity(out.vars.len());
                    for v in &out.vars {
                        let a = self.col(v).and_then(|c| srow[c]);
                        let b = other.col(v).and_then(|c| orow[c]);
                        row.push(a.or(b));
                    }
                    out.rows.push(row);
                }
            }
            if !matched {
                let mut row: Row = Vec::with_capacity(out.vars.len());
                for v in &out.vars {
                    row.push(self.col(v).and_then(|c| srow[c]));
                }
                out.rows.push(row);
            }
        }
        out
    }

    /// Anti-join: keeps rows of `self` with **no** compatible partner in
    /// `other` (the semantics of `FILTER NOT EXISTS` joined on shared vars).
    pub fn anti_join(&self, other: &SolutionSet) -> SolutionSet {
        let shared: Vec<String> = self
            .vars
            .iter()
            .filter(|v| other.col(v).is_some())
            .cloned()
            .collect();
        if shared.is_empty() {
            // NOT EXISTS with no shared variables: keep rows only if the
            // other pattern has no solutions at all.
            return if other.rows.is_empty() {
                self.clone()
            } else {
                SolutionSet::empty(self.vars.clone())
            };
        }
        let self_cols: Vec<usize> = shared.iter().map(|v| self.col(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|v| other.col(v).unwrap()).collect();
        let mut out = SolutionSet::empty(self.vars.clone());
        for srow in &self.rows {
            let has_match = other
                .rows
                .iter()
                .any(|orow| compatible(srow, &self_cols, orow, &other_cols));
            if !has_match {
                out.rows.push(srow.clone());
            }
        }
        out
    }
}

/// SPARQL compatibility on the given key columns: every position where both
/// rows are bound must agree.
fn compatible(a: &Row, a_cols: &[usize], b: &Row, b_cols: &[usize]) -> bool {
    a_cols
        .iter()
        .zip(b_cols)
        .all(|(&ca, &cb)| match (a[ca], b[cb]) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> Option<TermId> {
        Some(TermId(n))
    }

    fn set(vars: &[&str], rows: Vec<Vec<Option<TermId>>>) -> SolutionSet {
        SolutionSet {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn hash_join_on_shared_var() {
        let a = set(&["x", "y"], vec![vec![id(1), id(10)], vec![id(2), id(20)]]);
        let b = set(
            &["y", "z"],
            vec![vec![id(10), id(100)], vec![id(10), id(101)]],
        );
        let j = a.hash_join(&b);
        assert_eq!(j.vars, ["x", "y", "z"]);
        let mut rows = j.rows.clone();
        rows.sort();
        assert_eq!(
            rows,
            vec![vec![id(1), id(10), id(100)], vec![id(1), id(10), id(101)]]
        );
    }

    #[test]
    fn hash_join_no_shared_is_cross() {
        let a = set(&["x"], vec![vec![id(1)], vec![id(2)]]);
        let b = set(&["y"], vec![vec![id(3)]]);
        let j = a.hash_join(&b);
        assert_eq!(j.rows.len(), 2);
    }

    #[test]
    fn hash_join_with_unbound_is_compatible() {
        let a = set(&["x", "y"], vec![vec![id(1), None]]);
        let b = set(&["y", "z"], vec![vec![id(10), id(100)]]);
        let j = a.hash_join(&b);
        assert_eq!(j.rows, vec![vec![id(1), id(10), id(100)]]);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let a = set(&["x"], vec![vec![id(1)], vec![id(2)]]);
        let b = set(&["x", "n"], vec![vec![id(1), id(9)]]);
        let j = a.left_join(&b);
        let mut rows = j.rows.clone();
        rows.sort();
        assert_eq!(rows, vec![vec![id(1), id(9)], vec![id(2), None]]);
    }

    #[test]
    fn anti_join_filters_matches() {
        let a = set(&["x"], vec![vec![id(1)], vec![id(2)]]);
        let b = set(&["x"], vec![vec![id(1)]]);
        let j = a.anti_join(&b);
        assert_eq!(j.rows, vec![vec![id(2)]]);
    }

    #[test]
    fn anti_join_disjoint_vars() {
        let a = set(&["x"], vec![vec![id(1)]]);
        let empty = set(&["z"], vec![]);
        let nonempty = set(&["z"], vec![vec![id(5)]]);
        assert_eq!(a.anti_join(&empty).rows.len(), 1);
        assert_eq!(a.anti_join(&nonempty).rows.len(), 0);
    }

    #[test]
    fn append_aligns_columns() {
        let mut a = set(&["x", "y"], vec![vec![id(1), id(2)]]);
        let b = set(&["y", "z"], vec![vec![id(3), id(4)]]);
        a.append(b);
        assert_eq!(a.vars, ["x", "y", "z"]);
        assert_eq!(a.rows[0], vec![id(1), id(2), None]);
        assert_eq!(a.rows[1], vec![None, id(3), id(4)]);
    }

    #[test]
    fn project_and_dedup() {
        let s = set(
            &["x", "y"],
            vec![vec![id(1), id(2)], vec![id(1), id(3)], vec![id(1), id(2)]],
        );
        let mut p = s.project(&["x".to_string()]);
        assert_eq!(p.rows.len(), 3);
        p.dedup();
        assert_eq!(p.rows, vec![vec![id(1)]]);
    }

    #[test]
    fn distinct_values_skips_unbound() {
        let s = set(
            &["x"],
            vec![vec![id(1)], vec![None], vec![id(1)], vec![id(2)]],
        );
        assert_eq!(s.distinct_values("x"), vec![TermId(1), TermId(2)]);
    }

    #[test]
    fn canonicalize_is_order_insensitive() {
        let a = set(&["x", "y"], vec![vec![id(1), id(2)], vec![id(3), id(4)]]);
        let b = set(&["y", "x"], vec![vec![id(4), id(3)], vec![id(2), id(1)]]);
        assert_eq!(a.canonicalize(), b.canonicalize());
    }
}
