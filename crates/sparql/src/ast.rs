//! The SPARQL query algebra used throughout the workspace.
//!
//! The shapes here are deliberately *flattened*: a [`GroupPattern`] holds its
//! basic graph pattern (the conjunctive triple patterns) alongside filters,
//! optionals, unions, `FILTER NOT EXISTS` groups and an optional `VALUES`
//! block. This is the shape Lusail's locality-aware decomposition (LADE)
//! operates on directly.

use lusail_rdf::TermId;

/// A position in a triple pattern: either a variable (by name, without the
/// leading `?`) or a constant term (dictionary-encoded).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A query variable, e.g. `?s` is `Var("s".into())`.
    Var(String),
    /// A constant RDF term.
    Const(TermId),
}

impl PatternTerm {
    /// The variable name, if this position is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }

    /// The constant term id, if this position is a constant.
    pub fn as_const(&self) -> Option<TermId> {
        match self {
            PatternTerm::Var(_) => None,
            PatternTerm::Const(id) => Some(*id),
        }
    }

    /// True if this position is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, PatternTerm::Var(_))
    }
}

/// A triple pattern `subject predicate object`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        TriplePattern { s, p, o }
    }

    /// Iterates over the variable names appearing in this pattern
    /// (duplicates possible, e.g. `?x ?p ?x`).
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        [&self.s, &self.p, &self.o]
            .into_iter()
            .filter_map(|t| t.as_var())
    }

    /// True if `var` occurs in the subject position.
    pub fn has_subject_var(&self, var: &str) -> bool {
        self.s.as_var() == Some(var)
    }

    /// True if `var` occurs in the object position.
    pub fn has_object_var(&self, var: &str) -> bool {
        self.o.as_var() == Some(var)
    }

    /// True if `var` occurs anywhere in the pattern.
    pub fn mentions(&self, var: &str) -> bool {
        self.vars().any(|v| v == var)
    }

    /// Number of bound (constant) positions — a crude selectivity proxy.
    pub fn bound_positions(&self) -> usize {
        [&self.s, &self.p, &self.o]
            .into_iter()
            .filter(|t| !t.is_var())
            .count()
    }
}

/// Collects the distinct variable names of a set of triple patterns, in
/// first-appearance order (the shared "all variables of these patterns"
/// loop used by subqueries and evaluation units alike).
pub fn collect_pattern_vars<'a>(
    patterns: impl IntoIterator<Item = &'a TriplePattern>,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for tp in patterns {
        for v in tp.vars() {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
    }
    out
}

/// Comparison operators in FILTER expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A FILTER expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant term.
    Const(TermId),
    /// Binary comparison. Numeric comparison is used when both sides have
    /// numeric interpretations, otherwise term/lexicographic comparison.
    Cmp(CmpOp, Box<Expression>, Box<Expression>),
    /// Logical conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Logical negation.
    Not(Box<Expression>),
    /// `BOUND(?v)`.
    Bound(String),
    /// `REGEX(expr, pattern, flags)`; only substring patterns and the `i`
    /// flag are supported (that is what the benchmark queries use).
    Regex(Box<Expression>, String, bool),
    /// `CONTAINS(expr, literal)`.
    Contains(Box<Expression>, String),
    /// `STR(expr)` — the lexical form.
    Str(Box<Expression>),
    /// `LANG(expr)` — the language tag or empty string.
    Lang(Box<Expression>),
    /// `LANGMATCHES(expr, range)`; `*` matches any non-empty tag.
    LangMatches(Box<Expression>, String),
}

impl Expression {
    /// Collects the names of all variables referenced by the expression.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expression::Var(v) | Expression::Bound(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expression::Const(_) => {}
            Expression::Cmp(_, a, b) | Expression::And(a, b) | Expression::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expression::Not(a)
            | Expression::Regex(a, _, _)
            | Expression::Contains(a, _)
            | Expression::Str(a)
            | Expression::Lang(a)
            | Expression::LangMatches(a, _) => a.collect_vars(out),
        }
    }

    /// The set of variables referenced by the expression.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }
}

/// An inline `VALUES` data block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValuesBlock {
    /// The block's variables, in column order.
    pub vars: Vec<String>,
    /// Rows; `None` encodes `UNDEF`.
    pub rows: Vec<Vec<Option<TermId>>>,
}

/// A group graph pattern (the content of `{ … }`), flattened.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// The basic graph pattern: conjunctive triple patterns.
    pub triples: Vec<TriplePattern>,
    /// `FILTER (…)` expressions scoped to this group.
    pub filters: Vec<Expression>,
    /// `OPTIONAL { … }` groups, left-joined in order.
    pub optionals: Vec<GroupPattern>,
    /// `{…} UNION {…} (UNION {…})*` blocks; each entry lists the branches.
    pub unions: Vec<Vec<GroupPattern>>,
    /// `FILTER NOT EXISTS { … }` groups (anti-joins).
    pub not_exists: Vec<GroupPattern>,
    /// An inline `VALUES` block, if present.
    pub values: Option<ValuesBlock>,
}

impl GroupPattern {
    /// A group containing only the given triple patterns.
    pub fn bgp(triples: Vec<TriplePattern>) -> Self {
        GroupPattern {
            triples,
            ..Default::default()
        }
    }

    /// True if the group has no content at all.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
            && self.filters.is_empty()
            && self.optionals.is_empty()
            && self.unions.is_empty()
            && self.not_exists.is_empty()
            && self.values.is_none()
    }

    /// Collects every variable name mentioned anywhere in the group
    /// (triples, filters, nested groups, values), without duplicates.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        let push = |v: &str, out: &mut Vec<String>| {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        };
        for t in &self.triples {
            for v in t.vars() {
                push(v, out);
            }
        }
        for f in &self.filters {
            for v in f.vars() {
                push(&v, out);
            }
        }
        for g in self
            .optionals
            .iter()
            .chain(self.not_exists.iter())
            .chain(self.unions.iter().flatten())
        {
            g.collect_vars(out);
        }
        if let Some(v) = &self.values {
            for var in &v.vars {
                push(var, out);
            }
        }
    }

    /// All variables mentioned in the group.
    pub fn all_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Splits this group's top-level filters into those local to the group
    /// (every variable occurs in the group itself) and those *correlated*
    /// with the enclosing scope. Per SPARQL's LeftJoin/Minus algebra,
    /// correlated filters inside `OPTIONAL` / `FILTER NOT EXISTS` are part
    /// of the join condition and must see the outer bindings; local ones
    /// may be evaluated inside the group.
    pub fn split_correlated_filters(&self) -> (GroupPattern, Vec<Expression>) {
        let mut inner = self.clone();
        let own_vars = {
            let mut g = self.clone();
            g.filters = Vec::new();
            g.all_vars()
        };
        let mut correlated = Vec::new();
        inner.filters = Vec::new();
        for f in &self.filters {
            if f.vars().iter().all(|v| own_vars.contains(v)) {
                inner.filters.push(f.clone());
            } else {
                correlated.push(f.clone());
            }
        }
        (inner, correlated)
    }

    /// All triple patterns in the group *and* its nested groups, in document
    /// order. Useful for source selection, which probes every pattern.
    pub fn all_triples(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        self.collect_triples(&mut out);
        out
    }

    fn collect_triples<'a>(&'a self, out: &mut Vec<&'a TriplePattern>) {
        out.extend(self.triples.iter());
        for g in self
            .optionals
            .iter()
            .chain(self.not_exists.iter())
            .chain(self.unions.iter().flatten())
        {
            g.collect_triples(out);
        }
    }
}

/// The query form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryForm {
    /// `SELECT …`.
    Select,
    /// `ASK` — existence check.
    Ask,
    /// `SELECT (COUNT(*) AS ?alias)` — the cardinality probes Lusail sends.
    CountStar(String),
}

/// An aggregate function in the SELECT clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(?v)` / `COUNT(*)` (with `var: None`).
    Count,
    /// `SUM(?v)` over numeric bindings.
    Sum,
    /// `MIN(?v)`.
    Min,
    /// `MAX(?v)`.
    Max,
    /// `AVG(?v)` over numeric bindings.
    Avg,
}

/// One aggregate projection item: `(FUNC(?var) AS ?alias)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// The aggregated variable; `None` means `*` (COUNT only).
    pub var: Option<String>,
    /// `COUNT(DISTINCT ?v)`.
    pub distinct: bool,
    /// The output variable name.
    pub alias: String,
}

/// One `ORDER BY` key: a variable and its direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The sort variable.
    pub var: String,
    /// True for `DESC(?v)`.
    pub descending: bool,
}

/// A parsed SPARQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The query form.
    pub form: QueryForm,
    /// `DISTINCT` modifier on SELECT.
    pub distinct: bool,
    /// Projected variable names; empty means `SELECT *`.
    pub projection: Vec<String>,
    /// The WHERE pattern.
    pub pattern: GroupPattern,
    /// Aggregate projection items (empty for plain SELECT).
    pub aggregates: Vec<Aggregate>,
    /// `GROUP BY` keys (empty groups everything into one row when
    /// aggregates are present).
    pub group_by: Vec<String>,
    /// `HAVING` constraints, evaluated over the grouped rows (aggregate
    /// aliases are in scope).
    pub having: Vec<Expression>,
    /// `ORDER BY` keys, outermost first.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
}

impl Query {
    /// A plain `SELECT *` over the given pattern.
    pub fn select_all(pattern: GroupPattern) -> Self {
        Query {
            form: QueryForm::Select,
            distinct: false,
            projection: Vec::new(),
            pattern,
            aggregates: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// An `ASK` over the given pattern.
    pub fn ask(pattern: GroupPattern) -> Self {
        Query {
            form: QueryForm::Ask,
            distinct: false,
            projection: Vec::new(),
            pattern,
            aggregates: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// A `SELECT (COUNT(*) AS ?c)` over the given pattern.
    pub fn count(pattern: GroupPattern) -> Self {
        Query {
            form: QueryForm::CountStar("c".into()),
            distinct: false,
            projection: Vec::new(),
            pattern,
            aggregates: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// If this query is the dedicated `SELECT (COUNT(*) AS ?alias)` wire
    /// form, returns the equivalent general aggregate query. Federated
    /// engines use this to count the *global* result at the mediator
    /// instead of concatenating per-endpoint counts.
    pub fn count_star_as_aggregate(&self) -> Option<Query> {
        let QueryForm::CountStar(alias) = &self.form else {
            return None;
        };
        let mut rewritten = self.clone();
        rewritten.form = QueryForm::Select;
        rewritten.aggregates = vec![Aggregate {
            func: AggFunc::Count,
            var: None,
            distinct: false,
            alias: alias.clone(),
        }];
        Some(rewritten)
    }

    /// The variables this query returns: group keys plus aggregate aliases
    /// when aggregating; otherwise the explicit projection, or every
    /// pattern variable for `SELECT *`.
    pub fn output_vars(&self) -> Vec<String> {
        if !self.aggregates.is_empty() {
            let mut out = self.group_by.clone();
            // Plain variables may be projected alongside aggregates when
            // they are group keys; `projection` holds them in order.
            for v in &self.projection {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            out.extend(self.aggregates.iter().map(|a| a.alias.clone()));
            return out;
        }
        if !self.projection.is_empty() {
            self.projection.clone()
        } else {
            self.pattern.all_vars()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    #[test]
    fn triple_pattern_vars() {
        let tp = TriplePattern::new(v("s"), PatternTerm::Const(TermId(0)), v("o"));
        let vars: Vec<_> = tp.vars().collect();
        assert_eq!(vars, ["s", "o"]);
        assert!(tp.has_subject_var("s"));
        assert!(!tp.has_subject_var("o"));
        assert!(tp.has_object_var("o"));
        assert_eq!(tp.bound_positions(), 1);
    }

    #[test]
    fn group_collects_vars_from_nested_groups() {
        let mut g = GroupPattern::bgp(vec![TriplePattern::new(
            v("a"),
            PatternTerm::Const(TermId(0)),
            v("b"),
        )]);
        g.optionals.push(GroupPattern::bgp(vec![TriplePattern::new(
            v("b"),
            PatternTerm::Const(TermId(1)),
            v("c"),
        )]));
        g.filters.push(Expression::Bound("d".into()));
        let vars = g.all_vars();
        assert_eq!(vars, ["a", "b", "d", "c"]);
    }

    #[test]
    fn all_triples_walks_nested_groups() {
        let inner = GroupPattern::bgp(vec![TriplePattern::new(
            v("x"),
            PatternTerm::Const(TermId(1)),
            v("y"),
        )]);
        let mut g = GroupPattern::bgp(vec![TriplePattern::new(
            v("a"),
            PatternTerm::Const(TermId(0)),
            v("x"),
        )]);
        g.unions.push(vec![inner.clone(), inner.clone()]);
        g.not_exists.push(inner);
        assert_eq!(g.all_triples().len(), 4);
    }

    #[test]
    fn expression_vars_dedup() {
        let e = Expression::And(
            Box::new(Expression::Cmp(
                CmpOp::Lt,
                Box::new(Expression::Var("x".into())),
                Box::new(Expression::Var("y".into())),
            )),
            Box::new(Expression::Bound("x".into())),
        );
        assert_eq!(e.vars(), ["x", "y"]);
    }

    #[test]
    fn output_vars_select_star() {
        let q = Query::select_all(GroupPattern::bgp(vec![TriplePattern::new(
            v("s"),
            v("p"),
            v("o"),
        )]));
        assert_eq!(q.output_vars(), ["s", "p", "o"]);
    }
}
