//! Serializing queries back to SPARQL text.
//!
//! Used to simulate the wire format between the federated engine and the
//! endpoints (byte counting) and for human-readable diagnostics. The writer
//! emits full IRIs (no prefixes), so `parse(write(q))` reproduces `q`.

use crate::ast::*;
use lusail_rdf::{Dictionary, TermId};
use std::fmt::Write;

/// Serializes a query to SPARQL text.
pub fn write_query(q: &Query, dict: &Dictionary) -> String {
    let mut out = String::new();
    match &q.form {
        QueryForm::Select => {
            out.push_str("SELECT ");
            if q.distinct {
                out.push_str("DISTINCT ");
            }
            if q.projection.is_empty() && q.aggregates.is_empty() {
                out.push_str("* ");
            } else {
                for v in &q.projection {
                    let _ = write!(out, "?{v} ");
                }
                for a in &q.aggregates {
                    let func = match a.func {
                        AggFunc::Count => "COUNT",
                        AggFunc::Sum => "SUM",
                        AggFunc::Min => "MIN",
                        AggFunc::Max => "MAX",
                        AggFunc::Avg => "AVG",
                    };
                    let _ = write!(out, "({func}(");
                    if a.distinct {
                        out.push_str("DISTINCT ");
                    }
                    match &a.var {
                        Some(v) => {
                            let _ = write!(out, "?{v}");
                        }
                        None => out.push('*'),
                    }
                    let _ = write!(out, ") AS ?{}) ", a.alias);
                }
            }
        }
        QueryForm::Ask => out.push_str("ASK "),
        QueryForm::CountStar(alias) => {
            let _ = write!(out, "SELECT (COUNT(*) AS ?{alias}) ");
        }
    }
    if !matches!(q.form, QueryForm::Ask) {
        out.push_str("WHERE ");
    }
    write_group(&mut out, &q.pattern, dict);
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for v in &q.group_by {
            let _ = write!(out, " ?{v}");
        }
    }
    for h in &q.having {
        out.push_str(" HAVING (");
        write_expr(&mut out, h, dict);
        out.push(')');
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for key in &q.order_by {
            if key.descending {
                let _ = write!(out, " DESC(?{})", key.var);
            } else {
                let _ = write!(out, " ?{}", key.var);
            }
        }
    }
    if let Some(limit) = q.limit {
        let _ = write!(out, " LIMIT {limit}");
    }
    out
}

fn write_group(out: &mut String, g: &GroupPattern, dict: &Dictionary) {
    out.push_str("{ ");
    for t in &g.triples {
        write_pattern_term(out, &t.s, dict);
        out.push(' ');
        write_pattern_term(out, &t.p, dict);
        out.push(' ');
        write_pattern_term(out, &t.o, dict);
        out.push_str(" . ");
    }
    if let Some(values) = &g.values {
        write_values(out, values, dict);
    }
    for branches in &g.unions {
        for (i, b) in branches.iter().enumerate() {
            if i > 0 {
                out.push_str(" UNION ");
            }
            write_group(out, b, dict);
        }
        out.push(' ');
    }
    for opt in &g.optionals {
        out.push_str("OPTIONAL ");
        write_group(out, opt, dict);
        out.push(' ');
    }
    for ne in &g.not_exists {
        out.push_str("FILTER NOT EXISTS ");
        write_group(out, ne, dict);
        out.push(' ');
    }
    for f in &g.filters {
        out.push_str("FILTER (");
        write_expr(out, f, dict);
        out.push_str(") ");
    }
    out.push('}');
}

fn write_values(out: &mut String, v: &ValuesBlock, dict: &Dictionary) {
    out.push_str("VALUES (");
    for var in &v.vars {
        let _ = write!(out, "?{var} ");
    }
    out.push_str(") { ");
    for row in &v.rows {
        out.push('(');
        for cell in row {
            match cell {
                Some(id) => write_const(out, *id, dict),
                None => out.push_str("UNDEF"),
            }
            out.push(' ');
        }
        out.push_str(") ");
    }
    out.push_str("} ");
}

fn write_pattern_term(out: &mut String, t: &PatternTerm, dict: &Dictionary) {
    match t {
        PatternTerm::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        PatternTerm::Const(id) => write_const(out, *id, dict),
    }
}

fn write_const(out: &mut String, id: TermId, dict: &Dictionary) {
    let _ = write!(out, "{}", dict.decode(id));
}

fn write_expr(out: &mut String, e: &Expression, dict: &Dictionary) {
    match e {
        Expression::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        Expression::Const(id) => write_const(out, *id, dict),
        Expression::Cmp(op, a, b) => {
            out.push('(');
            write_expr(out, a, dict);
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            let _ = write!(out, " {sym} ");
            write_expr(out, b, dict);
            out.push(')');
        }
        Expression::And(a, b) => {
            out.push('(');
            write_expr(out, a, dict);
            out.push_str(" && ");
            write_expr(out, b, dict);
            out.push(')');
        }
        Expression::Or(a, b) => {
            out.push('(');
            write_expr(out, a, dict);
            out.push_str(" || ");
            write_expr(out, b, dict);
            out.push(')');
        }
        Expression::Not(a) => {
            out.push_str("!(");
            write_expr(out, a, dict);
            out.push(')');
        }
        Expression::Bound(v) => {
            let _ = write!(out, "BOUND(?{v})");
        }
        Expression::Regex(a, pat, ci) => {
            out.push_str("REGEX(");
            write_expr(out, a, dict);
            let _ = write!(out, ", \"{pat}\"");
            if *ci {
                out.push_str(", \"i\"");
            }
            out.push(')');
        }
        Expression::Contains(a, s) => {
            out.push_str("CONTAINS(");
            write_expr(out, a, dict);
            let _ = write!(out, ", \"{s}\")");
        }
        Expression::Str(a) => {
            out.push_str("STR(");
            write_expr(out, a, dict);
            out.push(')');
        }
        Expression::Lang(a) => {
            out.push_str("LANG(");
            write_expr(out, a, dict);
            out.push(')');
        }
        Expression::LangMatches(a, r) => {
            out.push_str("LANGMATCHES(");
            write_expr(out, a, dict);
            let _ = write!(out, ", \"{r}\")");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use lusail_rdf::Dictionary;

    fn roundtrip(query: &str) {
        let dict = Dictionary::new();
        let q1 = parse_query(query, &dict).unwrap();
        let text = write_query(&q1, &dict);
        let q2 = parse_query(&text, &dict)
            .unwrap_or_else(|e| panic!("re-parse of {text:?} failed: {e}"));
        assert_eq!(q1, q2, "roundtrip mismatch for {text:?}");
    }

    #[test]
    fn roundtrip_select() {
        roundtrip("SELECT ?s ?o WHERE { ?s <http://x/p> ?o . ?o <http://x/q> \"v\"@en }");
    }

    #[test]
    fn roundtrip_ask_and_count() {
        roundtrip("ASK { ?s ?p ?o }");
        roundtrip("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }");
    }

    #[test]
    fn roundtrip_filters() {
        roundtrip(
            "SELECT ?x WHERE { ?x <http://x/age> ?a . FILTER ((?a >= 18 && !(?a > 65)) || BOUND(?x)) }",
        );
        roundtrip("SELECT ?x WHERE { ?x <http://x/n> ?n . FILTER REGEX(STR(?n), \"ab\", \"i\") }");
    }

    #[test]
    fn roundtrip_structure() {
        roundtrip(
            "SELECT * WHERE { ?s <http://x/p> ?o . OPTIONAL { ?o <http://x/q> ?z } \
             FILTER NOT EXISTS { ?o <http://x/r> ?w } }",
        );
        roundtrip("SELECT ?x WHERE { { ?x <http://x/a> ?y } UNION { ?x <http://x/b> ?y } }");
        roundtrip(
            "SELECT ?x WHERE { ?x <http://x/p> ?y . VALUES (?x ?y) { (<http://x/1> UNDEF) (<http://x/2> \"s\") } } LIMIT 3",
        );
    }

    #[test]
    fn roundtrip_distinct_limit() {
        roundtrip("SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 10");
    }

    #[test]
    fn values_block_literal_escaping_roundtrips() {
        // VALUES cells carry arbitrary constants across the wire (bound
        // execution ships bindings this way), so the writer's escaping
        // must survive a parse for every awkward literal shape.
        use lusail_rdf::Term;
        let dict = Dictionary::new();
        let tricky = [
            Term::lit("he said \"hi\""),
            Term::lit("line one\nline two"),
            Term::lit("tab\there, cr\rthere"),
            Term::lit("backslash \\ then quote \""),
            Term::lit(""),
            Term::lang_lit("gr\u{fc}\u{df}e \"quoted\"", "de"),
            Term::lang_lit("newline\nin tagged", "en"),
            Term::int(-42),
        ];
        let mut rows: Vec<Vec<Option<TermId>>> = tricky
            .iter()
            .map(|t| vec![Some(dict.encode(t)), None])
            .collect();
        rows.push(vec![None, Some(dict.encode(&Term::lit("\\\"\n")))]);
        let mut pattern = GroupPattern::bgp(vec![TriplePattern::new(
            PatternTerm::Var("x".into()),
            PatternTerm::Const(dict.encode(&Term::iri("http://x/p"))),
            PatternTerm::Var("y".into()),
        )]);
        pattern.values = Some(ValuesBlock {
            vars: vec!["x".into(), "y".into()],
            rows,
        });
        let q1 = Query::select_all(pattern);
        let text = write_query(&q1, &dict);
        let q2 = parse_query(&text, &dict)
            .unwrap_or_else(|e| panic!("re-parse of {text:?} failed: {e}"));
        assert_eq!(q1, q2, "roundtrip mismatch for {text:?}");
    }

    #[test]
    fn values_block_unusual_iris_roundtrip() {
        // IRIs with legal-but-uncommon characters (the lexer admits
        // anything except whitespace, braces, and '>').
        use lusail_rdf::Term;
        let dict = Dictionary::new();
        let iris = [
            Term::iri("http://x/ok?query=a&b=c#frag"),
            Term::iri("http://x/percent%20encoded"),
            Term::iri("http://x/odd'chars!$()*+,;=[]@"),
            Term::iri("http://x/caret^pipe|backtick`quote\""),
            Term::iri("urn:uuid:6e8bc430-9c3a-11d9-9669-0800200c9a66"),
        ];
        let rows: Vec<Vec<Option<TermId>>> =
            iris.iter().map(|t| vec![Some(dict.encode(t))]).collect();
        let mut pattern = GroupPattern::bgp(vec![TriplePattern::new(
            PatternTerm::Var("x".into()),
            PatternTerm::Const(dict.encode(&Term::iri("http://x/p"))),
            PatternTerm::Var("o".into()),
        )]);
        pattern.values = Some(ValuesBlock {
            vars: vec!["x".into()],
            rows,
        });
        let q1 = Query::select_all(pattern);
        let text = write_query(&q1, &dict);
        let q2 = parse_query(&text, &dict)
            .unwrap_or_else(|e| panic!("re-parse of {text:?} failed: {e}"));
        assert_eq!(q1, q2, "roundtrip mismatch for {text:?}");
    }
}
