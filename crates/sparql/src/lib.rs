//! A SPARQL subset sufficient for federated query processing à la Lusail
//! (ICDE 2017).
//!
//! The crate provides:
//!
//! * [`ast`] — the query algebra: `SELECT`/`ASK`/`SELECT (COUNT(*) …)`
//!   forms over group graph patterns with basic graph patterns, `FILTER`
//!   (including `FILTER NOT EXISTS`), `OPTIONAL`, `UNION`, `VALUES`,
//!   `DISTINCT` and `LIMIT`;
//! * [`parser`] — a hand-written recursive-descent parser that interns all
//!   constant terms into a shared [`Dictionary`](lusail_rdf::Dictionary);
//! * [`writer`] — a serializer back to SPARQL text, used to simulate the
//!   wire format between the federated engine and the endpoints;
//! * [`solution`] — result sets (`SolutionSet`) exchanged between engines
//!   and endpoints.
//!
//! The subset is exactly what the paper's workloads exercise; anything
//! outside it is a parse error rather than a silent misinterpretation.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod solution;
pub mod writer;

pub use ast::{
    CmpOp, Expression, GroupPattern, PatternTerm, Query, QueryForm, TriplePattern, ValuesBlock,
};
pub use parser::{parse_query, ParseError};
pub use solution::{Row, SolutionSet};
pub use writer::write_query;
