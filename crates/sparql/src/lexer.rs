//! Tokenizer for the SPARQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<…>` IRI reference (contents only).
    Iri(String),
    /// Prefixed name `prefix:local` (the prefix may be empty).
    PName(String, String),
    /// `?name` or `$name` variable (name only).
    Var(String),
    /// String literal with optional language tag / datatype IRI.
    Literal {
        /// Lexical form with escapes resolved.
        lexical: String,
        /// `@lang`, if present.
        lang: Option<String>,
        /// `^^<iri>` datatype, if present.
        datatype: Option<String>,
    },
    /// Numeric literal, kept in source form.
    Number(String),
    /// A bare word: keyword or the `a` shorthand. Uppercased for keywords.
    Word(String),
    /// Single punctuation: `{ } ( ) . ; , * =`.
    Punct(char),
    /// `!=`, `<=`, `>=`, `&&`, `||`, `!`, `<`, `>`.
    Op(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Iri(i) => write!(f, "<{i}>"),
            Token::PName(p, l) => write!(f, "{p}:{l}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Literal { lexical, .. } => write!(f, "\"{lexical}\""),
            Token::Number(n) => write!(f, "{n}"),
            Token::Word(w) => write!(f, "{w}"),
            Token::Punct(c) => write!(f, "{c}"),
            Token::Op(o) => write!(f, "{o}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Error produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

/// Tokenizes a SPARQL query string. `#` starts a comment to end of line
/// (except inside IRIs/literals).
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '<' => {
                // Either an IRI or the `<`/`<=` operator. An IRI follows `<`
                // with no whitespace and contains no spaces before `>`.
                if let Some((iri, next)) = try_iri(input, i) {
                    tokens.push(Token::Iri(iri));
                    i = next;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("<="));
                    i += 2;
                } else {
                    tokens.push(Token::Op("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Op(">"));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("!="));
                    i += 2;
                } else {
                    tokens.push(Token::Op("!"));
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::Op("&&"));
                    i += 2;
                } else {
                    return Err(err(i, "stray '&'"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::Op("||"));
                    i += 2;
                } else {
                    return Err(err(i, "stray '|'"));
                }
            }
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_name_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(err(i, "empty variable name"));
                }
                tokens.push(Token::Var(input[start..j].to_string()));
                i = j;
            }
            '"' => {
                let (tok, next) = lex_string(input, i)?;
                tokens.push(tok);
                i = next;
            }
            '{' | '}' | '(' | ')' | '.' | ';' | ',' | '*' | '=' => {
                // '.' could start a decimal like `.5`; the workloads never
                // use that form, so '.' is always punctuation here.
                tokens.push(Token::Punct(c));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E')
                {
                    // Don't swallow a trailing '.' (triple terminator).
                    if bytes[j] == b'.'
                        && !(j + 1 < bytes.len() && (bytes[j + 1] as char).is_ascii_digit())
                    {
                        break;
                    }
                    j += 1;
                }
                if j == start + 1 && !(bytes[start] as char).is_ascii_digit() {
                    return Err(err(i, "stray sign character"));
                }
                tokens.push(Token::Number(input[start..j].to_string()));
                i = j;
            }
            c if is_name_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_name_char(bytes[j] as char) {
                    j += 1;
                }
                // Prefixed name if immediately followed by ':'.
                if j < bytes.len() && bytes[j] == b':' {
                    let prefix = input[start..j].to_string();
                    let lstart = j + 1;
                    let mut k = lstart;
                    while k < bytes.len() && is_local_char(bytes[k] as char) {
                        k += 1;
                    }
                    tokens.push(Token::PName(prefix, input[lstart..k].to_string()));
                    i = k;
                } else {
                    tokens.push(Token::Word(input[start..j].to_string()));
                    i = j;
                }
            }
            ':' => {
                // Prefixed name with empty prefix.
                let lstart = i + 1;
                let mut k = lstart;
                while k < bytes.len() && is_local_char(bytes[k] as char) {
                    k += 1;
                }
                tokens.push(Token::PName(String::new(), input[lstart..k].to_string()));
                i = k;
            }
            _ => return Err(err(i, &format!("unexpected character {c:?}"))),
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn err(position: usize, message: &str) -> LexError {
    LexError {
        position,
        message: message.to_string(),
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_local_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Attempts to lex an IRI starting at `start` (which must be `<`). Returns
/// the IRI contents and the index after `>`. IRIs must not contain
/// whitespace; if a space or newline is hit first, this is not an IRI.
fn try_iri(input: &str, start: usize) -> Option<(String, usize)> {
    let bytes = input.as_bytes();
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'>' => return Some((input[start + 1..j].to_string(), j + 1)),
            b' ' | b'\t' | b'\n' | b'\r' | b'{' | b'}' => return None,
            _ => j += 1,
        }
    }
    None
}

fn lex_string(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut lexical = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(err(start, "unterminated string literal"));
        }
        match bytes[i] {
            b'"' => {
                i += 1;
                break;
            }
            b'\\' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'n') => lexical.push('\n'),
                    Some(b't') => lexical.push('\t'),
                    Some(b'r') => lexical.push('\r'),
                    Some(b'"') => lexical.push('"'),
                    Some(b'\\') => lexical.push('\\'),
                    _ => return Err(err(i, "bad escape in string literal")),
                }
                i += 1;
            }
            _ => {
                // Copy one UTF-8 character.
                let ch = input[i..].chars().next().unwrap();
                lexical.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    // Optional @lang or ^^<iri>.
    if i < bytes.len() && bytes[i] == b'@' {
        let lstart = i + 1;
        let mut j = lstart;
        while j < bytes.len() && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'-') {
            j += 1;
        }
        if j == lstart {
            return Err(err(i, "empty language tag"));
        }
        return Ok((
            Token::Literal {
                lexical,
                lang: Some(input[lstart..j].to_string()),
                datatype: None,
            },
            j,
        ));
    }
    if i + 1 < bytes.len() && bytes[i] == b'^' && bytes[i + 1] == b'^' {
        let (iri, next) = try_iri(input, i + 2).ok_or_else(|| err(i, "expected IRI after '^^'"))?;
        return Ok((
            Token::Literal {
                lexical,
                lang: None,
                datatype: Some(iri),
            },
            next,
        ));
    }
    Ok((
        Token::Literal {
            lexical,
            lang: None,
            datatype: None,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT ?s WHERE { ?s <http://x/p> \"v\" . }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Var("s".into()),
                Token::Word("WHERE".into()),
                Token::Punct('{'),
                Token::Var("s".into()),
                Token::Iri("http://x/p".into()),
                Token::Literal {
                    lexical: "v".into(),
                    lang: None,
                    datatype: None
                },
                Token::Punct('.'),
                Token::Punct('}'),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn prefixed_names() {
        let toks = tokenize("ub:GraduateStudent rdf:type :local").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::PName("ub".into(), "GraduateStudent".into()),
                Token::PName("rdf".into(), "type".into()),
                Token::PName("".into(), "local".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_vs_iri() {
        let toks = tokenize("FILTER (?x < 5 && ?y >= 2)").unwrap();
        assert!(toks.contains(&Token::Op("<")));
        assert!(toks.contains(&Token::Op(">=")));
        assert!(toks.contains(&Token::Op("&&")));
        // `<http://x>` must still lex as an IRI.
        let toks = tokenize("?x = <http://x>").unwrap();
        assert!(toks.contains(&Token::Iri("http://x".into())));
    }

    #[test]
    fn numbers_do_not_swallow_dot_terminator() {
        let toks = tokenize("?s ?p 5 .").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Var("s".into()),
                Token::Var("p".into()),
                Token::Number("5".into()),
                Token::Punct('.'),
                Token::Eof,
            ]
        );
        let toks = tokenize("3.5 .").unwrap();
        assert_eq!(toks[0], Token::Number("3.5".into()));
        assert_eq!(toks[1], Token::Punct('.'));
    }

    #[test]
    fn string_with_lang_and_datatype() {
        let toks = tokenize("\"hi\"@en \"3\"^^<http://dt>").unwrap();
        assert_eq!(
            toks[0],
            Token::Literal {
                lexical: "hi".into(),
                lang: Some("en".into()),
                datatype: None
            }
        );
        assert_eq!(
            toks[1],
            Token::Literal {
                lexical: "3".into(),
                lang: None,
                datatype: Some("http://dt".into())
            }
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("?s # comment with <junk> \"stuff\"\n?p").unwrap();
        assert_eq!(
            toks,
            vec![Token::Var("s".into()), Token::Var("p".into()), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn escaped_quotes_in_string() {
        let toks = tokenize(r#""a\"b""#).unwrap();
        assert_eq!(
            toks[0],
            Token::Literal {
                lexical: "a\"b".into(),
                lang: None,
                datatype: None
            }
        );
    }
}
