//! Recursive-descent parser for the SPARQL subset.
//!
//! Constants are interned into the supplied [`Dictionary`] during parsing,
//! so the resulting [`Query`] is ready for evaluation against any store that
//! shares that dictionary.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use lusail_rdf::{vocab, Dictionary, Term, TermId};

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SPARQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses a SPARQL query string, interning constants into `dict`.
///
/// ```
/// use lusail_rdf::Dictionary;
/// use lusail_sparql::parse_query;
///
/// let dict = Dictionary::new();
/// let q = parse_query(
///     "PREFIX ex: <http://example.org/> \
///      SELECT ?name WHERE { ?p ex:name ?name . FILTER (?name != \"N/A\") } \
///      ORDER BY ?name LIMIT 10",
///     &dict,
/// )
/// .unwrap();
/// assert_eq!(q.projection, ["name"]);
/// assert_eq!(q.limit, Some(10));
/// assert_eq!(q.pattern.filters.len(), 1);
/// ```
pub fn parse_query(input: &str, dict: &Dictionary) -> Result<Query, ParseError> {
    let tokens = tokenize(input)
        .map_err(|e| ParseError(format!("lex error at byte {}: {}", e.position, e.message)))?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        dict,
        prefixes: Vec::new(),
    };
    let q = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(q)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    dict: &'a Dictionary,
    prefixes: Vec<(String, String)>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError(format!("{msg} (at {})", self.peek())))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if *self.peek() == Token::Punct(c) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            self.error(&format!("expected '{c}'"))
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.error(&format!("expected keyword {kw}"))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            self.error("unexpected trailing content")
        }
    }

    fn resolve_prefix(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        for (p, iri) in &self.prefixes {
            if p == prefix {
                return Ok(format!("{iri}{local}"));
            }
        }
        // Built-in well-known prefixes, so short test queries don't need a
        // prologue.
        match prefix {
            "rdf" => Ok(format!(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#{local}"
            )),
            "rdfs" => Ok(format!("http://www.w3.org/2000/01/rdf-schema#{local}")),
            "owl" => Ok(format!("http://www.w3.org/2002/07/owl#{local}")),
            "xsd" => Ok(format!("http://www.w3.org/2001/XMLSchema#{local}")),
            _ => Err(ParseError(format!("unknown prefix '{prefix}:'"))),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.parse_prologue()?;
        if self.at_keyword("SELECT") {
            self.parse_select()
        } else if self.at_keyword("ASK") {
            self.next();
            let pattern = self.parse_group()?;
            Ok(Query::ask(pattern))
        } else {
            self.error("expected SELECT or ASK")
        }
    }

    fn parse_prologue(&mut self) -> Result<(), ParseError> {
        while self.eat_keyword("PREFIX") {
            let (prefix, local) = match self.next() {
                Token::PName(p, l) => (p, l),
                t => return Err(ParseError(format!("expected prefix name, got {t}"))),
            };
            if !local.is_empty() {
                return Err(ParseError(format!(
                    "prefix declaration '{prefix}:{local}' must end with ':'"
                )));
            }
            let iri = match self.next() {
                Token::Iri(i) => i,
                t => return Err(ParseError(format!("expected IRI after PREFIX, got {t}"))),
            };
            self.prefixes.push((prefix, iri));
        }
        Ok(())
    }

    fn parse_select(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut form = QueryForm::Select;
        let mut projection = Vec::new();
        let mut aggregates: Vec<Aggregate> = Vec::new();
        if self.eat_punct('*') {
            // SELECT * — empty projection.
        } else {
            loop {
                match self.peek() {
                    Token::Var(_) => {
                        if let Token::Var(v) = self.next() {
                            projection.push(v);
                        }
                    }
                    Token::Punct('(') => {
                        aggregates.push(self.parse_aggregate()?);
                    }
                    _ => break,
                }
            }
            if projection.is_empty() && aggregates.is_empty() {
                return self.error("expected projection variables, '*', or (AGG(…) AS ?v)");
            }
        }
        // WHERE is optional in SPARQL.
        self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Token::Var(_) = self.peek() {
                if let Token::Var(v) = self.next() {
                    group_by.push(v);
                }
            }
            if group_by.is_empty() {
                return self.error("empty GROUP BY clause");
            }
        }
        let mut having = Vec::new();
        while self.eat_keyword("HAVING") {
            having.push(self.parse_bracketed_or_builtin()?);
        }
        // `SELECT (COUNT(*) AS ?c)` with no grouping keeps the dedicated
        // CountStar form (the wire protocol for cardinality probes).
        if group_by.is_empty()
            && projection.is_empty()
            && aggregates.len() == 1
            && aggregates[0].func == AggFunc::Count
            && aggregates[0].var.is_none()
            && !aggregates[0].distinct
        {
            form = QueryForm::CountStar(aggregates.pop().unwrap().alias);
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek().clone() {
                    Token::Var(v) => {
                        self.next();
                        order_by.push(OrderKey {
                            var: v,
                            descending: false,
                        });
                    }
                    Token::Word(w)
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let descending = w.eq_ignore_ascii_case("DESC");
                        self.next();
                        self.expect_punct('(')?;
                        let v = match self.next() {
                            Token::Var(v) => v,
                            t => {
                                return Err(ParseError(format!(
                                    "expected variable in ORDER BY, got {t}"
                                )))
                            }
                        };
                        self.expect_punct(')')?;
                        order_by.push(OrderKey { var: v, descending });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return self.error("empty ORDER BY clause");
            }
        }
        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Token::Number(n) => {
                    limit = Some(
                        n.parse::<usize>()
                            .map_err(|_| ParseError(format!("bad LIMIT value {n}")))?,
                    );
                }
                t => return Err(ParseError(format!("expected number after LIMIT, got {t}"))),
            }
        }
        Ok(Query {
            form,
            distinct,
            projection,
            pattern,
            aggregates,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// Parses `(FUNC(DISTINCT? (* | ?v)) AS ?alias)`.
    fn parse_aggregate(&mut self) -> Result<Aggregate, ParseError> {
        self.expect_punct('(')?;
        let func = match self.next() {
            Token::Word(w) if w.eq_ignore_ascii_case("COUNT") => AggFunc::Count,
            Token::Word(w) if w.eq_ignore_ascii_case("SUM") => AggFunc::Sum,
            Token::Word(w) if w.eq_ignore_ascii_case("MIN") => AggFunc::Min,
            Token::Word(w) if w.eq_ignore_ascii_case("MAX") => AggFunc::Max,
            Token::Word(w) if w.eq_ignore_ascii_case("AVG") => AggFunc::Avg,
            t => return Err(ParseError(format!("expected aggregate function, got {t}"))),
        };
        self.expect_punct('(')?;
        let distinct = self.eat_keyword("DISTINCT");
        let var = if self.eat_punct('*') {
            if func != AggFunc::Count {
                return self.error("only COUNT supports '*'");
            }
            None
        } else {
            match self.next() {
                Token::Var(v) => Some(v),
                t => return Err(ParseError(format!("expected variable or '*', got {t}"))),
            }
        };
        self.expect_punct(')')?;
        self.expect_keyword("AS")?;
        let alias = match self.next() {
            Token::Var(v) => v,
            t => return Err(ParseError(format!("expected alias variable, got {t}"))),
        };
        self.expect_punct(')')?;
        Ok(Aggregate {
            func,
            var,
            distinct,
            alias,
        })
    }

    /// Parses `{ … }` into a flattened [`GroupPattern`].
    fn parse_group(&mut self) -> Result<GroupPattern, ParseError> {
        self.expect_punct('{')?;
        let mut group = GroupPattern::default();
        loop {
            if self.eat_punct('}') {
                return Ok(group);
            }
            match self.peek() {
                Token::Eof => return self.error("unexpected end of input inside group"),
                Token::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.next();
                    if self.eat_keyword("NOT") {
                        self.expect_keyword("EXISTS")?;
                        let inner = self.parse_group()?;
                        group.not_exists.push(inner);
                    } else {
                        let expr = self.parse_bracketed_or_builtin()?;
                        group.filters.push(expr);
                    }
                    self.eat_punct('.');
                }
                Token::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.next();
                    let inner = self.parse_group()?;
                    group.optionals.push(inner);
                    self.eat_punct('.');
                }
                Token::Word(w) if w.eq_ignore_ascii_case("VALUES") => {
                    self.next();
                    let block = self.parse_values()?;
                    if group.values.is_some() {
                        return self.error("multiple VALUES blocks in one group");
                    }
                    group.values = Some(block);
                    self.eat_punct('.');
                }
                Token::Punct('{') => {
                    // Nested group: either a UNION chain or a plain subgroup.
                    let first = self.parse_group()?;
                    if self.at_keyword("UNION") {
                        let mut branches = vec![first];
                        while self.eat_keyword("UNION") {
                            branches.push(self.parse_group()?);
                        }
                        group.unions.push(branches);
                    } else {
                        // Flatten a plain nested group into the parent.
                        merge_group(&mut group, first)?;
                    }
                    self.eat_punct('.');
                }
                _ => {
                    self.parse_triples_block(&mut group.triples)?;
                }
            }
        }
    }

    /// Parses a triples block: `s p o (; p o)* (, o)* .?`
    fn parse_triples_block(&mut self, triples: &mut Vec<TriplePattern>) -> Result<(), ParseError> {
        let s = self.parse_pattern_term(Position::Subject)?;
        loop {
            let p = self.parse_pattern_term(Position::Predicate)?;
            loop {
                let o = self.parse_pattern_term(Position::Object)?;
                triples.push(TriplePattern::new(s.clone(), p.clone(), o));
                if !self.eat_punct(',') {
                    break;
                }
            }
            if !self.eat_punct(';') {
                break;
            }
            // Allow a dangling ';' before '.' or '}'.
            if matches!(self.peek(), Token::Punct('.') | Token::Punct('}')) {
                break;
            }
        }
        self.eat_punct('.');
        Ok(())
    }

    fn parse_pattern_term(&mut self, position: Position) -> Result<PatternTerm, ParseError> {
        match self.next() {
            Token::Var(v) => Ok(PatternTerm::Var(v)),
            Token::Iri(i) => Ok(PatternTerm::Const(self.dict.encode(&Term::iri(i)))),
            Token::PName(p, l) => {
                let iri = self.resolve_prefix(&p, &l)?;
                Ok(PatternTerm::Const(self.dict.encode(&Term::iri(iri))))
            }
            Token::Word(w) if w == "a" && position == Position::Predicate => Ok(
                PatternTerm::Const(self.dict.encode(&Term::iri(vocab::RDF_TYPE))),
            ),
            Token::Literal {
                lexical,
                lang,
                datatype,
            } if position == Position::Object => {
                Ok(PatternTerm::Const(self.dict.encode(&Term::Literal {
                    lexical,
                    lang,
                    datatype,
                })))
            }
            Token::Number(n) if position == Position::Object => {
                Ok(PatternTerm::Const(self.encode_number(&n)))
            }
            t => Err(ParseError(format!(
                "unexpected {t} in {position:?} position"
            ))),
        }
    }

    fn encode_number(&self, n: &str) -> TermId {
        let datatype = if n.contains('.') || n.contains('e') || n.contains('E') {
            vocab::XSD_DECIMAL
        } else {
            vocab::XSD_INTEGER
        };
        self.dict.encode(&Term::Literal {
            lexical: n.to_string(),
            lang: None,
            datatype: Some(datatype.to_string()),
        })
    }

    fn parse_values(&mut self) -> Result<ValuesBlock, ParseError> {
        let mut vars = Vec::new();
        let multi = self.eat_punct('(');
        loop {
            match self.peek() {
                Token::Var(_) => {
                    if let Token::Var(v) = self.next() {
                        vars.push(v);
                    }
                    if !multi {
                        break;
                    }
                }
                Token::Punct(')') if multi => {
                    self.next();
                    break;
                }
                t => return Err(ParseError(format!("expected variable in VALUES, got {t}"))),
            }
        }
        self.expect_punct('{')?;
        let mut rows = Vec::new();
        loop {
            if self.eat_punct('}') {
                break;
            }
            let mut row = Vec::with_capacity(vars.len());
            if multi {
                self.expect_punct('(')?;
                while !self.eat_punct(')') {
                    row.push(self.parse_values_cell()?);
                }
            } else {
                row.push(self.parse_values_cell()?);
            }
            if row.len() != vars.len() {
                return Err(ParseError(format!(
                    "VALUES row has {} cells, expected {}",
                    row.len(),
                    vars.len()
                )));
            }
            rows.push(row);
        }
        Ok(ValuesBlock { vars, rows })
    }

    fn parse_values_cell(&mut self) -> Result<Option<TermId>, ParseError> {
        match self.next() {
            Token::Word(w) if w.eq_ignore_ascii_case("UNDEF") => Ok(None),
            Token::Iri(i) => Ok(Some(self.dict.encode(&Term::iri(i)))),
            Token::PName(p, l) => {
                let iri = self.resolve_prefix(&p, &l)?;
                Ok(Some(self.dict.encode(&Term::iri(iri))))
            }
            Token::Literal {
                lexical,
                lang,
                datatype,
            } => Ok(Some(self.dict.encode(&Term::Literal {
                lexical,
                lang,
                datatype,
            }))),
            Token::Number(n) => Ok(Some(self.encode_number(&n))),
            t => Err(ParseError(format!("unexpected {t} in VALUES row"))),
        }
    }

    /// After `FILTER`, parse either `( expr )` or a bare builtin call.
    fn parse_bracketed_or_builtin(&mut self) -> Result<Expression, ParseError> {
        if *self.peek() == Token::Punct('(') {
            self.expect_punct('(')?;
            let e = self.parse_expr()?;
            self.expect_punct(')')?;
            Ok(e)
        } else {
            self.parse_primary_expr()
        }
    }

    fn parse_expr(&mut self) -> Result<Expression, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_and()?;
        while *self.peek() == Token::Op("||") {
            self.next();
            let right = self.parse_and()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.parse_cmp()?;
        while *self.peek() == Token::Op("&&") {
            self.next();
            let right = self.parse_cmp()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expression, ParseError> {
        let left = self.parse_unary()?;
        let op = match self.peek() {
            Token::Punct('=') => Some(CmpOp::Eq),
            Token::Op("!=") => Some(CmpOp::Ne),
            Token::Op("<") => Some(CmpOp::Lt),
            Token::Op("<=") => Some(CmpOp::Le),
            Token::Op(">") => Some(CmpOp::Gt),
            Token::Op(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.parse_unary()?;
            Ok(Expression::Cmp(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_unary(&mut self) -> Result<Expression, ParseError> {
        if *self.peek() == Token::Op("!") {
            self.next();
            let inner = self.parse_unary()?;
            return Ok(Expression::Not(Box::new(inner)));
        }
        self.parse_primary_expr()
    }

    fn parse_primary_expr(&mut self) -> Result<Expression, ParseError> {
        match self.peek().clone() {
            Token::Punct('(') => {
                self.next();
                let e = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Token::Var(v) => {
                self.next();
                Ok(Expression::Var(v))
            }
            Token::Iri(i) => {
                self.next();
                Ok(Expression::Const(self.dict.encode(&Term::iri(i))))
            }
            Token::PName(p, l) => {
                self.next();
                let iri = self.resolve_prefix(&p, &l)?;
                Ok(Expression::Const(self.dict.encode(&Term::iri(iri))))
            }
            Token::Literal {
                lexical,
                lang,
                datatype,
            } => {
                self.next();
                Ok(Expression::Const(self.dict.encode(&Term::Literal {
                    lexical,
                    lang,
                    datatype,
                })))
            }
            Token::Number(n) => {
                self.next();
                Ok(Expression::Const(self.encode_number(&n)))
            }
            Token::Word(w) => self.parse_builtin(&w),
            t => Err(ParseError(format!("unexpected {t} in expression"))),
        }
    }

    fn parse_builtin(&mut self, word: &str) -> Result<Expression, ParseError> {
        let upper = word.to_ascii_uppercase();
        self.next(); // consume the builtin name
        match upper.as_str() {
            "BOUND" => {
                self.expect_punct('(')?;
                let v = match self.next() {
                    Token::Var(v) => v,
                    t => return Err(ParseError(format!("expected variable in BOUND, got {t}"))),
                };
                self.expect_punct(')')?;
                Ok(Expression::Bound(v))
            }
            "REGEX" => {
                self.expect_punct('(')?;
                let target = self.parse_expr()?;
                self.expect_punct(',')?;
                let pattern = self.parse_string_arg()?;
                let mut ci = false;
                if self.eat_punct(',') {
                    let flags = self.parse_string_arg()?;
                    ci = flags.contains('i');
                }
                self.expect_punct(')')?;
                Ok(Expression::Regex(Box::new(target), pattern, ci))
            }
            "CONTAINS" => {
                self.expect_punct('(')?;
                let target = self.parse_expr()?;
                self.expect_punct(',')?;
                let needle = self.parse_string_arg()?;
                self.expect_punct(')')?;
                Ok(Expression::Contains(Box::new(target), needle))
            }
            "STR" => {
                self.expect_punct('(')?;
                let inner = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(Expression::Str(Box::new(inner)))
            }
            "LANG" => {
                self.expect_punct('(')?;
                let inner = self.parse_expr()?;
                self.expect_punct(')')?;
                Ok(Expression::Lang(Box::new(inner)))
            }
            "LANGMATCHES" => {
                self.expect_punct('(')?;
                let inner = self.parse_expr()?;
                self.expect_punct(',')?;
                let range = self.parse_string_arg()?;
                self.expect_punct(')')?;
                Ok(Expression::LangMatches(Box::new(inner), range))
            }
            other => Err(ParseError(format!("unsupported builtin {other}"))),
        }
    }

    fn parse_string_arg(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Literal { lexical, .. } => Ok(lexical),
            t => Err(ParseError(format!("expected string literal, got {t}"))),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Position {
    Subject,
    Predicate,
    Object,
}

/// Merges a nested plain group into its parent (SPARQL group flattening for
/// the conjunctive case).
fn merge_group(parent: &mut GroupPattern, child: GroupPattern) -> Result<(), ParseError> {
    parent.triples.extend(child.triples);
    parent.filters.extend(child.filters);
    parent.optionals.extend(child.optionals);
    parent.unions.extend(child.unions);
    parent.not_exists.extend(child.not_exists);
    if let Some(v) = child.values {
        if parent.values.is_some() {
            return Err(ParseError("multiple VALUES blocks after flattening".into()));
        }
        parent.values = Some(v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary {
        Dictionary::new()
    }

    #[test]
    fn parse_basic_select() {
        let d = dict();
        let q = parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }", &d).unwrap();
        assert_eq!(q.form, QueryForm::Select);
        assert_eq!(q.projection, ["s", "o"]);
        assert_eq!(q.pattern.triples.len(), 1);
        assert!(q.pattern.triples[0].s.is_var());
        assert_eq!(
            q.pattern.triples[0].p,
            PatternTerm::Const(d.lookup(&Term::iri("http://x/p")).unwrap())
        );
    }

    #[test]
    fn parse_prefixes_and_a() {
        let d = dict();
        let q = parse_query(
            "PREFIX ub: <http://ub.org/> SELECT ?x WHERE { ?x a ub:Student . }",
            &d,
        )
        .unwrap();
        assert_eq!(
            q.pattern.triples[0].p,
            PatternTerm::Const(d.lookup(&Term::iri(vocab::RDF_TYPE)).unwrap())
        );
        assert_eq!(
            q.pattern.triples[0].o,
            PatternTerm::Const(d.lookup(&Term::iri("http://ub.org/Student")).unwrap())
        );
    }

    #[test]
    fn parse_semicolon_and_comma_abbreviations() {
        let d = dict();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?a , ?b ; <http://x/q> ?c . }",
            &d,
        )
        .unwrap();
        assert_eq!(q.pattern.triples.len(), 3);
        assert!(q
            .pattern
            .triples
            .iter()
            .all(|t| t.s == PatternTerm::Var("s".into())));
    }

    #[test]
    fn parse_ask() {
        let d = dict();
        let q = parse_query("ASK { ?s ?p ?o }", &d).unwrap();
        assert_eq!(q.form, QueryForm::Ask);
    }

    #[test]
    fn parse_count_star() {
        let d = dict();
        let q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }", &d).unwrap();
        assert_eq!(q.form, QueryForm::CountStar("n".into()));
    }

    #[test]
    fn parse_filter_expression() {
        let d = dict();
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://x/age> ?a . FILTER (?a >= 18 && ?a < 65) }",
            &d,
        )
        .unwrap();
        assert_eq!(q.pattern.filters.len(), 1);
        match &q.pattern.filters[0] {
            Expression::And(l, _) => match l.as_ref() {
                Expression::Cmp(CmpOp::Ge, _, _) => {}
                e => panic!("unexpected {e:?}"),
            },
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn parse_filter_not_exists() {
        let d = dict();
        let q = parse_query(
            "SELECT ?p WHERE { ?p a <http://x/T> . \
             FILTER NOT EXISTS { SELECT ?p WHERE { ?p <http://x/q> ?c } } }",
            &d,
        );
        // Sub-selects inside NOT EXISTS are not supported; the paper's check
        // query shape uses a plain group. Verify the plain form works.
        assert!(q.is_err());
        let q = parse_query(
            "SELECT ?p WHERE { ?p a <http://x/T> . FILTER NOT EXISTS { ?p <http://x/q> ?c } }",
            &d,
        )
        .unwrap();
        assert_eq!(q.pattern.not_exists.len(), 1);
        assert_eq!(q.pattern.not_exists[0].triples.len(), 1);
    }

    #[test]
    fn parse_optional_and_limit() {
        let d = dict();
        let q = parse_query(
            "SELECT ?s ?n WHERE { ?s a <http://x/T> . OPTIONAL { ?s <http://x/name> ?n } } LIMIT 5",
            &d,
        )
        .unwrap();
        assert_eq!(q.pattern.optionals.len(), 1);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parse_union() {
        let d = dict();
        let q = parse_query(
            "SELECT ?x WHERE { { ?x a <http://x/A> } UNION { ?x a <http://x/B> } UNION { ?x a <http://x/C> } }",
            &d,
        )
        .unwrap();
        assert_eq!(q.pattern.unions.len(), 1);
        assert_eq!(q.pattern.unions[0].len(), 3);
    }

    #[test]
    fn parse_values_single_and_multi() {
        let d = dict();
        let q = parse_query(
            "SELECT ?x WHERE { ?x a <http://x/A> . VALUES ?x { <http://x/1> <http://x/2> } }",
            &d,
        )
        .unwrap();
        let v = q.pattern.values.unwrap();
        assert_eq!(v.vars, ["x"]);
        assert_eq!(v.rows.len(), 2);

        let q = parse_query(
            "SELECT * WHERE { VALUES (?a ?b) { (<http://x/1> UNDEF) (<http://x/2> \"z\") } ?a <http://x/p> ?b }",
            &d,
        )
        .unwrap();
        let v = q.pattern.values.unwrap();
        assert_eq!(v.vars, ["a", "b"]);
        assert_eq!(v.rows[0][1], None);
    }

    #[test]
    fn parse_distinct() {
        let d = dict();
        let q = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o }", &d).unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn parse_nested_plain_group_flattens() {
        let d = dict();
        let q = parse_query(
            "SELECT * WHERE { { ?s <http://x/p> ?o } ?o <http://x/q> ?z }",
            &d,
        )
        .unwrap();
        assert_eq!(q.pattern.triples.len(), 2);
        assert!(q.pattern.unions.is_empty());
    }

    #[test]
    fn parse_regex_and_contains() {
        let d = dict();
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://x/name> ?n . FILTER REGEX(?n, \"smith\", \"i\") }",
            &d,
        )
        .unwrap();
        assert!(matches!(
            q.pattern.filters[0],
            Expression::Regex(_, ref p, true) if p == "smith"
        ));
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://x/name> ?n . FILTER CONTAINS(STR(?n), \"ab\") }",
            &d,
        )
        .unwrap();
        assert!(matches!(q.pattern.filters[0], Expression::Contains(_, _)));
    }

    #[test]
    fn parse_numbers_as_typed_literals() {
        let d = dict();
        let q = parse_query("SELECT ?x WHERE { ?x <http://x/v> 42 }", &d).unwrap();
        let id = q.pattern.triples[0].o.as_const().unwrap();
        assert_eq!(*d.decode(id), Term::int(42));
    }

    #[test]
    fn unknown_prefix_is_error() {
        let d = dict();
        assert!(parse_query("SELECT ?x WHERE { ?x nope:p ?y }", &d).is_err());
    }

    #[test]
    fn trailing_garbage_is_error() {
        let d = dict();
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?y } garbage", &d).is_err());
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;

    fn dict() -> Dictionary {
        Dictionary::new()
    }

    #[test]
    fn count_star_without_group_by_stays_countstar_form() {
        let d = dict();
        let q = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }", &d).unwrap();
        assert_eq!(q.form, QueryForm::CountStar("c".into()));
        assert!(q.aggregates.is_empty());
    }

    #[test]
    fn count_star_with_group_by_is_general_aggregate() {
        let d = dict();
        let q = parse_query(
            "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p",
            &d,
        )
        .unwrap();
        assert_eq!(q.form, QueryForm::Select);
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.group_by, ["p"]);
        assert_eq!(q.projection, ["p"]);
        assert_eq!(q.output_vars(), ["p", "c"]);
    }

    #[test]
    fn all_aggregate_functions_parse() {
        let d = dict();
        let q = parse_query(
            "SELECT (COUNT(?a) AS ?c) (SUM(?a) AS ?s) (MIN(?a) AS ?lo) \
                    (MAX(?a) AS ?hi) (AVG(?a) AS ?m) \
             WHERE { ?x <http://x/v> ?a }",
            &d,
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 5);
        use crate::ast::AggFunc::*;
        let funcs: Vec<_> = q.aggregates.iter().map(|a| a.func).collect();
        assert_eq!(funcs, [Count, Sum, Min, Max, Avg]);
    }

    #[test]
    fn sum_star_is_rejected() {
        let d = dict();
        assert!(parse_query("SELECT (SUM(*) AS ?s) WHERE { ?s ?p ?o }", &d).is_err());
    }

    #[test]
    fn empty_group_by_is_rejected() {
        let d = dict();
        assert!(parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY", &d).is_err());
    }

    #[test]
    fn having_requires_parenthesized_expression() {
        let d = dict();
        let q = parse_query(
            "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p HAVING (?c > 2)",
            &d,
        )
        .unwrap();
        assert_eq!(q.having.len(), 1);
    }

    #[test]
    fn missing_alias_is_rejected() {
        let d = dict();
        assert!(parse_query("SELECT (COUNT(*)) WHERE { ?s ?p ?o }", &d).is_err());
    }
}
