//! A Bio2RDF-style federation for the paper's "real endpoints" experiment
//! (§VI-D): DrugBank, HGNC, MGI, PharmGKB, and OMIM, with the three
//! representative workload queries R1–R3.
//!
//! Joins follow Bio2RDF practice: cross-source links go through shared
//! gene symbols (literals) and through xRef IRIs into HGNC.

use crate::common::{add, Rng, Workload};
use lusail_endpoint::NetworkProfile;
use lusail_rdf::{vocab, Dictionary, Term};
use lusail_store::{BackendKind, TripleStore};
use std::sync::Arc;

const DRUGBANK: &str = "http://drugbank.bio2rdf.org/";
const HGNC: &str = "http://hgnc.bio2rdf.org/";
const MGI: &str = "http://mgi.bio2rdf.org/";
const PGKB: &str = "http://pharmgkb.bio2rdf.org/";
const OMIM: &str = "http://omim.bio2rdf.org/";

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Bio2RdfConfig {
    /// Number of genes in the shared symbol pool.
    pub genes: usize,
    /// Number of drugs.
    pub drugs: usize,
    /// Generator seed.
    pub seed: u64,
    /// Optional per-endpoint network profiles (5 entries).
    pub profiles: Option<Vec<NetworkProfile>>,
    /// Storage backend the endpoints are materialized into.
    pub backend: BackendKind,
}

impl Default for Bio2RdfConfig {
    fn default() -> Self {
        Bio2RdfConfig {
            genes: 200,
            drugs: 150,
            seed: 0xB102,
            profiles: None,
            backend: BackendKind::Btree,
        }
    }
}

fn iri(ns: &str, local: String) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Generates the five-endpoint federation and queries R1–R3.
pub fn generate(config: &Bio2RdfConfig) -> Workload {
    let dict = Dictionary::shared();
    let mut rng = Rng::new(config.seed);
    let rdf_type = Term::iri(vocab::RDF_TYPE);
    let symbol = |g: usize| Term::lit(format!("SYM{g}"));

    // --- HGNC: the human gene registry ----------------------------------
    let mut hgnc = TripleStore::new(Arc::clone(&dict));
    let c_gene = iri(HGNC, "Gene".into());
    let p_symbol = iri(HGNC, "symbol".into());
    let p_hname = iri(HGNC, "approvedName".into());
    let p_status = iri(HGNC, "status".into());
    for g in 0..config.genes {
        let gene = iri(HGNC, format!("gene/{g}"));
        add(&mut hgnc, &gene, &rdf_type, &c_gene);
        add(&mut hgnc, &gene, &p_symbol, &symbol(g));
        add(
            &mut hgnc,
            &gene,
            &p_hname,
            &Term::lit(format!("human gene {g}")),
        );
        add(
            &mut hgnc,
            &gene,
            &p_status,
            &Term::lit(if g % 10 == 0 {
                "provisional"
            } else {
                "approved"
            }),
        );
    }

    // --- MGI: mouse orthologs (shares the symbol pool) ------------------
    let mut mgi = TripleStore::new(Arc::clone(&dict));
    let c_marker = iri(MGI, "Marker".into());
    let p_msymbol = iri(MGI, "symbol".into());
    let p_mname = iri(MGI, "name".into());
    for g in 0..config.genes {
        if !rng.chance(0.7) {
            continue;
        }
        let marker = iri(MGI, format!("marker/{g}"));
        add(&mut mgi, &marker, &rdf_type, &c_marker);
        add(&mut mgi, &marker, &p_msymbol, &symbol(g));
        add(
            &mut mgi,
            &marker,
            &p_mname,
            &Term::lit(format!("mouse marker {g}")),
        );
    }

    // --- DrugBank: drugs with gene targets ------------------------------
    let mut drugbank = TripleStore::new(Arc::clone(&dict));
    let c_drug = iri(DRUGBANK, "Drug".into());
    let p_dname = iri(DRUGBANK, "name".into());
    let p_target_symbol = iri(DRUGBANK, "targetSymbol".into());
    for d in 0..config.drugs {
        let drug = iri(DRUGBANK, format!("drug/{d}"));
        add(&mut drugbank, &drug, &rdf_type, &c_drug);
        add(
            &mut drugbank,
            &drug,
            &p_dname,
            &Term::lit(format!("biodrug {d}")),
        );
        for _ in 0..1 + rng.below(3) {
            add(
                &mut drugbank,
                &drug,
                &p_target_symbol,
                &symbol(rng.below(config.genes)),
            );
        }
    }

    // --- PharmGKB: gene–drug annotations (xRef into HGNC) ---------------
    let mut pgkb = TripleStore::new(Arc::clone(&dict));
    let c_ann = iri(PGKB, "Annotation".into());
    let p_gene_xref = iri(PGKB, "geneXref".into());
    let p_evidence = iri(PGKB, "evidence".into());
    for a in 0..config.genes * 2 {
        if !rng.chance(0.5) {
            continue;
        }
        let ann = iri(PGKB, format!("ann/{a}"));
        add(&mut pgkb, &ann, &rdf_type, &c_ann);
        // Interlink: PharmGKB → HGNC.
        add(
            &mut pgkb,
            &ann,
            &p_gene_xref,
            &iri(HGNC, format!("gene/{}", a % config.genes)),
        );
        add(
            &mut pgkb,
            &ann,
            &p_evidence,
            &Term::lit(format!("level {}", 1 + a % 4)),
        );
    }

    // --- OMIM: disorders linked to genes and drugs -----------------------
    let mut omim = TripleStore::new(Arc::clone(&dict));
    let c_disorder = iri(OMIM, "Disorder".into());
    let p_title = iri(OMIM, "title".into());
    let p_ogene = iri(OMIM, "geneXref".into());
    let p_odrug = iri(OMIM, "associatedDrug".into());
    for o in 0..config.genes {
        if !rng.chance(0.6) {
            continue;
        }
        let disorder = iri(OMIM, format!("disorder/{o}"));
        add(&mut omim, &disorder, &rdf_type, &c_disorder);
        add(
            &mut omim,
            &disorder,
            &p_title,
            &Term::lit(format!("disorder {o}")),
        );
        // Interlink: OMIM → HGNC.
        add(
            &mut omim,
            &disorder,
            &p_ogene,
            &iri(HGNC, format!("gene/{o}")),
        );
        // Interlink: OMIM → DrugBank.
        if rng.chance(0.5) {
            add(
                &mut omim,
                &disorder,
                &p_odrug,
                &iri(DRUGBANK, format!("drug/{}", rng.below(config.drugs))),
            );
        }
    }

    let stores = vec![
        ("DrugBank".to_string(), drugbank),
        ("HGNC".to_string(), hgnc),
        ("MGI".to_string(), mgi),
        ("PharmGKB".to_string(), pgkb),
        ("OMIM".to_string(), omim),
    ];
    Workload::assemble_on(
        dict,
        stores,
        config.profiles.clone(),
        queries(),
        config.backend,
    )
}

/// The three real-workload queries of §VI-D.
///
/// * R1 joins DrugBank, HGNC and MGI on gene symbols,
/// * R2 joins PharmGKB and OMIM through HGNC xRefs,
/// * R3 integrates DrugBank and OMIM via associated drugs.
pub fn queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "R1",
            "SELECT ?drug ?dn ?sym ?hn ?mn WHERE { \
             ?drug a <http://drugbank.bio2rdf.org/Drug> . \
             ?drug <http://drugbank.bio2rdf.org/name> ?dn . \
             ?drug <http://drugbank.bio2rdf.org/targetSymbol> ?sym . \
             ?g <http://hgnc.bio2rdf.org/symbol> ?sym . \
             ?g <http://hgnc.bio2rdf.org/approvedName> ?hn . \
             ?m <http://mgi.bio2rdf.org/symbol> ?sym . \
             ?m <http://mgi.bio2rdf.org/name> ?mn }"
                .to_string(),
        ),
        (
            "R2",
            "SELECT ?ann ?ev ?g ?dis ?t WHERE { \
             ?ann a <http://pharmgkb.bio2rdf.org/Annotation> . \
             ?ann <http://pharmgkb.bio2rdf.org/geneXref> ?g . \
             ?ann <http://pharmgkb.bio2rdf.org/evidence> ?ev . \
             ?dis <http://omim.bio2rdf.org/geneXref> ?g . \
             ?dis <http://omim.bio2rdf.org/title> ?t }"
                .to_string(),
        ),
        (
            "R3",
            "SELECT ?dis ?t ?drug ?dn WHERE { \
             ?dis a <http://omim.bio2rdf.org/Disorder> . \
             ?dis <http://omim.bio2rdf.org/title> ?t . \
             ?dis <http://omim.bio2rdf.org/associatedDrug> ?drug . \
             ?drug <http://drugbank.bio2rdf.org/name> ?dn }"
                .to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::SparqlEndpoint;

    #[test]
    fn five_endpoints() {
        let w = generate(&Bio2RdfConfig::default());
        assert_eq!(w.federation.len(), 5);
        assert_eq!(w.endpoints[1].name(), "HGNC");
    }

    #[test]
    fn all_queries_have_oracle_answers() {
        let w = generate(&Bio2RdfConfig::default());
        for nq in &w.queries {
            let sols = lusail_store::eval::evaluate(&w.oracle, &nq.query);
            assert!(!sols.is_empty(), "{} has no oracle answers", nq.name);
        }
    }

    #[test]
    fn r1_spans_three_endpoints() {
        let w = generate(&Bio2RdfConfig::default());
        let sols = lusail_store::eval::evaluate(&w.oracle, &w.query("R1").query);
        // Rows combine DrugBank, HGNC, and MGI data (hn and mn both bound).
        assert!(sols
            .rows
            .iter()
            .all(|r| r[sols.col("hn").unwrap()].is_some() && r[sols.col("mn").unwrap()].is_some()));
    }
}
