//! Deterministic workload generators for the Lusail reproduction.
//!
//! The paper evaluates on four data settings (Table I); each module here
//! builds a scaled-down, structurally faithful stand-in:
//!
//! * [`lubm`] — the LUBM benchmark: one university per endpoint, shared
//!   ontology everywhere, and **degree interlinks** (professors/students
//!   whose alma mater is another university's endpoint). Queries Q1–Q4
//!   as used in the paper (§VI-C): Q1/Q2 disjoint triangles, Q3/Q4
//!   cross-endpoint joins.
//! * [`qfed`] — a QFed-style federation of four life-science sources
//!   (DrugBank, Diseasome, Sider, DailyMed) with `owl:sameAs`-style
//!   interlinks and the C2P2 query family (filter / big-literal /
//!   optional variants) plus the Drug query.
//! * [`lrb`] — a LargeRDFBench-style federation of 13 sources with the
//!   benchmark's three query categories: simple (S), complex (C), and
//!   large (B).
//! * [`bio2rdf`] — a Bio2RDF-style federation (DrugBank, HGNC, MGI,
//!   PharmGKB, OMIM) and the three real-workload queries R1–R3 of §VI-D.
//!
//! Every generator is seeded and deterministic: the same configuration
//! always produces the same federation, so experiments are reproducible
//! run-to-run. All queries are verified against a centralized *oracle*
//! store (the union of all endpoints) in the workspace integration tests.

pub mod bio2rdf;
pub mod common;
pub mod lrb;
pub mod lubm;
pub mod qfed;

pub use common::{NamedQuery, Workload};
