//! A LargeRDFBench-style federation: 13 sources, three query categories.
//!
//! LargeRDFBench (Saleem et al.) federates 13 real datasets totalling
//! over a billion triples; the paper uses it for Figs. 9, 10(a), 13 and
//! 14. This module rebuilds its *join structure* at configurable scale:
//!
//! * the three LinkedTCGA slices (methylation / expression / annotations)
//!   share patient IRIs and gene symbols, and the cancer-genomics queries
//!   join them with Affymetrix probesets — these drive the **large (B)**
//!   category's huge intermediate results;
//! * the life-science chain DrugBank → KEGG → ChEBI and the
//!   DBpedia `owl:sameAs` cloud (NYT, LinkedMDB, SWDF, GeoNames) drive
//!   the **simple (S)** and **complex (C)** categories;
//! * `owl:sameAs` is answerable at five different endpoints, making it
//!   exactly the kind of generic predicate whose subqueries SAPE delays.
//!
//! Queries: S1–S14, C1–C10 (C5 excluded, as in the paper), and B1–B8
//! (B5/B6 excluded, as in the paper) — 29 runnable queries.

use crate::common::{add, Rng, Workload};
use lusail_endpoint::NetworkProfile;
use lusail_rdf::{vocab, Dictionary, Term};
use lusail_store::{BackendKind, TripleStore};
use std::sync::Arc;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LrbConfig {
    /// Linear scale factor on all entity counts (1.0 ≈ 45k triples).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Optional per-endpoint network profiles (13 entries).
    pub profiles: Option<Vec<NetworkProfile>>,
    /// Storage backend the endpoints are materialized into.
    pub backend: BackendKind,
}

impl Default for LrbConfig {
    fn default() -> Self {
        LrbConfig {
            scale: 1.0,
            seed: 0x1DB,
            profiles: None,
            backend: BackendKind::Btree,
        }
    }
}

/// The 13 endpoint names, matching Table I of the paper.
pub const ENDPOINT_NAMES: [&str; 13] = [
    "LinkedTCGA-M",
    "LinkedTCGA-E",
    "LinkedTCGA-A",
    "ChEBI",
    "DBPedia-Subset",
    "DrugBank",
    "GeoNames",
    "Jamendo",
    "KEGG",
    "LinkedMDB",
    "New York Times",
    "Semantic Web Dog Food",
    "Affymetrix",
];

const TCGA: &str = "http://tcga.org/";
const CHEBI: &str = "http://chebi.org/";
const DBP: &str = "http://dbpedia.org/";
const DRUGBANK: &str = "http://drugbank.org/";
const GEO: &str = "http://geonames.org/";
const JAM: &str = "http://jamendo.org/";
const KEGG: &str = "http://kegg.org/";
const LMDB: &str = "http://linkedmdb.org/";
const NYT: &str = "http://nytimes.org/";
const SWDF: &str = "http://swdf.org/";
const AFFY: &str = "http://affymetrix.org/";

const COUNTRIES: [&str; 8] = ["US", "GB", "DE", "FR", "ES", "IT", "EG", "JP"];
const DISEASES: [&str; 5] = ["BRCA", "GBM", "OV", "LUAD", "COAD"];

fn iri(ns: &str, local: String) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Generates the 13-endpoint federation and all 27 queries.
pub fn generate(config: &LrbConfig) -> Workload {
    let dict = Dictionary::shared();
    let mut rng = Rng::new(config.seed);
    let sc = |base: usize| -> usize { ((base as f64 * config.scale) as usize).max(2) };

    let rdf_type = Term::iri(vocab::RDF_TYPE);
    let rdfs_label = Term::iri(vocab::RDFS_LABEL);
    let same_as = Term::iri(vocab::OWL_SAME_AS);

    let n_genes = sc(200);
    let gene = |g: usize| Term::lit(format!("GENE{g}"));

    let n_patients = sc(300);
    let n_meth = n_patients * 8;
    let n_expr = n_patients * 6;
    let n_chebi = sc(250);
    let n_kegg = sc(220);
    let n_drugs = sc(200);
    let n_dbp_drugs = sc(200);
    let n_films = sc(200);
    let n_persons = sc(150);
    let n_places = sc(100);
    let n_geo = sc(500);
    let n_artists = sc(250);
    let n_mfilms = sc(250);
    let n_nyt = sc(120);
    let n_papers = sc(100);
    let n_authors = sc(70);
    let n_probes = sc(400);

    // --- LinkedTCGA-A: patient annotations -----------------------------
    let mut tcga_a = TripleStore::new(Arc::clone(&dict));
    let c_patient = iri(TCGA, "Patient".into());
    let p_barcode = iri(TCGA, "bcr_patient_barcode".into());
    let p_disease = iri(TCGA, "disease".into());
    let p_gender = iri(TCGA, "gender".into());
    let p_country = iri(TCGA, "country".into());
    for i in 0..n_patients {
        let p = iri(TCGA, format!("patient/{i}"));
        add(&mut tcga_a, &p, &rdf_type, &c_patient);
        add(
            &mut tcga_a,
            &p,
            &p_barcode,
            &Term::lit(format!("TCGA-{i:05}")),
        );
        add(
            &mut tcga_a,
            &p,
            &p_disease,
            &Term::lit(DISEASES[i % DISEASES.len()]),
        );
        add(
            &mut tcga_a,
            &p,
            &p_gender,
            &Term::lit(if i % 2 == 0 { "male" } else { "female" }),
        );
        add(
            &mut tcga_a,
            &p,
            &p_country,
            &Term::lit(COUNTRIES[i % COUNTRIES.len()]),
        );
    }

    // --- LinkedTCGA-M: methylation results ------------------------------
    let mut tcga_m = TripleStore::new(Arc::clone(&dict));
    let p_meth_patient = iri(TCGA, "methPatient".into());
    let p_gene_symbol = iri(TCGA, "gene_symbol".into());
    let p_beta = iri(TCGA, "beta_value".into());
    for j in 0..n_meth {
        let m = iri(TCGA, format!("meth/{j}"));
        // Interlink: methylation results reference TCGA-A patient IRIs.
        add(
            &mut tcga_m,
            &m,
            &p_meth_patient,
            &iri(TCGA, format!("patient/{}", j % n_patients)),
        );
        add(&mut tcga_m, &m, &p_gene_symbol, &gene(rng.below(n_genes)));
        add(&mut tcga_m, &m, &p_beta, &Term::int(rng.below(100) as i64));
    }

    // --- LinkedTCGA-E: expression results --------------------------------
    let mut tcga_e = TripleStore::new(Arc::clone(&dict));
    let p_expr_patient = iri(TCGA, "exprPatient".into());
    let p_rpkm = iri(TCGA, "rpkm".into());
    for j in 0..n_expr {
        let e = iri(TCGA, format!("expr/{j}"));
        add(
            &mut tcga_e,
            &e,
            &p_expr_patient,
            &iri(TCGA, format!("patient/{}", j % n_patients)),
        );
        add(&mut tcga_e, &e, &p_gene_symbol, &gene(rng.below(n_genes)));
        add(&mut tcga_e, &e, &p_rpkm, &Term::int(rng.below(120) as i64));
    }

    // --- ChEBI ------------------------------------------------------------
    let mut chebi = TripleStore::new(Arc::clone(&dict));
    let c_compound = iri(CHEBI, "Compound".into());
    let p_title = iri(CHEBI, "title".into());
    let p_mass = iri(CHEBI, "mass".into());
    for c in 0..n_chebi {
        let comp = iri(CHEBI, format!("compound/{c}"));
        add(&mut chebi, &comp, &rdf_type, &c_compound);
        add(
            &mut chebi,
            &comp,
            &p_title,
            &Term::lit(format!("compound {c}")),
        );
        add(
            &mut chebi,
            &comp,
            &p_mass,
            &Term::int((50 + rng.below(900)) as i64),
        );
    }

    // --- KEGG --------------------------------------------------------------
    let mut kegg = TripleStore::new(Arc::clone(&dict));
    let c_kcompound = iri(KEGG, "Compound".into());
    let p_xref = iri(KEGG, "xRef".into());
    let p_formula = iri(KEGG, "formula".into());
    for k in 0..n_kegg {
        let comp = iri(KEGG, format!("compound/{k}"));
        add(&mut kegg, &comp, &rdf_type, &c_kcompound);
        add(
            &mut kegg,
            &comp,
            &p_formula,
            &Term::lit(format!("C{}H{}O{}", k % 30, k % 50, k % 10)),
        );
        if rng.chance(0.7) {
            // Interlink: KEGG → ChEBI.
            add(
                &mut kegg,
                &comp,
                &p_xref,
                &iri(CHEBI, format!("compound/{}", rng.below(n_chebi))),
            );
        }
    }

    // --- DrugBank ------------------------------------------------------------
    let mut drugbank = TripleStore::new(Arc::clone(&dict));
    let c_drug = iri(DRUGBANK, "class/drugs".into());
    let p_generic = iri(DRUGBANK, "p/genericName".into());
    let p_kegg_id = iri(DRUGBANK, "p/keggCompoundId".into());
    let p_cas = iri(DRUGBANK, "p/casRegistryNumber".into());
    let p_target_gene = iri(DRUGBANK, "p/targetGene".into());
    for i in 0..n_drugs {
        let d = iri(DRUGBANK, format!("drugs/{i}"));
        add(&mut drugbank, &d, &rdf_type, &c_drug);
        add(
            &mut drugbank,
            &d,
            &p_generic,
            &Term::lit(format!("drugname {i}")),
        );
        add(
            &mut drugbank,
            &d,
            &p_cas,
            &Term::lit(format!("{}-{}-{}", 50 + i, i % 90, i % 9)),
        );
        add(&mut drugbank, &d, &p_target_gene, &gene(rng.below(n_genes)));
        if rng.chance(0.6) {
            // Interlink: DrugBank → KEGG.
            add(
                &mut drugbank,
                &d,
                &p_kegg_id,
                &iri(KEGG, format!("compound/{}", rng.below(n_kegg))),
            );
        }
        if rng.chance(0.5) {
            // Interlink: DrugBank → DBpedia.
            add(
                &mut drugbank,
                &d,
                &same_as,
                &iri(DBP, format!("drug/{}", i % n_dbp_drugs)),
            );
        }
    }

    // --- DBpedia subset -------------------------------------------------------
    let mut dbpedia = TripleStore::new(Arc::clone(&dict));
    let c_dbp_drug = iri(DBP, "Drug".into());
    let c_film = iri(DBP, "Film".into());
    let c_person = iri(DBP, "Person".into());
    let c_place = iri(DBP, "Place".into());
    for i in 0..n_dbp_drugs {
        let d = iri(DBP, format!("drug/{i}"));
        add(&mut dbpedia, &d, &rdf_type, &c_dbp_drug);
        add(
            &mut dbpedia,
            &d,
            &rdfs_label,
            &Term::lit(format!("dbpedia drug {i}")),
        );
    }
    let p_director = iri(DBP, "director".into());
    for f in 0..n_films {
        let film = iri(DBP, format!("film/{f}"));
        add(&mut dbpedia, &film, &rdf_type, &c_film);
        add(
            &mut dbpedia,
            &film,
            &rdfs_label,
            &Term::lit(format!("dbpedia film {f}")),
        );
        add(
            &mut dbpedia,
            &film,
            &p_director,
            &iri(DBP, format!("person/{}", f % n_persons)),
        );
    }
    for p in 0..n_persons {
        let person = iri(DBP, format!("person/{p}"));
        add(&mut dbpedia, &person, &rdf_type, &c_person);
        add(
            &mut dbpedia,
            &person,
            &rdfs_label,
            &Term::lit(format!("dbpedia person {p}")),
        );
    }
    for l in 0..n_places {
        let place = iri(DBP, format!("place/{l}"));
        add(&mut dbpedia, &place, &rdf_type, &c_place);
        add(
            &mut dbpedia,
            &place,
            &rdfs_label,
            &Term::lit(format!("dbpedia place {l}")),
        );
        if rng.chance(0.5) {
            // Interlink: DBpedia → GeoNames.
            add(
                &mut dbpedia,
                &place,
                &same_as,
                &iri(GEO, format!("loc/{}", rng.below(n_geo))),
            );
        }
    }

    // --- GeoNames ---------------------------------------------------------------
    let mut geonames = TripleStore::new(Arc::clone(&dict));
    let c_feature = iri(GEO, "Feature".into());
    let p_gname = iri(GEO, "name".into());
    let p_cc = iri(GEO, "countryCode".into());
    let p_pop = iri(GEO, "population".into());
    for l in 0..n_geo {
        let loc = iri(GEO, format!("loc/{l}"));
        add(&mut geonames, &loc, &rdf_type, &c_feature);
        add(
            &mut geonames,
            &loc,
            &p_gname,
            &Term::lit(format!("location {l}")),
        );
        add(
            &mut geonames,
            &loc,
            &p_cc,
            &Term::lit(COUNTRIES[l % COUNTRIES.len()]),
        );
        add(
            &mut geonames,
            &loc,
            &p_pop,
            &Term::int((rng.below(5_000_000)) as i64),
        );
    }

    // --- Jamendo -----------------------------------------------------------------
    let mut jamendo = TripleStore::new(Arc::clone(&dict));
    let c_artist = iri(JAM, "MusicArtist".into());
    let c_record = iri(JAM, "Record".into());
    let p_jname = iri(JAM, "name".into());
    let p_near = iri(JAM, "based_near".into());
    let p_maker = iri(JAM, "maker".into());
    for a in 0..n_artists {
        let artist = iri(JAM, format!("artist/{a}"));
        add(&mut jamendo, &artist, &rdf_type, &c_artist);
        add(
            &mut jamendo,
            &artist,
            &p_jname,
            &Term::lit(format!("artist {a}")),
        );
        // Interlink: Jamendo → GeoNames.
        add(
            &mut jamendo,
            &artist,
            &p_near,
            &iri(GEO, format!("loc/{}", rng.below(n_geo))),
        );
        let record = iri(JAM, format!("record/{a}"));
        add(&mut jamendo, &record, &rdf_type, &c_record);
        add(&mut jamendo, &record, &p_maker, &artist);
    }

    // --- LinkedMDB ------------------------------------------------------------------
    let mut lmdb = TripleStore::new(Arc::clone(&dict));
    let c_mfilm = iri(LMDB, "Film".into());
    let p_mtitle = iri(LMDB, "title".into());
    let p_mdirector = iri(LMDB, "director".into());
    let p_dname = iri(LMDB, "directorName".into());
    for f in 0..n_mfilms {
        let film = iri(LMDB, format!("film/{f}"));
        add(&mut lmdb, &film, &rdf_type, &c_mfilm);
        add(
            &mut lmdb,
            &film,
            &p_mtitle,
            &Term::lit(format!("movie {f}")),
        );
        let dir = iri(LMDB, format!("director/{}", f % (n_mfilms / 4).max(1)));
        add(&mut lmdb, &film, &p_mdirector, &dir);
        add(
            &mut lmdb,
            &dir,
            &p_dname,
            &Term::lit(format!("director {}", f % (n_mfilms / 4).max(1))),
        );
        if rng.chance(0.6) {
            // Interlink: LinkedMDB → DBpedia.
            add(
                &mut lmdb,
                &film,
                &same_as,
                &iri(DBP, format!("film/{}", f % n_films)),
            );
        }
    }

    // --- New York Times ------------------------------------------------------------
    let mut nyt = TripleStore::new(Arc::clone(&dict));
    let c_entity = iri(NYT, "Entity".into());
    let p_nname = iri(NYT, "name".into());
    let p_articles = iri(NYT, "articleCount".into());
    for e in 0..n_nyt {
        let ent = iri(NYT, format!("entity/{e}"));
        add(&mut nyt, &ent, &rdf_type, &c_entity);
        add(
            &mut nyt,
            &ent,
            &p_nname,
            &Term::lit(format!("nyt entity {e}")),
        );
        add(
            &mut nyt,
            &ent,
            &p_articles,
            &Term::int(rng.below(500) as i64),
        );
        // Interlink: NYT → DBpedia persons or GeoNames locations.
        if e % 2 == 0 {
            add(
                &mut nyt,
                &ent,
                &same_as,
                &iri(DBP, format!("person/{}", e % n_persons)),
            );
        } else {
            add(
                &mut nyt,
                &ent,
                &same_as,
                &iri(GEO, format!("loc/{}", rng.below(n_geo))),
            );
        }
    }

    // --- Semantic Web Dog Food -------------------------------------------------------
    let mut swdf = TripleStore::new(Arc::clone(&dict));
    let c_paper = iri(SWDF, "InProceedings".into());
    let p_ptitle = iri(SWDF, "title".into());
    let p_author = iri(SWDF, "author".into());
    let p_aname = iri(SWDF, "name".into());
    for a in 0..n_authors {
        let author = iri(SWDF, format!("author/{a}"));
        add(
            &mut swdf,
            &author,
            &p_aname,
            &Term::lit(format!("author {a}")),
        );
        if rng.chance(0.4) {
            // Interlink: SWDF → DBpedia.
            add(
                &mut swdf,
                &author,
                &same_as,
                &iri(DBP, format!("person/{}", a % n_persons)),
            );
        }
    }
    for p in 0..n_papers {
        let paper = iri(SWDF, format!("paper/{p}"));
        add(&mut swdf, &paper, &rdf_type, &c_paper);
        add(
            &mut swdf,
            &paper,
            &p_ptitle,
            &Term::lit(format!("paper {p}")),
        );
        add(
            &mut swdf,
            &paper,
            &p_author,
            &iri(SWDF, format!("author/{}", p % n_authors)),
        );
        if p % 3 == 0 {
            add(
                &mut swdf,
                &paper,
                &p_author,
                &iri(SWDF, format!("author/{}", (p + 1) % n_authors)),
            );
        }
    }

    // --- Affymetrix --------------------------------------------------------------------
    let mut affy = TripleStore::new(Arc::clone(&dict));
    let c_probe = iri(AFFY, "Probeset".into());
    let p_symbol = iri(AFFY, "symbol".into());
    let p_chromosome = iri(AFFY, "chromosome".into());
    for pr in 0..n_probes {
        let probe = iri(AFFY, format!("probe/{pr}"));
        add(&mut affy, &probe, &rdf_type, &c_probe);
        add(&mut affy, &probe, &p_symbol, &gene(pr % n_genes));
        add(
            &mut affy,
            &probe,
            &p_chromosome,
            &Term::lit(format!("chr{}", 1 + pr % 5)),
        );
    }

    let stores = vec![
        (ENDPOINT_NAMES[0].to_string(), tcga_m),
        (ENDPOINT_NAMES[1].to_string(), tcga_e),
        (ENDPOINT_NAMES[2].to_string(), tcga_a),
        (ENDPOINT_NAMES[3].to_string(), chebi),
        (ENDPOINT_NAMES[4].to_string(), dbpedia),
        (ENDPOINT_NAMES[5].to_string(), drugbank),
        (ENDPOINT_NAMES[6].to_string(), geonames),
        (ENDPOINT_NAMES[7].to_string(), jamendo),
        (ENDPOINT_NAMES[8].to_string(), kegg),
        (ENDPOINT_NAMES[9].to_string(), lmdb),
        (ENDPOINT_NAMES[10].to_string(), nyt),
        (ENDPOINT_NAMES[11].to_string(), swdf),
        (ENDPOINT_NAMES[12].to_string(), affy),
    ];
    Workload::assemble_on(
        dict,
        stores,
        config.profiles.clone(),
        queries(),
        config.backend,
    )
}

/// Query names by category, in the order the paper plots them.
pub fn category(name: &str) -> &'static str {
    match name.as_bytes()[0] {
        b'S' => "simple",
        b'C' => "complex",
        b'B' => "large",
        _ => "other",
    }
}

/// The 27 queries: S1–S14 (simple), C1–C10 minus C5 (complex), B1–B8
/// minus B5/B6 (large). C5/B5/B6 contain disjoint filter-joined subgraphs
/// that neither Lusail nor its competitors support (§VI-A).
pub fn queries() -> Vec<(&'static str, String)> {
    let q = |body: &str| format!("SELECT * WHERE {{ {body} }}");
    vec![
        // ---------------- simple ----------------
        (
            "S1",
            q("?d a <http://drugbank.org/class/drugs> . \
                  ?d <http://www.w3.org/2002/07/owl#sameAs> ?dbp . \
                  ?dbp a <http://dbpedia.org/Drug> . \
                  ?dbp <http://www.w3.org/2000/01/rdf-schema#label> ?l"),
        ),
        (
            "S2",
            q("?e a <http://nytimes.org/Entity> . \
                  ?e <http://www.w3.org/2002/07/owl#sameAs> ?p . \
                  ?p a <http://dbpedia.org/Person> . \
                  ?p <http://www.w3.org/2000/01/rdf-schema#label> ?n"),
        ),
        (
            "S3",
            q("?f a <http://linkedmdb.org/Film> . \
                  ?f <http://www.w3.org/2002/07/owl#sameAs> ?df . \
                  ?df <http://www.w3.org/2000/01/rdf-schema#label> ?n"),
        ),
        (
            "S4",
            q("?a a <http://jamendo.org/MusicArtist> . \
                  ?a <http://jamendo.org/name> ?n . \
                  ?a <http://jamendo.org/based_near> ?loc . \
                  ?loc <http://geonames.org/name> ?ln"),
        ),
        (
            "S5",
            q("?d a <http://drugbank.org/class/drugs> . \
                  ?d <http://drugbank.org/p/keggCompoundId> ?k . \
                  ?k <http://kegg.org/formula> ?f"),
        ),
        (
            "S6",
            q("?k a <http://kegg.org/Compound> . \
                  ?k <http://kegg.org/xRef> ?c . \
                  ?c <http://chebi.org/title> ?t"),
        ),
        (
            "S7",
            q("?d a <http://drugbank.org/class/drugs> . \
                  ?d <http://drugbank.org/p/keggCompoundId> ?k . \
                  ?k <http://kegg.org/xRef> ?c . \
                  ?c <http://chebi.org/title> ?t"),
        ),
        (
            "S8",
            q("?p a <http://swdf.org/InProceedings> . \
                  ?p <http://swdf.org/author> ?a . \
                  ?a <http://swdf.org/name> ?n"),
        ),
        (
            "S9",
            q("?l <http://geonames.org/countryCode> \"US\" . \
                  ?l <http://geonames.org/name> ?n . \
                  ?e <http://www.w3.org/2002/07/owl#sameAs> ?l . \
                  ?e <http://nytimes.org/name> ?en"),
        ),
        (
            "S10",
            q("?d <http://drugbank.org/p/genericName> ?n . \
                   ?d <http://www.w3.org/2002/07/owl#sameAs> ?dbp . \
                   ?dbp <http://www.w3.org/2000/01/rdf-schema#label> ?l"),
        ),
        (
            "S11",
            q("?f a <http://linkedmdb.org/Film> . \
                   ?f <http://linkedmdb.org/director> ?dir . \
                   ?dir <http://linkedmdb.org/directorName> ?n"),
        ),
        (
            "S12",
            q("?p a <http://tcga.org/Patient> . \
                   ?p <http://tcga.org/disease> \"BRCA\" . \
                   ?p <http://tcga.org/gender> ?g . \
                   ?p <http://tcga.org/bcr_patient_barcode> ?b"),
        ),
        (
            "S13",
            q("?pr a <http://affymetrix.org/Probeset> . \
                   ?pr <http://affymetrix.org/symbol> ?s . \
                   ?m <http://tcga.org/gene_symbol> ?s . \
                   ?m <http://tcga.org/beta_value> ?v"),
        ),
        (
            "S14",
            q("?p a <http://tcga.org/Patient> . \
                   ?p <http://tcga.org/country> ?c . \
                   ?l <http://geonames.org/countryCode> ?c . \
                   ?l <http://geonames.org/population> ?pop"),
        ),
        // ---------------- complex ----------------
        (
            "C1",
            q("?p a <http://tcga.org/Patient> . \
                  ?p <http://tcga.org/disease> \"GBM\" . \
                  ?p <http://tcga.org/bcr_patient_barcode> ?b . \
                  ?m <http://tcga.org/methPatient> ?p . \
                  ?m <http://tcga.org/gene_symbol> ?s . \
                  ?m <http://tcga.org/beta_value> ?bv . \
                  ?pr <http://affymetrix.org/symbol> ?s . \
                  ?pr <http://affymetrix.org/chromosome> ?chr . \
                  FILTER (?bv > 50)"),
        ),
        (
            "C2",
            q("?d a <http://drugbank.org/class/drugs> . \
                  ?d <http://drugbank.org/p/genericName> ?n . \
                  ?d <http://drugbank.org/p/casRegistryNumber> ?cas . \
                  ?d <http://drugbank.org/p/keggCompoundId> ?k . \
                  ?k <http://kegg.org/formula> ?f . \
                  ?k <http://kegg.org/xRef> ?c . \
                  ?c <http://chebi.org/title> ?t . \
                  FILTER (CONTAINS(STR(?n), \"drugname 11\"))"),
        ),
        (
            "C3",
            q("?d a <http://drugbank.org/class/drugs> . \
                  ?d <http://drugbank.org/p/genericName> ?n . \
                  ?d <http://www.w3.org/2002/07/owl#sameAs> ?dbp . \
                  ?dbp a <http://dbpedia.org/Drug> . \
                  ?dbp <http://www.w3.org/2000/01/rdf-schema#label> ?l . \
                  OPTIONAL { ?d <http://drugbank.org/p/targetGene> ?g } \
                  FILTER (CONTAINS(STR(?l), \"drug\"))"),
        ),
        (
            "C4",
            "SELECT * WHERE { \
                 ?f a <http://linkedmdb.org/Film> . \
                 ?f <http://linkedmdb.org/title> ?t . \
                 ?f <http://linkedmdb.org/director> ?dir . \
                 ?dir <http://linkedmdb.org/directorName> ?dn . \
                 ?f <http://www.w3.org/2002/07/owl#sameAs> ?df . \
                 ?df a <http://dbpedia.org/Film> . \
                 ?df <http://www.w3.org/2000/01/rdf-schema#label> ?l } LIMIT 50"
                .to_string(),
        ),
        (
            "C6",
            q("?a a <http://jamendo.org/MusicArtist> . \
                  ?a <http://jamendo.org/name> ?n . \
                  ?a <http://jamendo.org/based_near> ?loc . \
                  ?loc <http://geonames.org/name> ?ln . \
                  { ?loc <http://geonames.org/countryCode> \"US\" } UNION \
                  { ?loc <http://geonames.org/countryCode> \"DE\" } \
                  ?loc <http://geonames.org/population> ?pop . \
                  FILTER (?pop > 1000)"),
        ),
        (
            "C7",
            q("?p a <http://tcga.org/Patient> . \
                  ?p <http://tcga.org/disease> \"OV\" . \
                  ?e <http://tcga.org/exprPatient> ?p . \
                  ?e <http://tcga.org/gene_symbol> ?s . \
                  ?e <http://tcga.org/rpkm> ?r . \
                  FILTER (?r > 80)"),
        ),
        (
            "C8",
            q("?e a <http://nytimes.org/Entity> . \
                  ?e <http://nytimes.org/name> ?n . \
                  ?e <http://www.w3.org/2002/07/owl#sameAs> ?l . \
                  ?l <http://geonames.org/name> ?gn . \
                  ?l <http://geonames.org/countryCode> ?cc . \
                  OPTIONAL { ?l <http://geonames.org/population> ?pop }"),
        ),
        (
            "C9",
            q("?x <http://www.w3.org/2002/07/owl#sameAs> ?y . \
                  ?y <http://www.w3.org/2000/01/rdf-schema#label> ?l . \
                  { ?x a <http://nytimes.org/Entity> } UNION \
                  { ?x a <http://linkedmdb.org/Film> }"),
        ),
        (
            "C10",
            q("?pa a <http://swdf.org/InProceedings> . \
                   ?pa <http://swdf.org/title> ?t . \
                   ?pa <http://swdf.org/author> ?au . \
                   ?au <http://swdf.org/name> ?an . \
                   ?au <http://www.w3.org/2002/07/owl#sameAs> ?dp . \
                   ?dp a <http://dbpedia.org/Person> . \
                   ?dp <http://www.w3.org/2000/01/rdf-schema#label> ?dl"),
        ),
        // ---------------- large ----------------
        (
            "B1",
            q("?m <http://tcga.org/gene_symbol> ?s . \
                  ?m <http://tcga.org/beta_value> ?v . \
                  ?pr <http://affymetrix.org/symbol> ?s . \
                  { ?pr <http://affymetrix.org/chromosome> \"chr1\" } UNION \
                  { ?pr <http://affymetrix.org/chromosome> \"chr2\" }"),
        ),
        (
            "B2",
            q("?p a <http://tcga.org/Patient> . \
                  ?m <http://tcga.org/methPatient> ?p . \
                  ?m <http://tcga.org/gene_symbol> ?s1 . \
                  ?e <http://tcga.org/exprPatient> ?p . \
                  ?e <http://tcga.org/gene_symbol> ?s2 . \
                  ?e <http://tcga.org/rpkm> ?r"),
        ),
        (
            "B3",
            q("?d a <http://drugbank.org/class/drugs> . \
                  ?d <http://drugbank.org/p/genericName> ?n . \
                  ?d <http://drugbank.org/p/keggCompoundId> ?k . \
                  ?k <http://kegg.org/formula> ?f . \
                  ?d <http://www.w3.org/2002/07/owl#sameAs> ?dbp . \
                  ?dbp <http://www.w3.org/2000/01/rdf-schema#label> ?l"),
        ),
        (
            "B4",
            q("?l <http://geonames.org/name> ?n . \
                  ?l <http://geonames.org/countryCode> ?cc . \
                  ?l <http://geonames.org/population> ?pop . \
                  ?e <http://www.w3.org/2002/07/owl#sameAs> ?l . \
                  ?e <http://nytimes.org/name> ?en"),
        ),
        (
            "B7",
            q("?m <http://tcga.org/gene_symbol> ?s . \
                  ?pr <http://affymetrix.org/symbol> ?s . \
                  ?pr <http://affymetrix.org/chromosome> ?c"),
        ),
        (
            "B8",
            q("?x <http://www.w3.org/2002/07/owl#sameAs> ?y . \
                  ?y <http://geonames.org/name> ?n . \
                  ?x <http://nytimes.org/name> ?xn . \
                  OPTIONAL { ?y <http://geonames.org/population> ?pop }"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::SparqlEndpoint;

    #[test]
    fn thirteen_endpoints_match_table_one_names() {
        let w = generate(&LrbConfig::default());
        assert_eq!(w.federation.len(), 13);
        for (i, name) in ENDPOINT_NAMES.iter().enumerate() {
            assert_eq!(w.endpoints[i].name(), *name);
        }
        // TCGA slices are the largest, as in Table I.
        assert!(w.endpoints[0].triple_count() > w.endpoints[11].triple_count());
    }

    #[test]
    fn all_queries_parse_and_have_oracle_answers() {
        let w = generate(&LrbConfig::default());
        assert_eq!(w.queries.len(), 29);
        for nq in &w.queries {
            let sols = lusail_store::eval::evaluate(&w.oracle, &nq.query);
            assert!(!sols.is_empty(), "{} has no oracle answers", nq.name);
        }
    }

    #[test]
    fn large_queries_return_more_rows_than_simple() {
        let w = generate(&LrbConfig::default());
        let avg = |cat: &str| -> f64 {
            let sizes: Vec<usize> = w
                .queries
                .iter()
                .filter(|nq| category(&nq.name) == cat)
                .map(|nq| lusail_store::eval::evaluate(&w.oracle, &nq.query).len())
                .collect();
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        assert!(avg("large") > avg("simple"));
    }

    #[test]
    fn scale_changes_data_size() {
        let small = generate(&LrbConfig {
            scale: 0.5,
            ..Default::default()
        });
        let big = generate(&LrbConfig::default());
        assert!(big.oracle.len() > small.oracle.len());
    }

    #[test]
    fn category_classification() {
        assert_eq!(category("S3"), "simple");
        assert_eq!(category("C9"), "complex");
        assert_eq!(category("B1"), "large");
    }
}
