//! Shared workload plumbing: the [`Workload`] bundle and store builders.

use lusail_endpoint::{Federation, LocalEndpoint, NetworkProfile, SparqlEndpoint};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::{parse_query, Query};
use lusail_store::{BackendKind, TripleStore};
use std::sync::Arc;

/// A benchmark query with its display name and source text.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// The benchmark name ("Q2", "C2P2BF", "S10", …).
    pub name: String,
    /// SPARQL source text.
    pub text: String,
    /// The parsed query.
    pub query: Query,
}

/// A complete benchmark setting: the federation, the per-endpoint handles
/// (needed by the index-building baselines), a centralized *oracle* store
/// holding the union of all endpoint data, and the query set.
pub struct Workload {
    /// The shared dictionary.
    pub dict: Arc<Dictionary>,
    /// The federation the engines query.
    pub federation: Federation,
    /// Endpoint handles (same objects as in `federation`), for baselines
    /// that preprocess endpoint data.
    pub endpoints: Vec<Arc<LocalEndpoint>>,
    /// Union of all endpoint triples — the correctness oracle.
    pub oracle: TripleStore,
    /// The benchmark queries.
    pub queries: Vec<NamedQuery>,
}

impl Workload {
    /// Assembles a workload from named stores and query texts, with
    /// endpoints on the default BTree backend. Parses all queries against
    /// the shared dictionary and builds the oracle union store.
    /// `profiles`, when given, must be one per endpoint.
    pub fn assemble(
        dict: Arc<Dictionary>,
        stores: Vec<(String, TripleStore)>,
        profiles: Option<Vec<NetworkProfile>>,
        queries: Vec<(&str, String)>,
    ) -> Workload {
        Self::assemble_on(dict, stores, profiles, queries, BackendKind::Btree)
    }

    /// [`Workload::assemble`] with the endpoints' stores materialized
    /// into the chosen storage backend.
    pub fn assemble_on(
        dict: Arc<Dictionary>,
        stores: Vec<(String, TripleStore)>,
        profiles: Option<Vec<NetworkProfile>>,
        queries: Vec<(&str, String)>,
        backend: BackendKind,
    ) -> Workload {
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        for (_, st) in &stores {
            st.scan(None, None, None, |t| {
                oracle.insert(t);
                true
            });
        }
        let mut builder = Federation::builder(Arc::clone(&dict));
        let mut endpoints = Vec::with_capacity(stores.len());
        for (i, (name, store)) in stores.into_iter().enumerate() {
            // Endpoints are built outside the builder because the bench
            // harness needs the concrete [`LocalEndpoint`] handles (the
            // index-building baselines preprocess endpoint data directly).
            let profile = match &profiles {
                Some(ps) => ps[i],
                None => NetworkProfile::default(),
            };
            let ep = Arc::new(LocalEndpoint::on_backend(name, store, backend, profile));
            builder = builder.custom(Arc::clone(&ep) as Arc<dyn SparqlEndpoint>);
            endpoints.push(ep);
        }
        let federation = builder.build();
        let queries = queries
            .into_iter()
            .map(|(name, text)| {
                let query = parse_query(&text, &dict)
                    .unwrap_or_else(|e| panic!("query {name} failed to parse: {e}\n{text}"));
                NamedQuery {
                    name: name.to_string(),
                    text,
                    query,
                }
            })
            .collect();
        Workload {
            dict,
            federation,
            endpoints,
            oracle,
            queries,
        }
    }

    /// Looks a query up by name.
    pub fn query(&self, name: &str) -> &NamedQuery {
        self.queries
            .iter()
            .find(|q| q.name == name)
            .unwrap_or_else(|| panic!("no query named {name}"))
    }

    /// Endpoint handles as plain references (for the index builders).
    pub fn endpoint_refs(&self) -> Vec<&LocalEndpoint> {
        self.endpoints.iter().map(|e| e.as_ref()).collect()
    }
}

/// A tiny deterministic generator (SplitMix64): enough randomness for
/// workload shaping without pulling rand's trait surface into every
/// generator. Identical seeds give identical datasets on every platform.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Inserts `(s, p, o)` given as terms into a store (generator shorthand).
pub fn add(store: &mut TripleStore, s: &Term, p: &Term, o: &Term) {
    store.insert_terms(s, p, o);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn rng_below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn assemble_builds_oracle_union() {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        a.insert_terms(
            &Term::iri("http://x/1"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/2"),
        );
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://x/3"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/4"),
        );
        let w = Workload::assemble(
            dict,
            vec![("A".into(), a), ("B".into(), b)],
            None,
            vec![("Q1", "SELECT * WHERE { ?s <http://x/p> ?o }".to_string())],
        );
        assert_eq!(w.oracle.len(), 2);
        assert_eq!(w.federation.len(), 2);
        assert_eq!(w.query("Q1").name, "Q1");
        assert_eq!(w.endpoint_refs().len(), 2);
    }
}
