//! A QFed-style federation: four real-world life-science sources
//! (DrugBank, Diseasome, Sider, DailyMed) with cross-dataset interlinks.
//!
//! QFed is small (~1.2M triples in the paper, scaled down here) but its
//! interlinks make federated evaluation hard: Diseasome's `possibleDrug`
//! and DailyMed's `genericMedicine` reference DrugBank drug IRIs, and
//! DrugBank's `owl:sameAs` references Sider drug IRIs. The C2P2 query
//! family exercises combinations of:
//!
//! * `F` — a selective FILTER,
//! * `B` — retrieving a *big literal* object (`drugbank:description`,
//!   ~0.5 KB each — the variant that times FedX/HiBISCuS out in Fig. 11),
//! * `O` — an OPTIONAL clause,
//!
//! plus the Drug query (asthma medicines, two OPTIONALs, four sources).

use crate::common::{add, Rng, Workload};
use lusail_endpoint::NetworkProfile;
use lusail_rdf::{vocab, Dictionary, Term};
use lusail_store::{BackendKind, TripleStore};
use std::sync::Arc;

/// Per-source namespaces.
pub const DRUGBANK: &str = "http://drugbank.org/";
/// Diseasome namespace.
pub const DISEASOME: &str = "http://diseasome.org/";
/// Sider namespace.
pub const SIDER: &str = "http://sider.org/";
/// DailyMed namespace.
pub const DAILYMED: &str = "http://dailymed.org/";

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct QfedConfig {
    /// Number of drugs in DrugBank (other sources scale off this).
    pub drugs: usize,
    /// Number of diseases in Diseasome.
    pub diseases: usize,
    /// Generator seed.
    pub seed: u64,
    /// Optional per-endpoint network profiles.
    pub profiles: Option<Vec<NetworkProfile>>,
    /// Storage backend the endpoints are materialized into.
    pub backend: BackendKind,
}

impl Default for QfedConfig {
    fn default() -> Self {
        QfedConfig {
            drugs: 300,
            diseases: 80,
            seed: 0xD0C5,
            profiles: None,
            backend: BackendKind::Btree,
        }
    }
}

fn iri(ns: &str, local: String) -> Term {
    Term::iri(format!("{ns}{local}"))
}

/// Generates the four-endpoint federation and the QFed query set.
pub fn generate(config: &QfedConfig) -> Workload {
    let dict = Dictionary::shared();
    let mut rng = Rng::new(config.seed);
    let rdf_type = Term::iri(vocab::RDF_TYPE);
    let rdfs_label = Term::iri(vocab::RDFS_LABEL);
    let same_as = Term::iri(vocab::OWL_SAME_AS);

    let n_drugs = config.drugs;
    let n_side_effects = (n_drugs / 3).max(10);
    let n_targets = (n_drugs / 5).max(10);

    // --- DrugBank -------------------------------------------------------
    let mut drugbank = TripleStore::new(Arc::clone(&dict));
    let c_db_drug = iri(DRUGBANK, "class/drugs".into());
    let p_generic = iri(DRUGBANK, "p/genericName".into());
    let p_desc = iri(DRUGBANK, "p/description".into());
    let p_indication = iri(DRUGBANK, "p/indication".into());
    let p_target = iri(DRUGBANK, "p/target".into());
    let c_db_target = iri(DRUGBANK, "class/targets".into());
    let p_gene_name = iri(DRUGBANK, "p/geneName".into());
    for t in 0..n_targets {
        let target = iri(DRUGBANK, format!("targets/{t}"));
        add(&mut drugbank, &target, &rdf_type, &c_db_target);
        add(
            &mut drugbank,
            &target,
            &p_gene_name,
            &Term::lit(format!("GENE{t}")),
        );
    }
    for i in 0..n_drugs {
        let drug = iri(DRUGBANK, format!("drugs/{i}"));
        add(&mut drugbank, &drug, &rdf_type, &c_db_drug);
        add(
            &mut drugbank,
            &drug,
            &p_generic,
            &Term::lit(format!("drugname {i}")),
        );
        // The big literal: ~0.5 KB of text per drug.
        let description = format!(
            "Drug {i} long pharmacological description: {}",
            "lorem ipsum pharmacokinetics absorption metabolism excretion ".repeat(8)
        );
        add(&mut drugbank, &drug, &p_desc, &Term::lit(description));
        if rng.chance(0.7) {
            add(
                &mut drugbank,
                &drug,
                &p_indication,
                &Term::lit(format!("indication for condition {}", i % 40)),
            );
        }
        // Interlink: DrugBank → Sider.
        if rng.chance(0.8) {
            add(
                &mut drugbank,
                &drug,
                &same_as,
                &iri(SIDER, format!("drugs/{i}")),
            );
        }
        for _ in 0..1 + rng.below(2) {
            let t = rng.below(n_targets);
            add(
                &mut drugbank,
                &drug,
                &p_target,
                &iri(DRUGBANK, format!("targets/{t}")),
            );
        }
    }

    // --- Diseasome ------------------------------------------------------
    let mut diseasome = TripleStore::new(Arc::clone(&dict));
    let c_disease = iri(DISEASOME, "class/diseases".into());
    let p_dname = iri(DISEASOME, "p/name".into());
    let p_possible = iri(DISEASOME, "p/possibleDrug".into());
    let p_degree = iri(DISEASOME, "p/degree".into());
    for j in 0..config.diseases {
        let disease = iri(DISEASOME, format!("diseases/{j}"));
        add(&mut diseasome, &disease, &rdf_type, &c_disease);
        let name = if j == 0 {
            "Asthma".to_string()
        } else {
            format!("Disease {j}")
        };
        add(&mut diseasome, &disease, &p_dname, &Term::lit(name));
        add(
            &mut diseasome,
            &disease,
            &p_degree,
            &Term::int((j % 17) as i64),
        );
        // Interlink: Diseasome → DrugBank.
        for _ in 0..2 + rng.below(4) {
            let d = rng.below(n_drugs);
            add(
                &mut diseasome,
                &disease,
                &p_possible,
                &iri(DRUGBANK, format!("drugs/{d}")),
            );
        }
    }

    // --- Sider ----------------------------------------------------------
    let mut sider = TripleStore::new(Arc::clone(&dict));
    let c_s_drug = iri(SIDER, "class/drugs".into());
    let c_se = iri(SIDER, "class/side_effects".into());
    let p_sname = iri(SIDER, "p/siderDrugName".into());
    let p_se = iri(SIDER, "p/sideEffect".into());
    for k in 0..n_side_effects {
        let se = iri(SIDER, format!("se/{k}"));
        add(&mut sider, &se, &rdf_type, &c_se);
        add(
            &mut sider,
            &se,
            &rdfs_label,
            &Term::lit(format!("side effect {k}")),
        );
    }
    for i in 0..n_drugs {
        let sdrug = iri(SIDER, format!("drugs/{i}"));
        add(&mut sider, &sdrug, &rdf_type, &c_s_drug);
        add(
            &mut sider,
            &sdrug,
            &p_sname,
            &Term::lit(format!("drugname {i}")),
        );
        for _ in 0..1 + rng.below(4) {
            let k = rng.below(n_side_effects);
            add(&mut sider, &sdrug, &p_se, &iri(SIDER, format!("se/{k}")));
        }
    }

    // --- DailyMed -------------------------------------------------------
    let mut dailymed = TripleStore::new(Arc::clone(&dict));
    let c_dm_drug = iri(DAILYMED, "class/drugs".into());
    let p_gm = iri(DAILYMED, "p/genericMedicine".into());
    let p_full = iri(DAILYMED, "p/fullName".into());
    let p_org = iri(DAILYMED, "p/organization".into());
    for i in 0..n_drugs {
        if !rng.chance(0.5) {
            continue;
        }
        let label = iri(DAILYMED, format!("labels/{i}"));
        add(&mut dailymed, &label, &rdf_type, &c_dm_drug);
        // Interlink: DailyMed → DrugBank.
        add(
            &mut dailymed,
            &label,
            &p_gm,
            &iri(DRUGBANK, format!("drugs/{i}")),
        );
        add(
            &mut dailymed,
            &label,
            &p_full,
            &Term::lit(format!("Full label of drug {i}")),
        );
        add(
            &mut dailymed,
            &label,
            &p_org,
            &Term::lit(format!("Pharma {}", i % 12)),
        );
    }

    let stores = vec![
        ("DrugBank".to_string(), drugbank),
        ("Diseasome".to_string(), diseasome),
        ("Sider".to_string(), sider),
        ("DailyMed".to_string(), dailymed),
    ];
    Workload::assemble_on(
        dict,
        stores,
        config.profiles.clone(),
        queries(),
        config.backend,
    )
}

/// The QFed query family of Fig. 11 plus the Drug query (§II).
pub fn queries() -> Vec<(&'static str, String)> {
    let prefixes = format!(
        "PREFIX drugbank: <{DRUGBANK}> PREFIX diseasome: <{DISEASOME}> \
         PREFIX sider: <{SIDER}> PREFIX dailymed: <{DAILYMED}> "
    );
    // The C2P2 core: drugs with their Sider side effects via owl:sameAs.
    let core = "?drug a <http://drugbank.org/class/drugs> . \
                ?drug <http://drugbank.org/p/genericName> ?name . \
                ?drug <http://www.w3.org/2002/07/owl#sameAs> ?sdrug . \
                ?sdrug a <http://sider.org/class/drugs> . \
                ?sdrug <http://sider.org/p/sideEffect> ?se . ";
    let big = "?drug <http://drugbank.org/p/description> ?desc . ";
    let filt = "FILTER (CONTAINS(STR(?name), \"drugname 1\")) ";
    let opt = "OPTIONAL { ?drug <http://drugbank.org/p/indication> ?ind } ";

    let make = |extra: &str| -> String { format!("{prefixes}SELECT * WHERE {{ {core}{extra}}}") };

    vec![
        ("C2P2", make("")),
        ("C2P2F", make(filt)),
        ("C2P2B", make(big)),
        ("C2P2O", make(opt)),
        ("C2P2OF", make(&format!("{opt}{filt}"))),
        ("C2P2BF", make(&format!("{big}{filt}"))),
        ("C2P2BO", make(&format!("{big}{opt}"))),
        ("C2P2BOF", make(&format!("{big}{opt}{filt}"))),
        (
            "Drug",
            format!(
                "{prefixes}SELECT ?disease ?drug ?ind ?fullname WHERE {{ \
                 ?disease a <http://diseasome.org/class/diseases> . \
                 ?disease <http://diseasome.org/p/name> \"Asthma\" . \
                 ?disease <http://diseasome.org/p/possibleDrug> ?drug . \
                 ?drug a <http://drugbank.org/class/drugs> . \
                 OPTIONAL {{ ?drug <http://drugbank.org/p/indication> ?ind }} \
                 OPTIONAL {{ ?dm <http://dailymed.org/p/genericMedicine> ?drug . \
                             ?dm <http://dailymed.org/p/fullName> ?fullname }} }}"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_endpoints_with_interlinks() {
        let w = generate(&QfedConfig::default());
        assert_eq!(w.federation.len(), 4);
        // Diseasome must reference DrugBank IRIs (interlink).
        let p = w
            .dict
            .lookup(&iri(DISEASOME, "p/possibleDrug".into()))
            .unwrap();
        let mut crossing = 0;
        w.endpoints[1].store().scan(None, Some(p), None, |t| {
            if w.dict.decode(t.o).authority() == Some("http://drugbank.org") {
                crossing += 1;
            }
            true
        });
        assert!(crossing > 0);
    }

    #[test]
    fn all_queries_have_oracle_answers() {
        let w = generate(&QfedConfig::default());
        for nq in &w.queries {
            let sols = lusail_store::eval::evaluate(&w.oracle, &nq.query);
            assert!(!sols.is_empty(), "{} has no oracle answers", nq.name);
        }
    }

    #[test]
    fn filter_variant_is_more_selective() {
        let w = generate(&QfedConfig::default());
        let all = lusail_store::eval::evaluate(&w.oracle, &w.query("C2P2").query);
        let filtered = lusail_store::eval::evaluate(&w.oracle, &w.query("C2P2F").query);
        assert!(filtered.len() < all.len());
        assert!(!filtered.is_empty());
    }

    #[test]
    fn big_literal_variant_moves_more_bytes() {
        let w = generate(&QfedConfig::default());
        let plain = lusail_store::eval::evaluate(&w.oracle, &w.query("C2P2").query);
        let big = lusail_store::eval::evaluate(&w.oracle, &w.query("C2P2B").query);
        assert!(big.wire_bytes() > plain.wire_bytes());
    }

    #[test]
    fn asthma_query_touches_dailymed_optionally() {
        let w = generate(&QfedConfig::default());
        let sols = lusail_store::eval::evaluate(&w.oracle, &w.query("Drug").query);
        assert!(!sols.is_empty());
        // Some row binds ?fullname (DailyMed) and some does not (OPTIONAL).
        let col = sols.col("fullname").unwrap();
        let bound = sols.rows.iter().filter(|r| r[col].is_some()).count();
        assert!(bound > 0, "no DailyMed optional matches");
    }
}
