//! A LUBM-style federation: one university per endpoint, identical
//! ontology everywhere, and cross-university *degree interlinks*.
//!
//! The structural properties the paper's LUBM experiments rely on are all
//! preserved:
//!
//! * every endpoint answers every predicate (same schema), so baseline
//!   systems cannot form exclusive groups and fall into
//!   pattern-at-a-time bound joins;
//! * `doctoralDegreeFrom` / `undergraduateDegreeFrom` objects sometimes
//!   live at *other* endpoints (the red dotted interlink of Fig. 1);
//! * every university has at least one home-grown student and professor,
//!   every professor teaches, every course is taken — which makes the
//!   paper's Q1 and Q2 *disjoint* under LADE's checks while Q3 and Q4
//!   need cross-endpoint joins.
//!
//! Entity IRIs use a per-university authority (`http://univN.edu/…`) so
//! the HiBISCuS authority summaries are meaningful.

use crate::common::{add, Rng, Workload};
use lusail_endpoint::NetworkProfile;
use lusail_rdf::{Dictionary, Term};
use lusail_store::{BackendKind, TripleStore};
use std::sync::Arc;

/// The `ub:` ontology namespace used by the generator and queries.
pub const UB: &str = "http://lubm.org/ub#";

/// Generator configuration. The default (scaled-down) university is about
/// two thousand triples; the paper's is ~138k, with identical shape.
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Number of universities = number of endpoints.
    pub universities: usize,
    /// Departments per university.
    pub departments: usize,
    /// Professors per department.
    pub professors: usize,
    /// Graduate students per department.
    pub students: usize,
    /// Courses taught by each professor.
    pub courses_per_professor: usize,
    /// Probability that a degree points at a *remote* university.
    pub remote_degree_fraction: f64,
    /// Generator seed.
    pub seed: u64,
    /// Optional per-endpoint network profiles (geo-distributed setting).
    pub profiles: Option<Vec<NetworkProfile>>,
    /// Storage backend the endpoints are materialized into.
    pub backend: BackendKind,
}

impl LubmConfig {
    /// A configuration with the default shape for `n` universities.
    pub fn new(universities: usize) -> Self {
        LubmConfig {
            universities,
            departments: 3,
            professors: 5,
            students: 25,
            courses_per_professor: 2,
            remote_degree_fraction: 0.3,
            seed: 0xC0FFEE,
            profiles: None,
            backend: BackendKind::Btree,
        }
    }
}

fn ub(local: &str) -> Term {
    Term::iri(format!("{UB}{local}"))
}

fn entity(univ: usize, local: &str) -> Term {
    Term::iri(format!("http://univ{univ}.edu/{local}"))
}

/// Generates the federation, oracle, and queries Q1–Q4.
pub fn generate(config: &LubmConfig) -> Workload {
    let dict = Dictionary::shared();
    let mut rng = Rng::new(config.seed);
    let n = config.universities;
    assert!(n >= 1, "need at least one university");

    let rdf_type = Term::iri(lusail_rdf::vocab::RDF_TYPE);
    let c_university = ub("University");
    let c_department = ub("Department");
    let c_professor = ub("Professor");
    let c_grad_student = ub("GraduateStudent");
    let c_course = ub("Course");
    let p_name = ub("name");
    let p_email = ub("emailAddress");
    let p_suborg = ub("subOrganizationOf");
    let p_works_for = ub("worksFor");
    let p_member_of = ub("memberOf");
    let p_advisor = ub("advisor");
    let p_teacher_of = ub("teacherOf");
    let p_takes = ub("takesCourse");
    let p_doctoral = ub("doctoralDegreeFrom");
    let p_undergrad = ub("undergraduateDegreeFrom");

    // A remote university for an interlinked degree: one of the next two
    // universities (mod n). This keeps e.g. "alumni of university 0" at a
    // strict subset of endpoints, which drives Q3's decomposition.
    let remote_univ = |k: usize, rng: &mut Rng| -> usize {
        if n == 1 {
            0
        } else if n == 2 {
            (k + 1) % n
        } else {
            (k + 1 + rng.below(2)) % n
        }
    };

    let mut stores = Vec::with_capacity(n);
    for k in 0..n {
        let mut st = TripleStore::new(Arc::clone(&dict));
        let uni = entity(k, &format!("University{k}"));
        add(&mut st, &uni, &rdf_type, &c_university);
        add(
            &mut st,
            &uni,
            &p_name,
            &Term::lit(format!("University {k}")),
        );

        for d in 0..config.departments {
            let dept = entity(k, &format!("Department{d}"));
            add(&mut st, &dept, &rdf_type, &c_department);
            add(&mut st, &dept, &p_suborg, &uni);
            add(
                &mut st,
                &dept,
                &p_name,
                &Term::lit(format!("Dept {d} of U{k}")),
            );

            // Professors and their courses.
            let mut courses: Vec<Term> = Vec::new();
            let mut professors: Vec<Term> = Vec::new();
            for i in 0..config.professors {
                let prof = entity(k, &format!("Dept{d}.Professor{i}"));
                add(&mut st, &prof, &rdf_type, &c_professor);
                add(&mut st, &prof, &p_works_for, &dept);
                add(
                    &mut st,
                    &prof,
                    &p_name,
                    &Term::lit(format!("Professor {i} D{d} U{k}")),
                );
                add(
                    &mut st,
                    &prof,
                    &p_email,
                    &Term::lit(format!("prof{i}.d{d}@univ{k}.edu")),
                );
                // Degrees: professor 0 of department 0 always graduated
                // locally (keeps every university self-referenced).
                let doctoral_univ =
                    if (i == 0 && d == 0) || !rng.chance(config.remote_degree_fraction) {
                        k
                    } else {
                        remote_univ(k, &mut rng)
                    };
                let target = entity(doctoral_univ, &format!("University{doctoral_univ}"));
                add(&mut st, &prof, &p_doctoral, &target);
                let ug_univ = if rng.chance(config.remote_degree_fraction / 2.0) {
                    remote_univ(k, &mut rng)
                } else {
                    k
                };
                add(
                    &mut st,
                    &prof,
                    &p_undergrad,
                    &entity(ug_univ, &format!("University{ug_univ}")),
                );
                for c in 0..config.courses_per_professor {
                    let course = entity(k, &format!("Dept{d}.Course{i}_{c}"));
                    add(&mut st, &course, &rdf_type, &c_course);
                    add(
                        &mut st,
                        &course,
                        &p_name,
                        &Term::lit(format!("Course {i}.{c} D{d} U{k}")),
                    );
                    add(&mut st, &prof, &p_teacher_of, &course);
                    courses.push(course);
                }
                professors.push(prof);
            }

            // Graduate students.
            for s in 0..config.students {
                let student = entity(k, &format!("Dept{d}.Student{s}"));
                add(&mut st, &student, &rdf_type, &c_grad_student);
                add(&mut st, &student, &p_member_of, &dept);
                add(
                    &mut st,
                    &student,
                    &p_name,
                    &Term::lit(format!("Student {s} D{d} U{k}")),
                );
                add(
                    &mut st,
                    &student,
                    &p_email,
                    &Term::lit(format!("stud{s}.d{d}@univ{k}.edu")),
                );
                let advisor_idx = rng.below(professors.len());
                add(&mut st, &student, &p_advisor, &professors[advisor_idx]);
                // First course: one taught by the advisor (keeps the Q2
                // triangle populated); second: round-robin so every course
                // has at least one student (with students ≥ courses).
                let advisor_course = &courses[advisor_idx * config.courses_per_professor
                    + rng.below(config.courses_per_professor)];
                add(&mut st, &student, &p_takes, advisor_course);
                let rr = &courses[s % courses.len()];
                if rr != advisor_course {
                    add(&mut st, &student, &p_takes, rr);
                }
                // Undergraduate degree: student 0 always local (every
                // university keeps a home-grown student), others may be
                // remote.
                let ug = if s == 0 || !rng.chance(config.remote_degree_fraction) {
                    k
                } else {
                    remote_univ(k, &mut rng)
                };
                add(
                    &mut st,
                    &student,
                    &p_undergrad,
                    &entity(ug, &format!("University{ug}")),
                );
            }
        }
        stores.push((format!("univ-{k}"), st));
    }

    let queries = queries();
    Workload::assemble_on(
        dict,
        stores,
        config.profiles.clone(),
        queries,
        config.backend,
    )
}

/// The paper's LUBM query set (§VI-A "Queries"): Q1/Q2 are LUBM Q2/Q9
/// (disjoint triangles), Q3 is LUBM Q13 (alumni of university 0), Q4 is
/// the paper's Q9 variation that additionally retrieves information from
/// remote universities.
pub fn queries() -> Vec<(&'static str, String)> {
    let prefix = format!("PREFIX ub: <{UB}> ");
    vec![
        (
            "Q1",
            format!(
                "{prefix}SELECT ?x ?y ?z WHERE {{ \
                 ?x a ub:GraduateStudent . \
                 ?y a ub:University . \
                 ?z a ub:Department . \
                 ?x ub:memberOf ?z . \
                 ?z ub:subOrganizationOf ?y . \
                 ?x ub:undergraduateDegreeFrom ?y }}"
            ),
        ),
        (
            "Q2",
            format!(
                "{prefix}SELECT ?x ?y ?z WHERE {{ \
                 ?x a ub:GraduateStudent . \
                 ?y a ub:Professor . \
                 ?z a ub:Course . \
                 ?x ub:advisor ?y . \
                 ?y ub:teacherOf ?z . \
                 ?x ub:takesCourse ?z }}"
            ),
        ),
        (
            "Q3",
            format!(
                "{prefix}SELECT ?x WHERE {{ \
                 ?x a ub:GraduateStudent . \
                 ?x ub:undergraduateDegreeFrom <http://univ0.edu/University0> }}"
            ),
        ),
        (
            "Q4",
            format!(
                "{prefix}SELECT ?x ?y ?u ?n WHERE {{ \
                 ?x a ub:GraduateStudent . \
                 ?x ub:advisor ?y . \
                 ?y ub:teacherOf ?z . \
                 ?x ub:takesCourse ?z . \
                 ?y ub:doctoralDegreeFrom ?u . \
                 ?u ub:name ?n }}"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    use lusail_endpoint::SparqlEndpoint;

    #[test]
    fn generator_is_deterministic() {
        let w1 = generate(&LubmConfig::new(2));
        let w2 = generate(&LubmConfig::new(2));
        assert_eq!(w1.oracle.len(), w2.oracle.len());
        assert_eq!(
            w1.endpoints[0].triple_count(),
            w2.endpoints[0].triple_count()
        );
    }

    #[test]
    fn every_university_is_self_contained() {
        let w = generate(&LubmConfig::new(4));
        for ep in &w.endpoints {
            let st = ep.store();
            // Every endpoint has all core predicates.
            for p in [
                "advisor",
                "takesCourse",
                "teacherOf",
                "doctoralDegreeFrom",
                "undergraduateDegreeFrom",
                "memberOf",
                "subOrganizationOf",
                "name",
            ] {
                let id = st.dict().lookup(&ub(p)).unwrap();
                assert!(
                    st.predicate_stats(id).is_some(),
                    "endpoint {} lacks ub:{p}",
                    ep.name()
                );
            }
        }
    }

    #[test]
    fn interlinks_exist() {
        let w = generate(&LubmConfig::new(4));
        // Some doctoral degree at endpoint k must reference another
        // university's entity.
        let dict = &w.dict;
        let p = dict.lookup(&ub("doctoralDegreeFrom")).unwrap();
        let mut remote_links = 0;
        for (k, ep) in w.endpoints.iter().enumerate() {
            let authority = format!("http://univ{k}.edu");
            ep.store().scan(None, Some(p), None, |t| {
                let obj = dict.decode(t.o);
                if obj.authority() != Some(authority.as_str()) {
                    remote_links += 1;
                }
                true
            });
        }
        assert!(remote_links > 0, "no degree interlinks generated");
    }

    #[test]
    fn queries_parse_and_have_oracle_answers() {
        let w = generate(&LubmConfig::new(4));
        for nq in &w.queries {
            let sols = lusail_store::eval::evaluate(&w.oracle, &nq.query);
            assert!(!sols.is_empty(), "{} has no oracle answers", nq.name);
        }
    }

    #[test]
    fn q4_needs_cross_endpoint_rows() {
        // Q4's (?u name ?n) must bind names of remote universities for
        // professors with remote doctorates: verify at least one result row
        // references a university different from the student's own.
        let w = generate(&LubmConfig::new(4));
        let q4 = w.query("Q4");
        let sols = lusail_store::eval::evaluate(&w.oracle, &q4.query);
        let dict = &w.dict;
        let xcol = sols.col("x").unwrap();
        let ucol = sols.col("u").unwrap();
        let crossing = sols.rows.iter().any(|row| {
            let x = dict.decode(row[xcol].unwrap());
            let u = dict.decode(row[ucol].unwrap());
            x.authority() != u.authority()
        });
        assert!(crossing, "no Q4 row traverses an interlink");
    }
}
