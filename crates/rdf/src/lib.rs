//! RDF data model for the Lusail reproduction.
//!
//! This crate provides the vocabulary-independent building blocks shared by
//! every other crate in the workspace:
//!
//! * [`Term`] — an RDF term (IRI, literal, or blank node),
//! * [`Dictionary`] — a thread-safe interning dictionary mapping terms to
//!   dense [`TermId`]s (dictionary encoding, the standard trick in RDF
//!   engines such as RDF-3X and Virtuoso),
//! * [`Triple`] — a dictionary-encoded RDF triple,
//! * [`ntriples`] — a small N-Triples parser and serializer,
//! * [`fx`] — a fast, non-cryptographic hasher used for integer-keyed maps
//!   throughout the workspace (per the Rust perf-book guidance; implemented
//!   here to avoid an extra dependency).

pub mod dictionary;
pub mod fx;
pub mod ntriples;
pub mod term;
pub mod triple;

pub use dictionary::{Dictionary, TermId};
pub use fx::{FxHashMap, FxHashSet};
pub use term::Term;
pub use triple::Triple;

/// Common RDF vocabulary IRIs used across the workspace.
pub mod vocab {
    /// `rdf:type`.
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdfs:label`.
    pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:seeAlso`.
    pub const RDFS_SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
    /// `owl:sameAs`.
    pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
    /// `xsd:integer`.
    pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:string`.
    pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
}
