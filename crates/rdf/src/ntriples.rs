//! A small N-Triples parser and serializer.
//!
//! Supports the subset of N-Triples the workspace needs: IRIs, blank nodes,
//! and literals with optional language tags or datatypes, with the standard
//! string escapes. Each line holds one triple terminated by `.`.

use crate::dictionary::Dictionary;
use crate::term::Term;
use crate::triple::Triple;
use std::fmt::Write as _;

/// An error raised while parsing N-Triples text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a full N-Triples document, interning terms into `dict` and
/// returning the encoded triples. Blank lines and `#` comments are skipped.
pub fn parse_document(text: &str, dict: &Dictionary) -> Result<Vec<Triple>, ParseError> {
    let mut triples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(trimmed).map_err(|message| ParseError {
            line: line_no,
            message,
        })?;
        triples.push(Triple::new(
            dict.encode(&s),
            dict.encode(&p),
            dict.encode(&o),
        ));
    }
    Ok(triples)
}

/// Parses one N-Triples line (without trailing newline) into three terms.
pub fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor::new(line);
    let s = cursor.parse_term()?;
    let p = cursor.parse_term()?;
    let o = cursor.parse_term()?;
    cursor.skip_ws();
    if !cursor.eat('.') {
        return Err("expected terminating '.'".into());
    }
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err("trailing content after '.'".into());
    }
    Ok((s, p, o))
}

/// Serializes triples as an N-Triples document.
pub fn serialize(triples: &[Triple], dict: &Dictionary) -> String {
    let mut out = String::new();
    for t in triples {
        let _ = writeln!(
            out,
            "{} {} {} .",
            dict.decode(t.s),
            dict.decode(t.p),
            dict.decode(t.o)
        );
    }
    out
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.peek() == Some(&c) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn at_end(&mut self) -> bool {
        self.chars.peek().is_none()
    }

    fn parse_term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        match self.chars.peek() {
            Some('<') => self.parse_iri().map(Term::Iri),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            other => Err(format!("unexpected character {other:?} at start of term")),
        }
    }

    fn parse_iri(&mut self) -> Result<String, String> {
        assert!(self.eat('<'));
        let mut iri = String::new();
        for c in self.chars.by_ref() {
            if c == '>' {
                return Ok(iri);
            }
            iri.push(c);
        }
        Err("unterminated IRI".into())
    }

    fn parse_blank(&mut self) -> Result<Term, String> {
        assert!(self.eat('_'));
        if !self.eat(':') {
            return Err("expected ':' after '_' in blank node".into());
        }
        let mut label = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err("empty blank node label".into());
        }
        Ok(Term::Blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term, String> {
        assert!(self.eat('"'));
        let mut lexical = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated literal".into()),
                Some('"') => break,
                Some('\\') => match self.chars.next() {
                    Some('n') => lexical.push('\n'),
                    Some('r') => lexical.push('\r'),
                    Some('t') => lexical.push('\t'),
                    Some('"') => lexical.push('"'),
                    Some('\\') => lexical.push('\\'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => lexical.push(c),
            }
        }
        // Optional language tag or datatype.
        if self.eat('@') {
            let mut lang = String::new();
            while let Some(&c) = self.chars.peek() {
                if c.is_ascii_alphanumeric() || c == '-' {
                    lang.push(c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            if lang.is_empty() {
                return Err("empty language tag".into());
            }
            Ok(Term::Literal {
                lexical,
                lang: Some(lang),
                datatype: None,
            })
        } else if self.eat('^') {
            if !self.eat('^') {
                return Err("expected '^^' before datatype".into());
            }
            if self.chars.peek() != Some(&'<') {
                return Err("expected IRI after '^^'".into());
            }
            let dt = self.parse_iri()?;
            Ok(Term::Literal {
                lexical,
                lang: None,
                datatype: Some(dt),
            })
        } else {
            Ok(Term::lit(lexical))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_triple() {
        let (s, p, o) = parse_line("<http://x/a> <http://x/p> <http://x/b> .").unwrap();
        assert_eq!(s, Term::iri("http://x/a"));
        assert_eq!(p, Term::iri("http://x/p"));
        assert_eq!(o, Term::iri("http://x/b"));
    }

    #[test]
    fn parse_literal_objects() {
        let (_, _, o) = parse_line("<http://x/a> <http://x/p> \"hi\" .").unwrap();
        assert_eq!(o, Term::lit("hi"));
        let (_, _, o) = parse_line("<http://x/a> <http://x/p> \"hi\"@en .").unwrap();
        assert_eq!(o, Term::lang_lit("hi", "en"));
        let (_, _, o) = parse_line(
            "<http://x/a> <http://x/p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        )
        .unwrap();
        assert_eq!(o, Term::int(3));
    }

    #[test]
    fn parse_blank_nodes() {
        let (s, _, _) = parse_line("_:b0 <http://x/p> \"v\" .").unwrap();
        assert_eq!(s, Term::Blank("b0".into()));
    }

    #[test]
    fn parse_escaped_literal() {
        let (_, _, o) = parse_line(r#"<http://x/a> <http://x/p> "a\"b\nc" ."#).unwrap();
        assert_eq!(o, Term::lit("a\"b\nc"));
    }

    #[test]
    fn document_roundtrip() {
        let dict = Dictionary::new();
        let doc = "<http://x/a> <http://x/p> \"hi\"@en .\n\
                   # a comment\n\
                   \n\
                   _:b <http://x/q> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        let triples = parse_document(doc, &dict).unwrap();
        assert_eq!(triples.len(), 2);
        let out = serialize(&triples, &dict);
        let reparsed = parse_document(&out, &dict).unwrap();
        assert_eq!(triples, reparsed);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let dict = Dictionary::new();
        let err = parse_document("<http://x/a> <http://x/p> .\n", &dict).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_line("<http://x/a> <http://x/p> \"v\" . extra").is_err());
    }
}
