//! A minimal FxHash implementation (the rustc hash), plus `HashMap`/`HashSet`
//! aliases using it.
//!
//! The workspace hashes dense integer [`TermId`](crate::TermId)s on every
//! join-probe and dictionary lookup; SipHash (the std default) is measurably
//! slower for such keys. FxHash is the algorithm rustc itself settled on.
//! It is *not* HashDoS-resistant — acceptable here because all keys are
//! internally generated.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using FxHash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"world"));
    }

    #[test]
    fn different_integer_keys_hash_differently() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(h(i)), "collision at {i}");
        }
    }
}
