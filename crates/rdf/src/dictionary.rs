//! Thread-safe term interning dictionary.
//!
//! Every federation shares a single [`Dictionary`]: endpoints, the federated
//! engine, and workload generators all encode [`Term`]s into dense
//! [`TermId`]s through it. Sharing one dictionary is purely an encoding
//! convenience — it does not leak any data-placement information, because
//! interning a string says nothing about *which endpoint* holds triples
//! mentioning it.

use crate::fx::FxHashMap;
use crate::term::Term;
use std::sync::{Arc, RwLock};

/// A dense identifier for an interned [`Term`]. `TermId(0)` is the first
/// interned term; ids are assigned in interning order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct Inner {
    terms: Vec<Arc<Term>>,
    ids: FxHashMap<Arc<Term>, TermId>,
}

/// A bidirectional, thread-safe `Term` ↔ [`TermId`] mapping.
///
/// Interning is write-locked; lookups are read-locked. Workloads intern
/// during data generation and then run read-mostly, so a `RwLock` is the
/// right tradeoff.
#[derive(Default)]
pub struct Dictionary {
    inner: RwLock<Inner>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary behind an `Arc`, the usual way a
    /// federation holds it.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Interns a term, returning its id. Idempotent.
    pub fn encode(&self, term: &Term) -> TermId {
        if let Some(id) = self.inner.read().unwrap().ids.get(term) {
            return *id;
        }
        let mut inner = self.inner.write().unwrap();
        // Re-check under the write lock: another thread may have interned it.
        if let Some(id) = inner.ids.get(term) {
            return *id;
        }
        let id = TermId(u32::try_from(inner.terms.len()).expect("dictionary overflow"));
        let arc = Arc::new(term.clone());
        inner.terms.push(Arc::clone(&arc));
        inner.ids.insert(arc, id);
        id
    }

    /// Interns an IRI given as a string.
    pub fn encode_iri(&self, iri: &str) -> TermId {
        self.encode(&Term::iri(iri))
    }

    /// Interns a plain literal given as a string.
    pub fn encode_lit(&self, lexical: &str) -> TermId {
        self.encode(&Term::lit(lexical))
    }

    /// Looks up a term id without interning. Returns `None` if the term has
    /// never been seen.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.inner.read().unwrap().ids.get(term).copied()
    }

    /// Decodes an id back to its term. Panics on an id that was never issued
    /// by this dictionary (a program logic error, not a data error).
    pub fn decode(&self, id: TermId) -> Arc<Term> {
        Arc::clone(&self.inner.read().unwrap().terms[id.index()])
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let d = Dictionary::new();
        let a = d.encode(&Term::iri("http://x/a"));
        let b = d.encode(&Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let d = Dictionary::new();
        let a = d.encode(&Term::iri("http://x/a"));
        let b = d.encode(&Term::lit("http://x/a")); // same text, different kind
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let d = Dictionary::new();
        let t = Term::lang_lit("bonjour", "fr");
        let id = d.encode(&t);
        assert_eq!(*d.decode(id), t);
    }

    #[test]
    fn lookup_does_not_intern() {
        let d = Dictionary::new();
        assert_eq!(d.lookup(&Term::lit("x")), None);
        assert!(d.is_empty());
        let id = d.encode(&Term::lit("x"));
        assert_eq!(d.lookup(&Term::lit("x")), Some(id));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let d = Dictionary::shared();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    (0..1000)
                        .map(|i| d.encode(&Term::iri(format!("http://x/{i}"))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<TermId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(d.len(), 1000);
    }
}
