//! RDF terms: IRIs, literals, and blank nodes.

use std::fmt;

/// An RDF term.
///
/// Literals carry an optional language tag or datatype IRI (mutually
/// exclusive per the RDF 1.1 data model; a plain literal has neither).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A literal value.
    Literal {
        /// The lexical form.
        lexical: String,
        /// Language tag (e.g. `en`), if any.
        lang: Option<String>,
        /// Datatype IRI, if any.
        datatype: Option<String>,
    },
    /// A blank node with its local label (without the `_:` prefix).
    Blank(String),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(iri.into())
    }

    /// Convenience constructor for a plain literal.
    pub fn lit(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: None,
        }
    }

    /// Convenience constructor for an integer literal (`xsd:integer`).
    pub fn int(value: i64) -> Self {
        Term::Literal {
            lexical: value.to_string(),
            lang: None,
            datatype: Some(crate::vocab::XSD_INTEGER.to_string()),
        }
    }

    /// Convenience constructor for a language-tagged literal.
    pub fn lang_lit(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: Some(lang.into()),
            datatype: None,
        }
    }

    /// Returns true if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns true if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// The lexical value of the term: IRI text, literal lexical form, or
    /// blank-node label.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Iri(i) => i,
            Term::Literal { lexical, .. } => lexical,
            Term::Blank(b) => b,
        }
    }

    /// Numeric interpretation of a literal, if its lexical form parses.
    ///
    /// Used by FILTER comparison semantics: numeric comparison is preferred
    /// when both operands are numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.parse().ok(),
            _ => None,
        }
    }

    /// The *authority* (scheme + host) of an IRI, used by the HiBISCuS-style
    /// source-pruning baseline. Returns `None` for non-IRI terms.
    ///
    /// For `http://example.org/a/b` this returns `http://example.org`.
    pub fn authority(&self) -> Option<&str> {
        let Term::Iri(iri) = self else { return None };
        let scheme_end = iri.find("://")?;
        let rest = &iri[scheme_end + 3..];
        let host_end = rest.find('/').unwrap_or(rest.len());
        Some(&iri[..scheme_end + 3 + host_end])
    }
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Literal {
                lexical,
                lang,
                datatype,
            } => {
                write!(f, "\"")?;
                for c in lexical.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")?;
                if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://x.org/a").to_string(), "<http://x.org/a>");
    }

    #[test]
    fn display_plain_literal() {
        assert_eq!(Term::lit("hello").to_string(), "\"hello\"");
    }

    #[test]
    fn display_escapes_quotes_and_backslashes() {
        assert_eq!(Term::lit("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn display_lang_literal() {
        assert_eq!(Term::lang_lit("hi", "en").to_string(), "\"hi\"@en");
    }

    #[test]
    fn display_typed_literal() {
        assert_eq!(
            Term::int(42).to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn display_blank() {
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
    }

    #[test]
    fn numeric_interpretation() {
        assert_eq!(Term::int(7).as_f64(), Some(7.0));
        assert_eq!(Term::lit("3.5").as_f64(), Some(3.5));
        assert_eq!(Term::lit("abc").as_f64(), None);
        assert_eq!(Term::iri("http://x/1").as_f64(), None);
    }

    #[test]
    fn authority_extraction() {
        assert_eq!(
            Term::iri("http://example.org/a/b").authority(),
            Some("http://example.org")
        );
        assert_eq!(
            Term::iri("http://example.org").authority(),
            Some("http://example.org")
        );
        assert_eq!(Term::lit("x").authority(), None);
        assert_eq!(Term::iri("no-scheme").authority(), None);
    }
}
