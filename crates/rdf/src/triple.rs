//! Dictionary-encoded RDF triples.

use crate::dictionary::TermId;

/// A dictionary-encoded RDF triple `(subject, predicate, object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject term id.
    pub s: TermId,
    /// Predicate term id.
    pub p: TermId,
    /// Object term id.
    pub o: TermId,
}

impl Triple {
    /// Creates a triple from its three component ids.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_spo() {
        let t1 = Triple::new(TermId(1), TermId(9), TermId(9));
        let t2 = Triple::new(TermId(2), TermId(0), TermId(0));
        assert!(t1 < t2);
    }
}
