//! `lusail-testkit` — the differential-testing subsystem.
//!
//! Lusail's correctness claim (Theorem 1 in the paper) is that
//! locality-aware decomposition plus bound execution returns exactly the
//! answers a centralized evaluation would. This crate turns that claim
//! into a permanent, seeded, shrinking test harness:
//!
//! 1. [`gen`] synthesizes a random-but-valid SPARQL query
//!    (BGP / FILTER / OPTIONAL / DISTINCT / LIMIT) together with a random
//!    triple set partitioned across 2–6 endpoints with controllable
//!    locality — the `straddle` knob decides how often join instances
//!    cross endpoints, so global join variables actually arise;
//! 2. [`diff`] evaluates the query on a merged single
//!    [`TripleStore`](lusail_store::TripleStore) as the oracle, then runs
//!    Lusail, FedX, HiBISCuS, and SPLENDID over the federation — clean
//!    runs must equal the oracle, faulty runs (seeded
//!    [`FlakyEndpoint`](lusail_endpoint::FlakyEndpoint)s) must stay a
//!    subset of it and may claim completeness only when nothing is
//!    missing;
//! 3. on a mismatch, [`shrink`] greedily reduces the case — data triples,
//!    then query structure, then endpoints — and prints a self-contained
//!    [`Repro`](shrink::Repro) (seed, partition map, query text, fault
//!    plan, Lusail's plan).
//!
//! Entry points: the `tests/differential.rs` tier-1 suite (bounded case
//! count) and the `fuzz` binary (`cargo run -p lusail-testkit --bin fuzz
//! -- --seed 1 --iters 10000`) for long-running exploration.

pub mod diff;
pub mod gen;
pub mod seed;
pub mod shrink;

pub use diff::{
    check, check_backends, check_batched, check_replicated, check_stats, check_trace_invariants,
    check_tuned, observe, oracle_solutions, EngineKind, LusailTuning, Observation, Violation,
};
pub use gen::{Case, FaultSpec, GenConfig};
pub use seed::{parse_seed, seed_from_env, SEED_ENV_VAR};
pub use shrink::{shrink, Repro};

/// Runs one seeded stats-vs-wire differential case end-to-end for one
/// engine (see [`check_stats`]): generate, run with and without offline
/// statistics, compare, and on failure shrink and package the repro.
/// `faulty` draws a *dead-only* fault plan (the only fault family under
/// which probe elision is behavior-invariant — see
/// [`FaultSpec::random_dead_only`]).
pub fn run_stats_case(
    case_seed: u64,
    config: &GenConfig,
    engine: EngineKind,
    faulty: bool,
    threads: usize,
) -> Result<(), Box<Repro>> {
    let case = Case::generate(case_seed, config);
    let faults = if faulty {
        let mut rng = lusail_benchdata::common::Rng::new(case_seed ^ 0xFA17_0000_0000_0002);
        FaultSpec::random_dead_only(&mut rng, case.n_endpoints)
    } else {
        FaultSpec::default()
    };
    match check_stats(&case, engine, &faults, threads) {
        Ok(()) => Ok(()),
        Err(first_violation) => {
            let still_fails =
                |c: &Case, f: &FaultSpec| -> bool { check_stats(c, engine, f, threads).is_err() };
            let (small, small_faults) = shrink(&case, &faults, &still_fails);
            let violation = check_stats(&small, engine, &small_faults, threads)
                .err()
                .unwrap_or(first_violation);
            Err(Box::new(Repro {
                case: small,
                faults: small_faults,
                engine,
                violation,
            }))
        }
    }
}

/// Runs one seeded backend-differential case end-to-end for one engine
/// (see [`check_backends`]): generate, materialize the same federation on
/// the BTree and columnar backends, run both, demand byte-identical
/// observations, and on failure shrink and package the repro. `faulty`
/// draws a full-random fault plan — backend identity must hold under any
/// fault family, since identical request streams see identical fates.
pub fn run_backend_case(
    case_seed: u64,
    config: &GenConfig,
    engine: EngineKind,
    faulty: bool,
    threads: usize,
) -> Result<(), Box<Repro>> {
    let case = Case::generate(case_seed, config);
    let faults = if faulty {
        let mut rng = lusail_benchdata::common::Rng::new(case_seed ^ 0xFA17_0000_0000_0003);
        FaultSpec::random(&mut rng, case.n_endpoints)
    } else {
        FaultSpec::default()
    };
    match check_backends(&case, engine, &faults, threads) {
        Ok(()) => Ok(()),
        Err(first_violation) => {
            let still_fails = |c: &Case, f: &FaultSpec| -> bool {
                check_backends(c, engine, f, threads).is_err()
            };
            let (small, small_faults) = shrink(&case, &faults, &still_fails);
            let violation = check_backends(&small, engine, &small_faults, threads)
                .err()
                .unwrap_or(first_violation);
            Err(Box::new(Repro {
                case: small,
                faults: small_faults,
                engine,
                violation,
            }))
        }
    }
}

/// Runs one seeded batched-vs-solo differential case end-to-end (see
/// [`check_batched`]; only the Lusail engine batches): generate, execute
/// the case's query `window` times solo and once as one MQO batch,
/// compare item-by-item, and on failure shrink and package the repro.
/// `faulty` draws a *dead-only* fault plan — the only fault family
/// invariant under the request elision batching performs (see
/// [`FaultSpec::random_dead_only`]). Returns the batch's
/// [`BatchReport`](lusail_core::BatchReport) so sweeps can assert
/// aggregate sharing coverage.
pub fn run_batched_case(
    case_seed: u64,
    config: &GenConfig,
    faulty: bool,
    window: usize,
    threads: usize,
) -> Result<lusail_core::BatchReport, Box<Repro>> {
    let case = Case::generate(case_seed, config);
    let faults = if faulty {
        let mut rng = lusail_benchdata::common::Rng::new(case_seed ^ 0xFA17_0000_0000_0004);
        FaultSpec::random_dead_only(&mut rng, case.n_endpoints)
    } else {
        FaultSpec::default()
    };
    match check_batched(&case, &faults, window, threads) {
        Ok(report) => Ok(report),
        Err(first_violation) => {
            let still_fails =
                |c: &Case, f: &FaultSpec| -> bool { check_batched(c, f, window, threads).is_err() };
            let (small, small_faults) = shrink(&case, &faults, &still_fails);
            let violation = check_batched(&small, &small_faults, window, threads)
                .err()
                .unwrap_or(first_violation);
            Err(Box::new(Repro {
                case: small,
                faults: small_faults,
                engine: EngineKind::Lusail,
                violation,
            }))
        }
    }
}

/// Runs one seeded case end-to-end for one engine: generate, check, and
/// on failure shrink and package the repro. `faulty` draws a fault plan
/// from the case's own seed stream so the plan is as reproducible as the
/// case.
pub fn run_case(
    case_seed: u64,
    config: &GenConfig,
    engine: EngineKind,
    faulty: bool,
) -> Result<(), Box<Repro>> {
    let case = Case::generate(case_seed, config);
    let faults = if faulty {
        let mut rng = lusail_benchdata::common::Rng::new(case_seed ^ 0xFA17_0000_0000_0001);
        FaultSpec::random(&mut rng, case.n_endpoints)
    } else {
        FaultSpec::default()
    };
    match check(&case, engine, &faults) {
        Ok(()) => Ok(()),
        Err(first_violation) => {
            let still_fails = |c: &Case, f: &FaultSpec| -> bool { check(c, engine, f).is_err() };
            let (small, small_faults) = shrink(&case, &faults, &still_fails);
            let violation = check(&small, engine, &small_faults)
                .err()
                .unwrap_or(first_violation);
            Err(Box::new(Repro {
                case: small,
                faults: small_faults,
                engine,
                violation,
            }))
        }
    }
}
