//! Seed plumbing shared by the workspace's randomized suites.
//!
//! Every randomized test derives its stream from a compiled-in default
//! seed, overridable at run time through the `LUSAIL_TEST_SEED`
//! environment variable — so a failure printed by the differential
//! harness (which reports its seed) replays in the ordinary test suites
//! without recompiling:
//!
//! ```text
//! LUSAIL_TEST_SEED=0xdeadbeef cargo test -q
//! ```

/// The environment variable consulted by [`seed_from_env`].
pub const SEED_ENV_VAR: &str = "LUSAIL_TEST_SEED";

/// Parses a seed written in decimal (`12345`) or hex (`0xdeadbeef`).
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Returns the seed from `LUSAIL_TEST_SEED` when set (panicking on an
/// unparsable value — a silently ignored override would be worse), or
/// `default` otherwise.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var(SEED_ENV_VAR) {
        Ok(s) => parse_seed(&s)
            .unwrap_or_else(|| panic!("{SEED_ENV_VAR}={s:?} is not a decimal or 0x-hex u64")),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 42 "), Some(42));
        assert_eq!(parse_seed("0xA1"), Some(0xA1));
        assert_eq!(parse_seed("0Xdeadbeef"), Some(0xdead_beef));
        assert_eq!(parse_seed("zzz"), None);
        assert_eq!(parse_seed("0x"), None);
        assert_eq!(parse_seed(""), None);
    }
}
