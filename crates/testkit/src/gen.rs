//! Seeded generation of differential-test cases: a random-but-valid
//! SPARQL query plus a random triple set partitioned across endpoints.
//!
//! Everything is derived from a single `u64` seed through SplitMix64
//! ([`Rng`]), so a case reproduces bit-for-bit from its seed alone on any
//! platform. The partitioner assigns every *entity* a home endpoint and
//! stores all of an entity's triples there — the decentralized-RDF
//! assumption Lusail's locality checks rely on (see DESIGN.md, "Soundness
//! assumptions"). The `straddle` knob controls how often an object
//! reference points at an entity homed on a *different* endpoint; those
//! interlinks are exactly what makes global join variables arise.

use lusail_benchdata::common::Rng;
use lusail_endpoint::{FaultProfile, Federation, LocalEndpoint, SparqlEndpoint};
use lusail_rdf::{Dictionary, Term, Triple};
use lusail_sparql::ast::{
    CmpOp, Expression, GroupPattern, PatternTerm, Query, QueryForm, TriplePattern,
};
use lusail_store::TripleStore;
use std::sync::Arc;

/// Shape parameters for case generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Endpoints per federation are drawn from `2..=max_endpoints`.
    pub max_endpoints: usize,
    /// Entity pool size (`http://fuzz/e0` … `e{n-1}`).
    pub entities: usize,
    /// Link predicate pool size (`http://fuzz/p0` … ).
    pub link_preds: usize,
    /// Triples per case are drawn from `1..=max_triples`.
    pub max_triples: usize,
    /// Probability an object reference targets an entity homed at a
    /// *different* endpoint (an interlink). `0.0` keeps every join
    /// instance co-located; higher values force cross-endpoint joins.
    pub straddle: f64,
    /// Triple patterns per query are drawn from `1..=max_patterns`.
    pub max_patterns: usize,
    /// Probability the query carries a FILTER.
    pub p_filter: f64,
    /// Probability the query carries an OPTIONAL group.
    pub p_optional: f64,
    /// Probability the query carries a LIMIT.
    pub p_limit: f64,
    /// Probability of `SELECT DISTINCT`.
    pub p_distinct: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_endpoints: 6,
            entities: 14,
            link_preds: 3,
            max_triples: 48,
            straddle: 0.5,
            max_patterns: 4,
            p_filter: 0.35,
            p_optional: 0.3,
            p_limit: 0.2,
            p_distinct: 0.3,
        }
    }
}

/// Which faults (if any) a case's federation injects.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// One entry per endpoint; `None` leaves the endpoint healthy.
    pub profiles: Vec<Option<FaultProfile>>,
}

impl FaultSpec {
    /// True when no endpoint misbehaves.
    pub fn is_clean(&self) -> bool {
        self.profiles.iter().all(|p| p.is_none())
    }

    /// Draws a fault plan for `n_endpoints` endpoints: each endpoint is
    /// flaky with probability ½ (at least one always is), and with small
    /// probability one endpoint is permanently dead.
    pub fn random(rng: &mut Rng, n_endpoints: usize) -> FaultSpec {
        let mut profiles: Vec<Option<FaultProfile>> = (0..n_endpoints)
            .map(|_| {
                rng.chance(0.5).then(|| {
                    let rate = 0.05 + (rng.below(100) as f64) / 400.0; // 5%–30%
                    FaultProfile::transient(rng.next_u64(), rate)
                })
            })
            .collect();
        if profiles.iter().all(|p| p.is_none()) {
            profiles[0] = Some(FaultProfile::transient(rng.next_u64(), 0.2));
        }
        if rng.chance(0.15) {
            let victim = rng.below(n_endpoints);
            profiles[victim] = Some(FaultProfile::dead());
        }
        FaultSpec { profiles }
    }

    /// Draws a *dead-only* fault plan: each endpoint is either healthy or
    /// permanently dead (at least one of each when `n_endpoints > 1`).
    /// Unlike [`FaultSpec::random`], no endpoint is transiently flaky —
    /// transient fates are drawn per request *index*, so a plan
    /// containing them is not invariant under probe elision. Dead-only
    /// plans are: a dead endpoint fails every request whether or not
    /// earlier probes were skipped, which is what lets the stats-vs-wire
    /// differential (`check_stats`) demand byte-identical solutions
    /// under faults.
    pub fn random_dead_only(rng: &mut Rng, n_endpoints: usize) -> FaultSpec {
        let mut profiles: Vec<Option<FaultProfile>> = (0..n_endpoints)
            .map(|_| rng.chance(0.35).then(FaultProfile::dead))
            .collect();
        if profiles.iter().all(|p| p.is_none()) {
            profiles[rng.below(n_endpoints)] = Some(FaultProfile::dead());
        }
        if n_endpoints > 1 && profiles.iter().all(|p| p.is_some()) {
            profiles[rng.below(n_endpoints)] = None;
        }
        FaultSpec { profiles }
    }

    /// Draws a *primary-kill* plan for a federation of `n_endpoints`
    /// logical endpoints replicated `replication` times. Profiles are
    /// indexed by final endpoint id (see
    /// [`Case::replicated_federation`]): only primaries (ids
    /// `0..n_endpoints`) are ever killed — dead outright or dying after
    /// serving a few requests — and at least one is. Replicas stay
    /// healthy, so every group keeps a live member and failover must be
    /// able to absorb every kill.
    pub fn random_primary_kill(rng: &mut Rng, n_endpoints: usize, replication: usize) -> FaultSpec {
        let mut profiles: Vec<Option<FaultProfile>> = vec![None; n_endpoints * replication];
        for slot in profiles.iter_mut().take(n_endpoints) {
            if rng.chance(0.5) {
                *slot = Some(if rng.chance(0.5) {
                    FaultProfile::dead()
                } else {
                    FaultProfile::dies_after(1 + rng.below(6) as u64)
                });
            }
        }
        if profiles[..n_endpoints].iter().all(|p| p.is_none()) {
            let victim = rng.below(n_endpoints);
            profiles[victim] = Some(FaultProfile::dies_after(1 + rng.below(6) as u64));
        }
        FaultSpec { profiles }
    }
}

/// A fully materialized test case: the data, its partition, and the query.
///
/// Invariant (preserved by generation *and* shrinking): all triples of one
/// subject live at one endpoint, i.e. `homes[i]` is a function of
/// `triples[i].s`.
#[derive(Clone)]
pub struct Case {
    /// The seed this case was generated from (kept for repro printing).
    pub seed: u64,
    /// The shared term dictionary.
    pub dict: Arc<Dictionary>,
    /// The generated triples (deduplicated).
    pub triples: Vec<Triple>,
    /// Home endpoint of each triple, parallel to `triples`.
    pub homes: Vec<usize>,
    /// Number of endpoints in the federation.
    pub n_endpoints: usize,
    /// The query under test.
    pub query: Query,
}

impl Case {
    /// Generates the case for `seed` under `config`.
    pub fn generate(seed: u64, config: &GenConfig) -> Case {
        let mut rng = Rng::new(seed);
        let dict = Dictionary::shared();
        let n_endpoints = 2 + rng.below(config.max_endpoints.max(2) - 1);

        let entity =
            |i: usize, dict: &Dictionary| dict.encode(&Term::iri(format!("http://fuzz/e{i}")));
        let link =
            |i: usize, dict: &Dictionary| dict.encode(&Term::iri(format!("http://fuzz/p{i}")));
        let value_pred = dict.encode(&Term::iri("http://fuzz/value"));

        // Every entity gets a home endpoint; all its triples live there.
        let homes_of_entities: Vec<usize> = (0..config.entities)
            .map(|_| rng.below(n_endpoints))
            .collect();

        let mut seen = lusail_rdf::FxHashSet::default();
        let mut triples = Vec::new();
        let mut homes = Vec::new();
        for _ in 0..1 + rng.below(config.max_triples) {
            let s = rng.below(config.entities);
            let (p, o) = if rng.chance(0.25) {
                (value_pred, dict.encode(&Term::int(rng.below(50) as i64)))
            } else {
                let want_straddle = rng.chance(config.straddle);
                let candidates: Vec<usize> = (0..config.entities)
                    .filter(|&e| (homes_of_entities[e] != homes_of_entities[s]) == want_straddle)
                    .collect();
                let target = if candidates.is_empty() {
                    rng.below(config.entities)
                } else {
                    candidates[rng.below(candidates.len())]
                };
                (
                    link(rng.below(config.link_preds), &dict),
                    entity(target, &dict),
                )
            };
            let t = Triple::new(entity(s, &dict), p, o);
            if seen.insert(t) {
                triples.push(t);
                homes.push(homes_of_entities[s]);
            }
        }

        let query = gen_query(&mut rng, config, &dict);
        Case {
            seed,
            dict,
            triples,
            homes,
            n_endpoints,
            query,
        }
    }

    /// Builds the per-endpoint stores. Endpoint `i` holds every triple
    /// with `homes == i` (possibly none — empty endpoints are legal).
    pub fn stores(&self) -> Vec<TripleStore> {
        let mut stores: Vec<TripleStore> = (0..self.n_endpoints)
            .map(|_| TripleStore::new(Arc::clone(&self.dict)))
            .collect();
        for (t, &h) in self.triples.iter().zip(&self.homes) {
            stores[h].insert(*t);
        }
        stores
    }

    /// The merged single-store oracle: the union of all endpoint data.
    pub fn oracle(&self) -> TripleStore {
        let mut all = TripleStore::new(Arc::clone(&self.dict));
        for t in &self.triples {
            all.insert(*t);
        }
        all
    }

    /// Builds the federation, optionally wrapping endpoints in
    /// [`FlakyEndpoint`](lusail_endpoint::FlakyEndpoint)s per `faults`.
    /// Also returns the plain [`LocalEndpoint`] handles (the index-building
    /// baselines preprocess endpoint data directly, bypassing faults — an
    /// index is built offline, before the network gets a say).
    pub fn federation(&self, faults: &FaultSpec) -> (Federation, Vec<Arc<LocalEndpoint>>) {
        self.federation_on(faults, lusail_store::BackendKind::Btree)
    }

    /// [`Case::federation`] with the endpoints' stores materialized into
    /// the chosen storage backend (the backend-differential oracle builds
    /// the same case once per backend).
    pub fn federation_on(
        &self,
        faults: &FaultSpec,
        backend: lusail_store::BackendKind,
    ) -> (Federation, Vec<Arc<LocalEndpoint>>) {
        let mut builder = Federation::builder(Arc::clone(&self.dict));
        let mut locals = Vec::with_capacity(self.n_endpoints);
        for (i, store) in self.stores().into_iter().enumerate() {
            let ep = Arc::new(LocalEndpoint::on_backend(
                format!("ep{i}"),
                store,
                backend,
                Default::default(),
            ));
            builder = builder.custom(Arc::clone(&ep) as Arc<dyn SparqlEndpoint>);
            if let Some(profile) = faults.profiles.get(i).copied().flatten() {
                builder = builder.faults(profile);
            }
            locals.push(ep);
        }
        (builder.build(), locals)
    }

    /// Builds the federation with every endpoint replicated `replication`
    /// times. Primaries keep ids `0..n_endpoints` (so an unreplicated
    /// federation is id-identical); copy `k ≥ 1` of endpoint `i` gets id
    /// `k * n_endpoints + i` and serves the same partition.
    /// `faults.profiles` is indexed by *final* endpoint id, so a plan can
    /// kill primaries, replicas, or whole groups. Returns the primaries'
    /// plain handles for the index-building baselines (indices cover
    /// logical sources only; replicas hold no data of their own).
    pub fn replicated_federation(
        &self,
        faults: &FaultSpec,
        replication: usize,
    ) -> (Federation, Vec<Arc<LocalEndpoint>>) {
        assert!(replication >= 1, "replication must be at least 1");
        let mut builder = Federation::builder(Arc::clone(&self.dict));
        let mut locals = Vec::with_capacity(self.n_endpoints);
        for (i, store) in self.stores().into_iter().enumerate() {
            let ep = Arc::new(LocalEndpoint::new(format!("ep{i}"), store));
            builder = builder.custom(Arc::clone(&ep) as Arc<dyn SparqlEndpoint>);
            if let Some(profile) = faults.profiles.get(i).copied().flatten() {
                builder = builder.faults(profile);
            }
            locals.push(ep);
        }
        for k in 1..replication {
            for (i, store) in self.stores().into_iter().enumerate() {
                let id = k * self.n_endpoints + i;
                let ep = Arc::new(LocalEndpoint::new(format!("ep{i}r{k}"), store));
                builder = builder
                    .custom(ep as Arc<dyn SparqlEndpoint>)
                    .replica_of(format!("ep{i}"));
                if let Some(profile) = faults.profiles.get(id).copied().flatten() {
                    builder = builder.faults(profile);
                }
            }
        }
        (builder.build(), locals)
    }
}

/// Variable roles, tracked so filters compare values and joins reuse
/// entity variables.
struct QueryVars {
    entity: Vec<String>,
    value: Vec<String>,
    next: usize,
}

impl QueryVars {
    fn fresh(&mut self) -> String {
        let v = format!("v{}", self.next);
        self.next += 1;
        v
    }

    fn fresh_entity(&mut self) -> String {
        let v = self.fresh();
        self.entity.push(v.clone());
        v
    }

    fn fresh_value(&mut self) -> String {
        let v = self.fresh();
        self.value.push(v.clone());
        v
    }

    fn pick_entity(&self, rng: &mut Rng) -> String {
        self.entity[rng.below(self.entity.len())].clone()
    }
}

/// Generates a random-but-valid SELECT query over the case vocabulary:
/// a connected BGP (every pattern shares a variable with an earlier one),
/// optionally a FILTER, an OPTIONAL group, DISTINCT, a projection, and a
/// LIMIT.
fn gen_query(rng: &mut Rng, config: &GenConfig, dict: &Dictionary) -> Query {
    let entity = |i: usize| dict.encode(&Term::iri(format!("http://fuzz/e{i}")));
    let link = |i: usize| dict.encode(&Term::iri(format!("http://fuzz/p{i}")));
    let value_pred = dict.encode(&Term::iri("http://fuzz/value"));

    let mut vars = QueryVars {
        entity: Vec::new(),
        value: Vec::new(),
        next: 0,
    };
    let mut patterns: Vec<TriplePattern> = Vec::new();
    let n_patterns = 1 + rng.below(config.max_patterns);
    for i in 0..n_patterns {
        // First pattern introduces the seed variable; later patterns join
        // on an existing entity variable so the BGP stays connected.
        let (s, reuse_at_object) = if i == 0 {
            (PatternTerm::Var(vars.fresh_entity()), false)
        } else if rng.chance(0.35) {
            (PatternTerm::Var(vars.fresh_entity()), true)
        } else {
            (PatternTerm::Var(vars.pick_entity(rng)), false)
        };
        let (p, o) = if reuse_at_object || !rng.chance(0.25) {
            // Link pattern. Object: the join variable when reusing at the
            // object position, else a fresh variable, a known entity
            // constant, or (rarely) an existing variable to close a cycle.
            let obj = if reuse_at_object {
                PatternTerm::Var(vars.pick_entity(rng))
            } else if rng.chance(0.2) {
                PatternTerm::Const(entity(rng.below(config.entities)))
            } else if rng.chance(0.15) && vars.entity.len() > 1 {
                PatternTerm::Var(vars.pick_entity(rng))
            } else {
                PatternTerm::Var(vars.fresh_entity())
            };
            (PatternTerm::Const(link(rng.below(config.link_preds))), obj)
        } else {
            // Value pattern: `?s <value> ?v` with a numeric object.
            (
                PatternTerm::Const(value_pred),
                PatternTerm::Var(vars.fresh_value()),
            )
        };
        patterns.push(TriplePattern::new(s, p, o));
    }

    let mut pattern = GroupPattern::bgp(patterns);

    if rng.chance(config.p_filter) {
        if !vars.value.is_empty() {
            let v = vars.value[rng.below(vars.value.len())].clone();
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Ne][rng.below(5)];
            pattern.filters.push(Expression::Cmp(
                op,
                Box::new(Expression::Var(v)),
                Box::new(Expression::Const(
                    dict.encode(&Term::int(rng.below(50) as i64)),
                )),
            ));
        } else if vars.entity.len() >= 2 {
            let a = vars.entity[0].clone();
            let b = vars.entity[vars.entity.len() - 1].clone();
            pattern.filters.push(Expression::Cmp(
                CmpOp::Ne,
                Box::new(Expression::Var(a)),
                Box::new(Expression::Var(b)),
            ));
        }
    }

    if rng.chance(config.p_optional) {
        let join = vars.pick_entity(rng);
        let obj = if rng.chance(0.3) {
            PatternTerm::Var(vars.fresh_value())
        } else {
            PatternTerm::Var(vars.fresh_entity())
        };
        let p = if matches!(obj, PatternTerm::Var(ref v) if vars.value.contains(v)) {
            value_pred
        } else {
            link(rng.below(config.link_preds))
        };
        pattern
            .optionals
            .push(GroupPattern::bgp(vec![TriplePattern::new(
                PatternTerm::Var(join),
                PatternTerm::Const(p),
                obj,
            )]));
    }

    let mut query = Query::select_all(pattern);
    query.form = QueryForm::Select;
    query.distinct = rng.chance(config.p_distinct);
    if rng.chance(0.3) {
        // Project a nonempty random subset of the pattern variables.
        let all = query.pattern.all_vars();
        let projection: Vec<String> = all.iter().filter(|_| rng.chance(0.5)).cloned().collect();
        if !projection.is_empty() {
            query.projection = projection;
        }
    }
    if rng.chance(config.p_limit) {
        query.limit = Some(1 + rng.below(6));
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::{parse_query, write_query};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..32 {
            let a = Case::generate(seed, &cfg);
            let b = Case::generate(seed, &cfg);
            assert_eq!(a.triples, b.triples, "seed {seed}");
            assert_eq!(a.homes, b.homes, "seed {seed}");
            assert_eq!(a.n_endpoints, b.n_endpoints, "seed {seed}");
            assert_eq!(
                write_query(&a.query, &a.dict),
                write_query(&b.query, &b.dict),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generated_queries_roundtrip_through_the_parser() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let case = Case::generate(seed, &cfg);
            let text = write_query(&case.query, &case.dict);
            let reparsed = parse_query(&text, &case.dict).unwrap_or_else(|e| {
                panic!("seed {seed}: generated query does not parse: {e}\n{text}")
            });
            assert_eq!(case.query, reparsed, "seed {seed}: {text}");
        }
    }

    #[test]
    fn partition_is_by_subject() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let case = Case::generate(seed, &cfg);
            let mut home_of: lusail_rdf::FxHashMap<lusail_rdf::TermId, usize> =
                lusail_rdf::FxHashMap::default();
            for (t, &h) in case.triples.iter().zip(&case.homes) {
                let prev = home_of.insert(t.s, h);
                assert!(
                    prev.is_none() || prev == Some(h),
                    "seed {seed}: subject split across endpoints"
                );
            }
        }
    }

    #[test]
    fn straddle_zero_keeps_links_local() {
        let cfg = GenConfig {
            straddle: 0.0,
            ..GenConfig::default()
        };
        // With straddle 0 every *link* object should be homed with its
        // subject whenever a co-located candidate exists; we only assert
        // the aggregate effect: far fewer interlinks than straddle 1.
        let interlinks = |straddle: f64| -> usize {
            let cfg = GenConfig {
                straddle,
                ..cfg.clone()
            };
            (0..40)
                .map(|seed| {
                    let case = Case::generate(seed, &cfg);
                    let mut home_of: lusail_rdf::FxHashMap<lusail_rdf::TermId, usize> =
                        lusail_rdf::FxHashMap::default();
                    for (t, &h) in case.triples.iter().zip(&case.homes) {
                        home_of.insert(t.s, h);
                    }
                    case.triples
                        .iter()
                        .zip(&case.homes)
                        .filter(|(t, &h)| home_of.get(&t.o).is_some_and(|&oh| oh != h))
                        .count()
                })
                .sum()
        };
        assert!(interlinks(0.0) < interlinks(1.0));
    }

    #[test]
    fn replicated_federation_keeps_primary_ids_and_appends_replicas() {
        let case = Case::generate(3, &GenConfig::default());
        let (plain, _) = case.federation(&FaultSpec::default());
        let (fed, locals) = case.replicated_federation(&FaultSpec::default(), 2);
        assert_eq!(locals.len(), case.n_endpoints);
        assert_eq!(fed.len(), case.n_endpoints * 2);
        assert_eq!(fed.logical_ids(), plain.all_ids());
        for i in 0..case.n_endpoints {
            assert_eq!(fed.endpoint(i).name(), format!("ep{i}"));
            let replica = case.n_endpoints + i;
            assert_eq!(fed.endpoint(replica).name(), format!("ep{i}r1"));
            assert_eq!(fed.primary_of(replica), i);
            assert_eq!(
                fed.endpoint(replica).triple_count(),
                fed.endpoint(i).triple_count()
            );
        }
    }

    #[test]
    fn primary_kill_plans_never_touch_replicas() {
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            let spec = FaultSpec::random_primary_kill(&mut rng, 4, 2);
            assert_eq!(spec.profiles.len(), 8);
            assert!(spec.profiles[..4].iter().any(|p| p.is_some()));
            assert!(spec.profiles[4..].iter().all(|p| p.is_none()));
            assert!(!spec.is_clean());
        }
    }

    #[test]
    fn fault_spec_always_injects_something() {
        let mut rng = Rng::new(7);
        for _ in 0..50 {
            let spec = FaultSpec::random(&mut rng, 4);
            assert!(!spec.is_clean());
            assert_eq!(spec.profiles.len(), 4);
        }
    }
}
