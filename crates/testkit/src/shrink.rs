//! Greedy shrinking of failing differential cases, and self-contained
//! repro printing.
//!
//! Shrinking proceeds in the order the ISSUE prescribes — data triples
//! first, then query structure, then endpoints — because a smaller
//! *dataset* usually collapses the query and topology reductions for
//! free. Every reduction preserves the generator's invariant that a
//! subject's triples live at a single endpoint (endpoints shrink by
//! *merging*, never by splitting an adjacency list).

use crate::diff::{EngineKind, Violation};
use crate::gen::{Case, FaultSpec};
use lusail_sparql::write_query;
use std::fmt;

/// Upper bound on predicate evaluations per shrink run, so a pathological
/// case cannot wedge CI. Greedy passes stop early when the budget runs
/// out; the partially shrunk case is still printed.
const MAX_CHECKS: usize = 2000;

/// Shrinks `(case, faults)` while `still_fails` keeps returning `true`.
/// Returns the smallest failing pair found.
pub fn shrink(
    case: &Case,
    faults: &FaultSpec,
    still_fails: &dyn Fn(&Case, &FaultSpec) -> bool,
) -> (Case, FaultSpec) {
    let mut cur = case.clone();
    let mut cur_faults = faults.clone();
    let mut budget = MAX_CHECKS;
    loop {
        let mut progress = false;
        progress |= shrink_triples(&mut cur, &cur_faults, still_fails, &mut budget);
        progress |= shrink_query(&mut cur, &cur_faults, still_fails, &mut budget);
        progress |= shrink_endpoints(&mut cur, &mut cur_faults, still_fails, &mut budget);
        if !progress || budget == 0 {
            return (cur, cur_faults);
        }
    }
}

fn try_accept(
    cur: &mut Case,
    candidate: Case,
    faults: &FaultSpec,
    still_fails: &dyn Fn(&Case, &FaultSpec) -> bool,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    if still_fails(&candidate, faults) {
        *cur = candidate;
        true
    } else {
        false
    }
}

/// Level 1: drop data triples one at a time (highest index first, so
/// removals don't disturb pending indices).
fn shrink_triples(
    cur: &mut Case,
    faults: &FaultSpec,
    still_fails: &dyn Fn(&Case, &FaultSpec) -> bool,
    budget: &mut usize,
) -> bool {
    let mut progress = false;
    let mut i = cur.triples.len();
    while i > 0 {
        i -= 1;
        let mut candidate = cur.clone();
        candidate.triples.remove(i);
        candidate.homes.remove(i);
        if try_accept(cur, candidate, faults, still_fails, budget) {
            progress = true;
        }
    }
    progress
}

/// Level 2: simplify the query — drop triple patterns (keeping at least
/// one), optional groups, filters, and the DISTINCT / LIMIT / projection
/// modifiers.
fn shrink_query(
    cur: &mut Case,
    faults: &FaultSpec,
    still_fails: &dyn Fn(&Case, &FaultSpec) -> bool,
    budget: &mut usize,
) -> bool {
    let mut progress = false;
    let mut i = cur.query.pattern.triples.len();
    while i > 0 && cur.query.pattern.triples.len() > 1 {
        i -= 1;
        if i >= cur.query.pattern.triples.len() {
            continue;
        }
        let mut candidate = cur.clone();
        candidate.query.pattern.triples.remove(i);
        if try_accept(cur, candidate, faults, still_fails, budget) {
            progress = true;
        }
    }
    let mut i = cur.query.pattern.optionals.len();
    while i > 0 {
        i -= 1;
        let mut candidate = cur.clone();
        candidate.query.pattern.optionals.remove(i);
        if try_accept(cur, candidate, faults, still_fails, budget) {
            progress = true;
        }
    }
    let mut i = cur.query.pattern.filters.len();
    while i > 0 {
        i -= 1;
        let mut candidate = cur.clone();
        candidate.query.pattern.filters.remove(i);
        if try_accept(cur, candidate, faults, still_fails, budget) {
            progress = true;
        }
    }
    if cur.query.limit.is_some() {
        let mut candidate = cur.clone();
        candidate.query.limit = None;
        progress |= try_accept(cur, candidate, faults, still_fails, budget);
    }
    if cur.query.distinct {
        let mut candidate = cur.clone();
        candidate.query.distinct = false;
        progress |= try_accept(cur, candidate, faults, still_fails, budget);
    }
    if !cur.query.projection.is_empty() {
        let mut candidate = cur.clone();
        candidate.query.projection.clear();
        progress |= try_accept(cur, candidate, faults, still_fails, budget);
    }
    progress
}

/// Level 3: merge endpoints away (endpoint `e` folds into endpoint 0),
/// shrinking the federation topology while keeping every subject's
/// adjacency list intact.
fn shrink_endpoints(
    cur: &mut Case,
    faults: &mut FaultSpec,
    still_fails: &dyn Fn(&Case, &FaultSpec) -> bool,
    budget: &mut usize,
) -> bool {
    let mut progress = false;
    let mut e = cur.n_endpoints;
    while e > 1 && cur.n_endpoints > 2 {
        e -= 1;
        if e >= cur.n_endpoints {
            continue;
        }
        let mut candidate = cur.clone();
        for h in &mut candidate.homes {
            if *h == e {
                *h = 0;
            } else if *h > e {
                *h -= 1;
            }
        }
        candidate.n_endpoints -= 1;
        let mut cand_faults = faults.clone();
        if e < cand_faults.profiles.len() {
            cand_faults.profiles.remove(e);
        }
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        if still_fails(&candidate, &cand_faults) {
            *cur = candidate;
            *faults = cand_faults;
            progress = true;
        }
    }
    progress
}

/// A self-contained description of a failing (usually shrunk) case:
/// everything needed to reproduce it without the generator — the seed,
/// the query text, the exact partition map, the fault plan, and Lusail's
/// compile-time plan for the query as a diagnostic.
pub struct Repro {
    /// The failing case (after shrinking).
    pub case: Case,
    /// The fault plan active when the violation was observed.
    pub faults: FaultSpec,
    /// The engine that disagreed with the oracle.
    pub engine: EngineKind,
    /// What went wrong.
    pub violation: Violation,
}

impl fmt::Display for Repro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let case = &self.case;
        writeln!(f, "=== differential-test repro ===")?;
        writeln!(f, "engine:    {}", self.engine.name())?;
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(
            f,
            "seed:      {:#x}  (original, pre-shrink case)",
            case.seed
        )?;
        writeln!(f, "query:     {}", write_query(&case.query, &case.dict))?;
        writeln!(f, "partition map ({} endpoints):", case.n_endpoints)?;
        for ep in 0..case.n_endpoints {
            let fault = match self.faults.profiles.get(ep).copied().flatten() {
                Some(p) if p.dead => "  [DEAD]".to_string(),
                Some(p) => format!(
                    "  [flaky: fail {:.0}% / seed {:#x}]",
                    p.failure_rate * 100.0,
                    p.seed
                ),
                None => String::new(),
            };
            writeln!(f, "  ep{ep}:{fault}")?;
            for (t, &h) in case.triples.iter().zip(&case.homes) {
                if h == ep {
                    writeln!(
                        f,
                        "    {} {} {} .",
                        case.dict.decode(t.s),
                        case.dict.decode(t.p),
                        case.dict.decode(t.o)
                    )?;
                }
            }
        }
        // Lusail's compile-time plan over the (fault-free) federation: the
        // decomposition and delay decisions the mediator would make.
        let (fed, _) = case.federation(&FaultSpec::default());
        let plan = lusail_core::Lusail::default().explain(&fed, &case.query);
        writeln!(f, "lusail plan:")?;
        for line in plan.render().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(
            f,
            "rerun:     LUSAIL_TEST_SEED={:#x} cargo test -q differential  # or:",
            case.seed
        )?;
        write!(
            f,
            "           cargo run -p lusail-testkit --bin fuzz -- --case-seed {:#x}",
            case.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    /// A fake "bug": the case fails whenever the dataset still contains a
    /// triple with predicate p0 AND one with p1, the query has ≥1 pattern,
    /// and ≥2 endpoints remain. The shrinker must find a near-minimal
    /// witness (2 triples, 1 pattern, 2 endpoints).
    #[test]
    fn shrinker_reaches_a_minimal_witness() {
        let cfg = GenConfig::default();
        let dict_probe = |case: &Case, name: &str| {
            case.dict
                .lookup(&lusail_rdf::Term::iri(format!("http://fuzz/{name}")))
        };
        let predicate = |case: &Case, _f: &FaultSpec| -> bool {
            let p0 = dict_probe(case, "p0");
            let p1 = dict_probe(case, "p1");
            let has = |p: Option<lusail_rdf::TermId>| {
                p.is_some_and(|p| case.triples.iter().any(|t| t.p == p))
            };
            has(p0) && has(p1) && !case.query.pattern.triples.is_empty() && case.n_endpoints >= 2
        };
        // Find a seed whose generated case trips the fake bug.
        let mut shrunk_any = false;
        for seed in 0..50u64 {
            let case = Case::generate(seed, &cfg);
            let faults = FaultSpec::default();
            if !predicate(&case, &faults) {
                continue;
            }
            let (small, _) = shrink(&case, &faults, &predicate);
            assert!(predicate(&small, &faults), "shrink lost the failure");
            assert!(
                small.triples.len() <= 2,
                "seed {seed}: expected ≤2 triples, got {}",
                small.triples.len()
            );
            assert_eq!(small.query.pattern.triples.len(), 1, "seed {seed}");
            assert_eq!(small.n_endpoints, 2, "seed {seed}");
            shrunk_any = true;
            break;
        }
        assert!(shrunk_any, "no seed in 0..50 tripped the fake bug");
    }

    #[test]
    fn repro_printing_is_self_contained() {
        let case = Case::generate(3, &GenConfig::default());
        let repro = Repro {
            faults: FaultSpec::default(),
            engine: EngineKind::Lusail,
            violation: Violation::Mismatch { got: 0, want: 1 },
            case,
        };
        let text = repro.to_string();
        assert!(text.contains("differential-test repro"));
        assert!(text.contains("seed:"));
        assert!(text.contains("partition map"));
        assert!(text.contains("lusail plan:"));
        assert!(text.contains("--bin fuzz"));
        assert!(text.contains("SELECT"));
    }
}
