//! Differential execution: every federated engine against the merged
//! single-store oracle.
//!
//! * **Clean mode** (no faults): the engine's solutions must equal the
//!   centralized evaluation exactly (multiset equality after
//!   canonicalization). `LIMIT k` is the one modifier without a unique
//!   answer — any `k` oracle rows are correct — so limited queries are
//!   checked as *oracle-subset of the un-limited result* plus the exact
//!   row count `min(k, |oracle|)`.
//! * **Faulty mode**: endpoints misbehave, so rows may legitimately go
//!   missing. The contract is honesty: every reported row is backed by an
//!   oracle row (exactly, or — in an outcome flagged incomplete — by
//!   subsumption, where variables bound only inside a lost OPTIONAL group
//!   may come back unbound), and an outcome flagged `complete` must be
//!   indistinguishable from a clean run.

use crate::gen::{Case, FaultSpec};
use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_core::{Lusail, LusailConfig, QueryTrace, RequestKind, TraceSink};
use lusail_endpoint::{ExecOptions, FederatedEngine, LocalEndpoint, RequestPolicy, StatsSnapshot};
use lusail_sparql::SolutionSet;
use std::sync::Arc;
use std::time::Duration;

/// The four engines under differential test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The Lusail engine (LADE + SAPE).
    Lusail,
    /// The FedX baseline (exclusive groups + bound joins).
    FedX,
    /// The HiBISCuS baseline (authority-based source pruning over FedX).
    Hibiscus,
    /// The SPLENDID baseline (VOID statistics + DP join ordering).
    Splendid,
}

impl EngineKind {
    /// All four engines.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Lusail,
        EngineKind::FedX,
        EngineKind::Hibiscus,
        EngineKind::Splendid,
    ];

    /// The engine's display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Lusail => "Lusail",
            EngineKind::FedX => "FedX",
            EngineKind::Hibiscus => "HiBISCuS",
            EngineKind::Splendid => "SPLENDID",
        }
    }

    /// Parses a `--engine` argument (case-insensitive).
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Instantiates the engine. The index-building baselines preprocess
    /// the given endpoint handles (their offline phase sees clean data
    /// even when the federation injects faults at query time).
    pub fn build(
        self,
        endpoints: &[Arc<LocalEndpoint>],
        policy: RequestPolicy,
    ) -> Box<dyn FederatedEngine> {
        self.build_tuned(endpoints, policy, None)
    }

    /// [`EngineKind::build`] with an optional Lusail tuning override
    /// (ignored by the baselines, which have no equivalent knobs).
    pub fn build_tuned(
        self,
        endpoints: &[Arc<LocalEndpoint>],
        policy: RequestPolicy,
        tuning: Option<LusailTuning>,
    ) -> Box<dyn FederatedEngine> {
        let refs: Vec<&LocalEndpoint> = endpoints.iter().map(|e| e.as_ref()).collect();
        match self {
            EngineKind::Lusail => {
                let config = match tuning {
                    Some(t) => LusailConfig {
                        block_size: t.block_size,
                        adaptive_values: t.adaptive_values,
                        ..LusailConfig::default()
                    },
                    None => LusailConfig::default(),
                };
                Box::new(Lusail::new(config).with_policy(policy))
            }
            EngineKind::FedX => Box::new(FedX::default().with_policy(policy)),
            EngineKind::Hibiscus => {
                Box::new(HiBisCus::new(HibiscusIndex::build(&refs)).with_policy(policy))
            }
            EngineKind::Splendid => {
                Box::new(Splendid::new(VoidIndex::build(&refs)).with_policy(policy))
            }
        }
    }
}

/// Lusail execution-tuning overrides for differential runs: a tiny
/// `block_size` forces real `VALUES` batching (and, with
/// `adaptive_values`, the adaptive sizer's probe-then-scale path) even on
/// the small generated cases, so the batching machinery is exercised
/// under the oracle contract rather than skipped for fitting in one block.
#[derive(Debug, Clone, Copy)]
pub struct LusailTuning {
    /// Bindings per `VALUES` block (probe-block size when adaptive).
    pub block_size: usize,
    /// Enable adaptive block sizing.
    pub adaptive_values: bool,
}

/// The ways a differential run can disagree with the oracle.
#[derive(Debug, Clone)]
pub enum Violation {
    /// Clean run: the multiset of solutions differs from the oracle's.
    Mismatch {
        /// Rows the engine returned (canonicalized).
        got: usize,
        /// Rows the oracle returned (canonicalized).
        want: usize,
    },
    /// `LIMIT k`: wrong number of rows (must be `min(k, |oracle|)`).
    WrongLimitCount {
        /// Rows the engine returned.
        got: usize,
        /// The required count.
        want: usize,
    },
    /// A returned row does not appear in the oracle result at all.
    SpuriousRow {
        /// Rendered binding row.
        row: String,
    },
    /// The outcome claimed `complete` although rows are missing.
    FalseComplete {
        /// Rows the engine returned.
        got: usize,
        /// Rows the oracle returned.
        want: usize,
    },
    /// The engine returned a federation-level error on a legal input.
    EngineError(String),
    /// Trace invariant: the summed wire attempts of one request kind in
    /// the trace disagree with the federation's request counters.
    TraceRequestMismatch {
        /// The request-kind label (`ask`, `count`, or `select+check`).
        kind: &'static str,
        /// Wire attempts summed over the trace's request events.
        trace_attempts: u64,
        /// Requests the federation counters recorded.
        stats_requests: u64,
    },
    /// Trace invariant: a subquery was recorded delayed without a reason.
    MissingDelayReason {
        /// The offending subquery's index.
        index: usize,
    },
    /// Trace invariant: an enabled trace has no query-finished event.
    MissingFinish,
    /// Trace invariant: events were recorded after query-finished.
    EventsAfterFinish {
        /// How many trailing events follow the finish.
        count: usize,
    },
    /// Every replica group kept a healthy member, yet the outcome was
    /// flagged incomplete — failover should have absorbed every kill.
    DegradedDespiteReplicas,
    /// The stats-on run diverged from the stats-off run — statistics may
    /// only *elide* probes, never change what the query returns.
    StatsDivergence {
        /// Which facet diverged (`rows`, `solutions`, or `complete`).
        facet: &'static str,
        /// The facet's value with statistics attached.
        on: String,
        /// The facet's value without statistics.
        off: String,
    },
    /// The stats-on run issued *more* wire requests of some kind than the
    /// stats-off run — statistics must be a pure saving.
    StatsRequestRegression {
        /// The request-counter label.
        kind: &'static str,
        /// Requests with statistics attached.
        on: u64,
        /// Requests without statistics.
        off: u64,
    },
    /// A batched execution diverged from the solo execution of the same
    /// query — multi-query batching may only *elide* wire traffic, never
    /// change what a query returns, how its completeness is flagged, or
    /// which endpoints its failures are attributed to.
    BatchDivergence {
        /// The batch-window size the divergence occurred at.
        window: usize,
        /// The diverging item's position in the batch.
        index: usize,
        /// Which facet diverged (`outcome`, `solutions`, `complete`,
        /// `failures`, or `wire`).
        facet: &'static str,
        /// The facet's value in the batched execution.
        batched: String,
        /// The facet's value in the solo execution.
        solo: String,
    },
    /// The same run on the two storage backends disagreed — backends must
    /// be observationally identical (solutions, completeness, per-kind
    /// wire requests, and rows scanned).
    BackendDivergence {
        /// Which facet diverged (`solutions`, `complete`, a request-kind
        /// label, `rows_scanned`, or `counters`).
        facet: &'static str,
        /// The facet's value on the BTree backend.
        btree: String,
        /// The facet's value on the columnar backend.
        columns: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Mismatch { got, want } => {
                write!(
                    f,
                    "result mismatch: engine returned {got} rows, oracle {want}"
                )
            }
            Violation::WrongLimitCount { got, want } => {
                write!(f, "LIMIT produced {got} rows, expected exactly {want}")
            }
            Violation::SpuriousRow { row } => {
                write!(f, "spurious row not in the oracle result: {row}")
            }
            Violation::FalseComplete { got, want } => write!(
                f,
                "outcome flagged complete but rows are missing ({got} of {want})"
            ),
            Violation::EngineError(e) => write!(f, "engine error: {e}"),
            Violation::TraceRequestMismatch {
                kind,
                trace_attempts,
                stats_requests,
            } => write!(
                f,
                "trace/stats mismatch for {kind} requests: trace recorded \
                 {trace_attempts} wire attempts, federation counted {stats_requests}"
            ),
            Violation::MissingDelayReason { index } => write!(
                f,
                "subquery {index} was delayed without a recorded delay reason"
            ),
            Violation::MissingFinish => {
                write!(f, "trace has no query-finished event")
            }
            Violation::EventsAfterFinish { count } => {
                write!(f, "{count} trace event(s) recorded after query-finished")
            }
            Violation::DegradedDespiteReplicas => write!(
                f,
                "outcome flagged incomplete although every replica group \
                 had a healthy member"
            ),
            Violation::StatsDivergence { facet, on, off } => write!(
                f,
                "stats-on run diverged from stats-off on {facet}: \
                 {on} with stats, {off} without"
            ),
            Violation::StatsRequestRegression { kind, on, off } => write!(
                f,
                "stats-on run issued more {kind} requests than stats-off \
                 ({on} vs {off})"
            ),
            Violation::BatchDivergence {
                window,
                index,
                facet,
                batched,
                solo,
            } => write!(
                f,
                "batched execution diverged from solo on {facet} \
                 (window {window}, item {index}): {batched} batched, \
                 {solo} solo"
            ),
            Violation::BackendDivergence {
                facet,
                btree,
                columns,
            } => write!(
                f,
                "storage backends diverged on {facet}: {btree} on btree, \
                 {columns} on columns"
            ),
        }
    }
}

/// Request policy for clean runs: nothing fails, so retries never fire.
pub fn clean_policy() -> RequestPolicy {
    RequestPolicy::default()
}

/// Request policy for faulty runs: a couple of fast retries with
/// microsecond backoffs (so injected faults are *sometimes* absorbed and
/// sometimes leak through to the degradation paths), and circuit tripping
/// after three consecutive failures.
pub fn faulty_policy() -> RequestPolicy {
    RequestPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(10),
        backoff_multiplier: 2.0,
        max_backoff: Duration::from_micros(100),
        jitter: 0.0,
        deadline: Duration::ZERO,
        trip_threshold: 3,
        // Cooldown far above the µs-scale wall time of a differential run:
        // a tripped endpoint stays tripped for the whole query, exactly the
        // legacy one-way behavior the invariants were pinned against.
        open_cooldown: Duration::from_secs(30),
        hedge_threshold: Duration::ZERO,
        query_budget: Duration::ZERO,
    }
}

/// Evaluates the case's query on the merged oracle store, without `LIMIT`
/// (the caller accounts for it). Returns the canonicalized solutions.
pub fn oracle_solutions(case: &Case) -> SolutionSet {
    let mut q = case.query.clone();
    q.limit = None;
    lusail_store::eval::evaluate(&case.oracle(), &q).canonicalize()
}

/// Runs `engine` over the case's federation and checks it against the
/// oracle. `faults.is_clean()` selects the strict equality contract;
/// otherwise the subset + completeness-honesty contract applies.
pub fn check(case: &Case, engine: EngineKind, faults: &FaultSpec) -> Result<(), Violation> {
    let (fed, locals) = case.federation(faults);
    check_on(
        case,
        engine,
        &fed,
        &locals,
        faults.is_clean(),
        false,
        None,
        1,
    )
}

/// Everything observable about one run at a given worker budget: the
/// canonicalized solutions, the completeness flag, and the full window of
/// federation request counters. The parallel executor's determinism
/// contract is that two observations differing only in `threads` compare
/// equal — same rows, same wire traffic, request for request.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Canonicalized solution multiset.
    pub solutions: SolutionSet,
    /// The outcome's completeness flag.
    pub complete: bool,
    /// Request counters accumulated during the run.
    pub window: StatsSnapshot,
}

/// Runs `engine` over the case's federation with `threads` workers,
/// enforces the oracle contract *and* the trace invariants, and returns
/// the run's [`Observation`] for cross-budget comparison.
pub fn observe(
    case: &Case,
    engine: EngineKind,
    faults: &FaultSpec,
    threads: usize,
) -> Result<Observation, Violation> {
    let (fed, locals) = case.federation(faults);
    observe_on(case, engine, &fed, &locals, faults.is_clean(), threads)
}

/// The shared trailing half of [`observe`]: run the engine over an
/// already-built federation, enforce the oracle contract and trace
/// invariants, and return the run's [`Observation`].
fn observe_on(
    case: &Case,
    engine: EngineKind,
    fed: &lusail_endpoint::Federation,
    locals: &[Arc<LocalEndpoint>],
    clean: bool,
    threads: usize,
) -> Result<Observation, Violation> {
    let policy = if clean {
        clean_policy()
    } else {
        faulty_policy()
    };
    let runner = engine.build_tuned(locals, policy, None);
    let before = fed.stats_snapshot();
    let sink = TraceSink::enabled();
    let opts = ExecOptions::default()
        .with_threads(threads)
        .with_trace(sink.clone());
    let outcome = runner
        .run_with(fed, &case.query, &opts)
        .map_err(|e| Violation::EngineError(format!("{e:?}")))?;
    let window = fed.stats_snapshot().since(&before);
    check_trace_invariants(&QueryTrace::from_sink(&sink), &window)?;
    check_outcome(case, clean, false, &outcome)?;
    Ok(Observation {
        solutions: outcome.solutions.canonicalize(),
        complete: outcome.complete,
        window,
    })
}

/// The stats-vs-wire differential: runs `engine` over the case twice —
/// once without statistics and once with [`EndpointStats`] built from
/// every *healthy* endpoint's store — and demands that statistics are
/// invisible except as elided traffic:
///
/// * byte-identical canonicalized solutions and completeness flags
///   (both runs also individually pass the ordinary oracle contract and
///   trace invariants);
/// * per-kind wire requests with stats on ≤ with stats off.
///
/// Faulted sweeps must use [`FaultSpec::random_dead_only`] plans: a
/// transiently-flaky endpoint draws each fate from its request *index*,
/// so eliding a probe would shift every later fate and the two runs would
/// legitimately diverge. Dead-only plans are elision-invariant. Stats are
/// withheld from dead endpoints — the state PR 4's invalidation converges
/// to after a death is observed — so conclusive answers never speak for
/// an endpoint whose data the engine can no longer reach.
///
/// [`EndpointStats`]: lusail_store::EndpointStats
pub fn check_stats(
    case: &Case,
    engine: EngineKind,
    faults: &FaultSpec,
    threads: usize,
) -> Result<(), Violation> {
    let clean = faults.is_clean();
    let (fed_off, locals_off) = case.federation(faults);
    let off = observe_on(case, engine, &fed_off, &locals_off, clean, threads)?;

    let (fed_on, locals_on) = case.federation(faults);
    for (i, ep) in locals_on.iter().enumerate() {
        if faults.profiles.get(i).copied().flatten().is_none() {
            fed_on.attach_stats(i, Arc::new(lusail_store::EndpointStats::build(ep.store())));
        }
    }
    let on = observe_on(case, engine, &fed_on, &locals_on, clean, threads)?;

    if on.solutions != off.solutions {
        return Err(Violation::StatsDivergence {
            facet: "solutions",
            on: format!("{} rows", on.solutions.len()),
            off: format!("{} rows", off.solutions.len()),
        });
    }
    if on.complete != off.complete {
        return Err(Violation::StatsDivergence {
            facet: "complete",
            on: on.complete.to_string(),
            off: off.complete.to_string(),
        });
    }
    let kinds: [(&'static str, u64, u64); 4] = [
        ("ask", on.window.ask_requests, off.window.ask_requests),
        ("count", on.window.count_requests, off.window.count_requests),
        (
            "select",
            on.window.select_requests,
            off.window.select_requests,
        ),
        (
            "total",
            on.window.total_requests(),
            off.window.total_requests(),
        ),
    ];
    for (kind, on_n, off_n) in kinds {
        if on_n > off_n {
            return Err(Violation::StatsRequestRegression {
                kind,
                on: on_n,
                off: off_n,
            });
        }
    }
    Ok(())
}

/// The backend-differential oracle: runs `engine` over the case once per
/// storage backend — the same stores materialized as BTree indexes and as
/// compressed sorted columns — and demands the two runs be byte-identical
/// in everything observable: canonicalized solutions, the completeness
/// flag, every per-kind wire request counter, and `rows_scanned`.
///
/// Identity (not mere equivalence) holds because generated cases are
/// smaller than the BTree estimate cap, so both backends hand
/// `plan_bgp_order` the same exact estimates, producing the same plans,
/// the same scans, and the same request streams — which also makes the
/// check fault-plan-invariant: injected fates are drawn per request
/// index, and the indexes coincide. Both runs additionally pass the
/// ordinary oracle contract and trace invariants on their own.
pub fn check_backends(
    case: &Case,
    engine: EngineKind,
    faults: &FaultSpec,
    threads: usize,
) -> Result<(), Violation> {
    let clean = faults.is_clean();
    let (fed_b, locals_b) = case.federation_on(faults, lusail_store::BackendKind::Btree);
    let btree = observe_on(case, engine, &fed_b, &locals_b, clean, threads)?;
    let (fed_c, locals_c) = case.federation_on(faults, lusail_store::BackendKind::Columns);
    let columns = observe_on(case, engine, &fed_c, &locals_c, clean, threads)?;

    if btree.solutions != columns.solutions {
        return Err(Violation::BackendDivergence {
            facet: "solutions",
            btree: format!("{} rows", btree.solutions.len()),
            columns: format!("{} rows", columns.solutions.len()),
        });
    }
    if btree.complete != columns.complete {
        return Err(Violation::BackendDivergence {
            facet: "complete",
            btree: btree.complete.to_string(),
            columns: columns.complete.to_string(),
        });
    }
    let kinds: [(&'static str, u64, u64); 5] = [
        (
            "ask",
            btree.window.ask_requests,
            columns.window.ask_requests,
        ),
        (
            "count",
            btree.window.count_requests,
            columns.window.count_requests,
        ),
        (
            "select",
            btree.window.select_requests,
            columns.window.select_requests,
        ),
        (
            "total",
            btree.window.total_requests(),
            columns.window.total_requests(),
        ),
        (
            "rows_scanned",
            btree.window.rows_scanned,
            columns.window.rows_scanned,
        ),
    ];
    for (kind, b, c) in kinds {
        if b != c {
            return Err(Violation::BackendDivergence {
                facet: kind,
                btree: b.to_string(),
                columns: c.to_string(),
            });
        }
    }
    // Catch-all: the full counter window (bytes, rows returned, fault
    // injections, VALUES blocks, …) must coincide too.
    if btree.window != columns.window {
        return Err(Violation::BackendDivergence {
            facet: "counters",
            btree: format!("{:?}", btree.window),
            columns: format!("{:?}", columns.window),
        });
    }
    Ok(())
}

/// The batched-vs-solo differential: submits `window` copies of the
/// case's query as one MQO batch and demands that every batched answer
/// is indistinguishable from the solo execution of the same query —
/// byte-identical canonicalized solutions, the same completeness flag,
/// and the same per-query failure attribution (the set of endpoints
/// blamed), clean and under seeded faults alike.
///
/// The solo baseline is exactly what a server with batching disabled
/// does: one engine executes the window's queries sequentially, probe
/// caches shared, subquery sharing off. Item `i` of the batch is
/// compared against sequential run `i`, so engine-cache warming is
/// identical on both sides and the *only* difference under test is the
/// batch's shared-relation memo.
///
/// Faulted sweeps must use [`FaultSpec::random_dead_only`] plans:
/// transient fates are drawn per request index, so eliding a shared
/// subquery's requests would shift every later fate and the two sides
/// would legitimately diverge. Dead-only plans are elision- and
/// order-invariant.
///
/// Wire contract: batching is a pure saving — the batch never issues
/// more total requests than the sequential baseline, and in a clean run
/// whose report claims saved requests, strictly fewer.
///
/// Returns the batch's [`BatchReport`](lusail_core::BatchReport) so
/// sweeps can assert aggregate sharing coverage.
pub fn check_batched(
    case: &Case,
    faults: &FaultSpec,
    window: usize,
    threads: usize,
) -> Result<lusail_core::BatchReport, Violation> {
    use lusail_core::{BatchItem, BatchOutcome};
    use std::collections::BTreeSet;

    let clean = faults.is_clean();
    let policy = || {
        if clean {
            clean_policy()
        } else {
            faulty_policy()
        }
    };
    let opts = ExecOptions::default().with_threads(threads);

    fn blamed(failures: &[lusail_endpoint::EndpointFailure]) -> BTreeSet<String> {
        failures
            .iter()
            .filter(|f| f.failed_requests > 0 || f.dead)
            .map(|f| f.name.clone())
            .collect()
    }

    // Solo baseline: sequential runs on one engine over its own
    // federation instance.
    let (solo_fed, _solo_locals) = case.federation(faults);
    let solo_engine = Lusail::new(LusailConfig::default()).with_policy(policy());
    let solo_before = solo_fed.stats_snapshot();
    let mut solos = Vec::with_capacity(window);
    for _ in 0..window {
        let result = solo_engine
            .execute_with(&solo_fed, &case.query, &opts)
            .map_err(|e| Violation::EngineError(format!("{e:?}")))?;
        solos.push(result);
    }
    let solo_wire = solo_fed
        .stats_snapshot()
        .since(&solo_before)
        .total_requests();

    // The solo answers themselves stay under the ordinary oracle
    // contract when nothing is faulted (LIMIT aside — any k oracle rows
    // are correct, and the batched side must simply pick the same ones).
    if clean && case.query.limit.is_none() {
        let oracle = oracle_solutions(case);
        for solo in &solos {
            let got = solo.solutions.canonicalize();
            if got != oracle {
                return Err(Violation::Mismatch {
                    got: got.len(),
                    want: oracle.len(),
                });
            }
        }
    }

    // Batched run: the same window of queries as one MQO batch.
    let (fed, _locals) = case.federation(faults);
    let engine = Lusail::new(LusailConfig::default()).with_policy(policy());
    let items: Vec<BatchItem> = (0..window)
        .map(|_| BatchItem {
            query: case.query.clone(),
            opts: opts.clone(),
        })
        .collect();
    let before = fed.stats_snapshot();
    let (outcomes, report) = engine.execute_batch_with(&fed, &items);
    let batched_wire = fed.stats_snapshot().since(&before).total_requests();

    for (index, (outcome, solo)) in outcomes.iter().zip(&solos).enumerate() {
        let diverged = |facet, batched: String, solo: String| Violation::BatchDivergence {
            window,
            index,
            facet,
            batched,
            solo,
        };
        let result = match outcome {
            BatchOutcome::Finished(result) => result,
            BatchOutcome::DeadlineExpired => {
                return Err(diverged(
                    "outcome",
                    "deadline-expired".into(),
                    "finished".into(),
                ));
            }
            BatchOutcome::Error(e) => {
                return Err(diverged("outcome", format!("{e:?}"), "finished".into()));
            }
        };
        let got = result.solutions.canonicalize();
        let want = solo.solutions.canonicalize();
        if got != want {
            return Err(diverged(
                "solutions",
                format!("{} rows", got.len()),
                format!("{} rows", want.len()),
            ));
        }
        if result.complete != solo.complete {
            return Err(diverged(
                "complete",
                result.complete.to_string(),
                solo.complete.to_string(),
            ));
        }
        let got_blamed = blamed(&result.failures);
        let want_blamed = blamed(&solo.failures);
        if got_blamed != want_blamed {
            return Err(diverged(
                "failures",
                format!("{got_blamed:?}"),
                format!("{want_blamed:?}"),
            ));
        }
    }

    if batched_wire > solo_wire {
        return Err(Violation::BatchDivergence {
            window,
            index: 0,
            facet: "wire",
            batched: format!("{batched_wire} requests"),
            solo: format!("{solo_wire} requests"),
        });
    }
    if clean && report.wire_requests_saved > 0 && batched_wire >= solo_wire {
        return Err(Violation::BatchDivergence {
            window,
            index: 0,
            facet: "wire",
            batched: format!(
                "{batched_wire} requests (claims {} saved)",
                report.wire_requests_saved
            ),
            solo: format!("{solo_wire} requests"),
        });
    }
    Ok(report)
}

/// [`check`] with a [`LusailTuning`] override, so sweeps can exercise the
/// adaptive `VALUES` batching and bound-subquery paths that the default
/// `block_size` of 100 never reaches on small generated cases.
pub fn check_tuned(
    case: &Case,
    engine: EngineKind,
    faults: &FaultSpec,
    tuning: LusailTuning,
) -> Result<(), Violation> {
    let (fed, locals) = case.federation(faults);
    check_on(
        case,
        engine,
        &fed,
        &locals,
        faults.is_clean(),
        false,
        Some(tuning),
        1,
    )
}

/// [`check`] over a *replicated* federation (see
/// [`Case::replicated_federation`]). `require_complete` encodes the
/// failover guarantee: when the fault plan leaves every replica group a
/// healthy member (e.g. a [`FaultSpec::random_primary_kill`] plan at
/// replication ≥ 2), the engines must return the exact oracle answer
/// *and* flag it complete — an incomplete outcome is itself a violation.
/// With `require_complete` false (e.g. a whole group killed) the ordinary
/// honesty contract applies.
pub fn check_replicated(
    case: &Case,
    engine: EngineKind,
    faults: &FaultSpec,
    replication: usize,
    require_complete: bool,
) -> Result<(), Violation> {
    let (fed, locals) = case.replicated_federation(faults, replication);
    check_on(
        case,
        engine,
        &fed,
        &locals,
        faults.is_clean(),
        require_complete,
        None,
        1,
    )
}

#[allow(clippy::fn_params_excessive_bools, clippy::too_many_arguments)]
fn check_on(
    case: &Case,
    engine: EngineKind,
    fed: &lusail_endpoint::Federation,
    locals: &[Arc<LocalEndpoint>],
    clean: bool,
    require_complete: bool,
    tuning: Option<LusailTuning>,
    threads: usize,
) -> Result<(), Violation> {
    let policy = if clean {
        clean_policy()
    } else {
        faulty_policy()
    };
    let runner = engine.build_tuned(locals, policy, tuning);
    let before = fed.stats_snapshot();
    let sink = TraceSink::enabled();
    let opts = ExecOptions::default()
        .with_threads(threads)
        .with_trace(sink.clone());
    let outcome = runner
        .run_with(fed, &case.query, &opts)
        .map_err(|e| Violation::EngineError(format!("{e:?}")))?;
    let window = fed.stats_snapshot().since(&before);
    check_trace_invariants(&QueryTrace::from_sink(&sink), &window)?;
    check_outcome(case, clean, require_complete, &outcome)
}

/// The oracle contract applied to an already-obtained outcome: exact
/// equality when clean (or claimed complete), honesty (subset +
/// subsumption) when degraded, and the `LIMIT` row-count rules.
fn check_outcome(
    case: &Case,
    clean: bool,
    require_complete: bool,
    outcome: &lusail_endpoint::QueryOutcome,
) -> Result<(), Violation> {
    if require_complete && !outcome.complete {
        return Err(Violation::DegradedDespiteReplicas);
    }
    let got = outcome.solutions.canonicalize();
    let full = oracle_solutions(case);

    if clean || outcome.complete {
        // A clean run — or a faulty one that *claims* completeness — must
        // match the oracle exactly.
        match case.query.limit {
            None => {
                if got != full {
                    return Err(if clean {
                        Violation::Mismatch {
                            got: got.len(),
                            want: full.len(),
                        }
                    } else {
                        Violation::FalseComplete {
                            got: got.len(),
                            want: full.len(),
                        }
                    });
                }
            }
            Some(k) => {
                let want = k.min(full.len());
                if got.len() != want {
                    return Err(if clean {
                        Violation::WrongLimitCount {
                            got: got.len(),
                            want,
                        }
                    } else {
                        Violation::FalseComplete {
                            got: got.len(),
                            want,
                        }
                    });
                }
            }
        }
    } else if let Some(k) = case.query.limit {
        if got.len() > k {
            return Err(Violation::WrongLimitCount {
                got: got.len(),
                want: k.min(full.len()),
            });
        }
    }

    // Under faults (and with LIMIT in any mode) every returned row must
    // still be backed by an oracle row: degradation may lose answers,
    // never invent them. One wrinkle: when an OPTIONAL group's endpoint
    // dies, engines legitimately degrade a row to its mandatory bindings
    // with the optional variables unbound. An incomplete outcome may
    // therefore report a row *subsumed* by an oracle row — every bound
    // cell agrees, and unbound cells are confined to variables bound only
    // inside OPTIONAL groups. Complete (and clean) outcomes get no such
    // slack.
    let optional_only: Vec<bool> = got
        .vars
        .iter()
        .map(|v| {
            !case.query.pattern.triples.iter().any(|tp| tp.mentions(v))
                && mentioned_in_optionals(&case.query.pattern, v)
        })
        .collect();
    let may_degrade = !clean && !outcome.complete;
    for row in &got.rows {
        let exact = full.rows.contains(row);
        let subsumed = may_degrade
            && full.rows.iter().any(|oracle_row| {
                row.iter()
                    .zip(oracle_row)
                    .enumerate()
                    .all(|(i, (r, o))| match r {
                        None => optional_only[i] || o.is_none(),
                        Some(_) => r == o,
                    })
            });
        if !exact && !subsumed {
            return Err(Violation::SpuriousRow {
                row: render_row(&got.vars, row, case),
            });
        }
    }
    Ok(())
}

/// The trace invariants every engine must uphold (clean *and* faulted):
///
/// 1. The wire attempts summed over the trace's request events equal the
///    federation's request counters, per kind. Retried requests count
///    once per attempt in both; circuit-broken requests count in
///    neither. (`Check` queries are wire-level SELECTs, so their
///    attempts merge into the select counter.)
/// 2. Every subquery recorded as delayed carries a delay reason.
/// 3. The trace ends with exactly one query-finished event — nothing is
///    recorded after it.
pub fn check_trace_invariants(trace: &QueryTrace, window: &StatsSnapshot) -> Result<(), Violation> {
    let checks: [(&'static str, u64, u64); 3] = [
        (
            "ask",
            trace.requests(RequestKind::Ask).attempts,
            window.ask_requests,
        ),
        (
            "count",
            trace.requests(RequestKind::Count).attempts,
            window.count_requests,
        ),
        (
            "select+check",
            trace.select_wire_attempts(),
            window.select_requests,
        ),
    ];
    for (kind, trace_attempts, stats_requests) in checks {
        if trace_attempts != stats_requests {
            return Err(Violation::TraceRequestMismatch {
                kind,
                trace_attempts,
                stats_requests,
            });
        }
    }
    if let Some(&index) = trace.delayed_without_reason().first() {
        return Err(Violation::MissingDelayReason { index });
    }
    if trace.finish_index().is_none() {
        return Err(Violation::MissingFinish);
    }
    let count = trace.events_after_finish();
    if count > 0 {
        return Err(Violation::EventsAfterFinish { count });
    }
    Ok(())
}

/// True when `var` occurs in some OPTIONAL group (recursively) of `g`.
fn mentioned_in_optionals(g: &lusail_sparql::ast::GroupPattern, var: &str) -> bool {
    g.optionals.iter().any(|opt| {
        opt.triples.iter().any(|tp| tp.mentions(var)) || mentioned_in_optionals(opt, var)
    })
}

fn render_row(vars: &[String], row: &[Option<lusail_rdf::TermId>], case: &Case) -> String {
    vars.iter()
        .zip(row)
        .map(|(v, cell)| match cell {
            Some(id) => format!("?{v}={}", case.dict.decode(*id)),
            None => format!("?{v}=UNDEF"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    #[test]
    fn engine_kind_parses_case_insensitively() {
        assert_eq!(EngineKind::parse("lusail"), Some(EngineKind::Lusail));
        assert_eq!(EngineKind::parse("FEDX"), Some(EngineKind::FedX));
        assert_eq!(EngineKind::parse("HiBisCuS"), Some(EngineKind::Hibiscus));
        assert_eq!(EngineKind::parse("splendid"), Some(EngineKind::Splendid));
        assert_eq!(EngineKind::parse("virtuoso"), None);
    }

    #[test]
    fn a_handful_of_clean_cases_pass_for_every_engine() {
        let cfg = GenConfig::default();
        for seed in 0..6 {
            let case = Case::generate(seed, &cfg);
            for engine in EngineKind::ALL {
                if let Err(v) = check(&case, engine, &FaultSpec::default()) {
                    panic!("seed {seed} engine {}: {v}", engine.name());
                }
            }
        }
    }
}
