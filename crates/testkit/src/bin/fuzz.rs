//! Long-running differential fuzzer.
//!
//! Drives the testkit case generator for as many iterations as asked,
//! checking every engine against the single-store oracle in clean mode
//! and (unless `--no-faults`) under a seeded fault plan. On the first
//! violation it shrinks the case and prints a self-contained repro, then
//! exits nonzero.
//!
//! ```text
//! cargo run --release -p lusail-testkit --bin fuzz -- --seed 1 --iters 10000
//! cargo run --release -p lusail-testkit --bin fuzz -- --engine fedx --straddle 1.0
//! ```

use lusail_benchdata::common::Rng;
use lusail_testkit::{run_case, seed_from_env, EngineKind, GenConfig};
use std::process::ExitCode;

struct Args {
    seed: u64,
    case_seed: Option<u64>,
    iters: u64,
    engines: Vec<EngineKind>,
    faulty: bool,
    config: GenConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N|0xHEX] [--iters N] [--engine lusail|fedx|hibiscus|splendid]\n\
         \x20           [--no-faults] [--straddle F] [--max-endpoints N] [--max-triples N]\n\
         \x20           [--max-patterns N] [--case-seed N|0xHEX]\n\
         --seed seeds the stream of generated cases (default $LUSAIL_TEST_SEED, then 1);\n\
         --case-seed replays exactly one case printed by a repro and ignores --seed/--iters."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: seed_from_env(1),
        case_seed: None,
        iters: 1000,
        engines: EngineKind::ALL.to_vec(),
        faulty: true,
        config: GenConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = lusail_testkit::parse_seed(&value("--seed")).unwrap_or_else(|| usage())
            }
            "--case-seed" => {
                args.case_seed = Some(
                    lusail_testkit::parse_seed(&value("--case-seed")).unwrap_or_else(|| usage()),
                )
            }
            "--iters" => args.iters = value("--iters").parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                args.engines =
                    vec![EngineKind::parse(&value("--engine")).unwrap_or_else(|| usage())]
            }
            "--no-faults" => args.faulty = false,
            "--straddle" => {
                args.config.straddle = value("--straddle").parse().unwrap_or_else(|_| usage())
            }
            "--max-endpoints" => {
                args.config.max_endpoints =
                    value("--max-endpoints").parse().unwrap_or_else(|_| usage())
            }
            "--max-triples" => {
                args.config.max_triples = value("--max-triples").parse().unwrap_or_else(|_| usage())
            }
            "--max-patterns" => {
                args.config.max_patterns =
                    value("--max-patterns").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// Checks one case seed for every selected engine × mode. Returns `Err`
/// after printing the repro on the first violation.
fn run_one(case_seed: u64, iteration: u64, args: &Args, runs: &mut u64) -> Result<(), ()> {
    for &engine in &args.engines {
        for faulty in [false, true] {
            if faulty && !args.faulty {
                continue;
            }
            *runs += 1;
            if let Err(repro) = run_case(case_seed, &args.config, engine, faulty) {
                eprintln!(
                    "\nFAILURE at iteration {iteration} (case seed {case_seed:#x}, {} mode):\n",
                    if faulty { "faulty" } else { "clean" }
                );
                println!("{repro}");
                return Err(());
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut runs = 0u64;
    if let Some(case_seed) = args.case_seed {
        eprintln!(
            "fuzz: replaying case seed {case_seed:#x}, engines [{}], faults {}",
            args.engines
                .iter()
                .map(|e| e.name())
                .collect::<Vec<_>>()
                .join(", "),
            if args.faulty { "on" } else { "off" }
        );
        if run_one(case_seed, 0, &args, &mut runs).is_err() {
            return ExitCode::FAILURE;
        }
        eprintln!("fuzz: case {case_seed:#x} ({runs} runs) matched the oracle");
        return ExitCode::SUCCESS;
    }
    let mut stream = Rng::new(args.seed);
    eprintln!(
        "fuzz: seed {:#x}, {} iterations, engines [{}], faults {}",
        args.seed,
        args.iters,
        args.engines
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", "),
        if args.faulty { "on" } else { "off" }
    );
    for i in 0..args.iters {
        let case_seed = stream.next_u64();
        if run_one(case_seed, i, &args, &mut runs).is_err() {
            return ExitCode::FAILURE;
        }
        if (i + 1) % 100 == 0 {
            eprintln!(
                "fuzz: {} / {} iterations ({} runs) ok",
                i + 1,
                args.iters,
                runs
            );
        }
    }
    eprintln!(
        "fuzz: all {} iterations ({} runs) matched the oracle",
        args.iters, runs
    );
    ExitCode::SUCCESS
}
