//! Machinery shared by the baseline engines: evaluation units (exclusive
//! groups), bound joins, and clause handling.

use lusail_core::exec::Net;
use lusail_core::source_selection::SourceMap;
use lusail_endpoint::{EndpointId, Federation};
use lusail_rdf::FxHashSet;
use lusail_sparql::ast::{Expression, GroupPattern, Query, QueryForm, TriplePattern, ValuesBlock};
use lusail_sparql::SolutionSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// An evaluation unit: either an *exclusive group* (several patterns whose
/// only relevant source is one identical endpoint) or a single pattern.
#[derive(Debug, Clone)]
pub struct Unit {
    /// The unit's triple patterns.
    pub triples: Vec<TriplePattern>,
    /// Relevant endpoints.
    pub sources: Vec<EndpointId>,
    /// Filters pushed into the unit.
    pub filters: Vec<Expression>,
}

impl Unit {
    /// All variables of the unit.
    pub fn vars(&self) -> Vec<String> {
        lusail_sparql::ast::collect_pattern_vars(&self.triples)
    }

    /// Renders the unit as a SELECT over all its variables, with an
    /// optional bindings block.
    pub fn to_query(&self, values: Option<ValuesBlock>) -> Query {
        let mut pattern = GroupPattern::bgp(self.triples.clone());
        pattern.filters = self.filters.clone();
        pattern.values = values;
        Query {
            form: QueryForm::Select,
            distinct: false,
            projection: self.vars(),
            pattern,
            aggregates: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// Groups patterns into FedX's exclusive groups: patterns whose relevant
/// source list is exactly one endpoint are merged per endpoint; everything
/// else becomes a singleton unit sent to all its sources.
pub fn exclusive_groups(triples: &[TriplePattern], sources: &SourceMap) -> Vec<Unit> {
    let mut units: Vec<Unit> = Vec::new();
    for tp in triples {
        let srcs = sources.sources(tp).to_vec();
        if srcs.len() == 1 {
            // Try to join an existing exclusive group for this endpoint.
            if let Some(u) = units
                .iter_mut()
                .find(|u| u.sources.len() == 1 && u.sources == srcs)
            {
                u.triples.push(tp.clone());
                continue;
            }
        }
        units.push(Unit {
            triples: vec![tp.clone()],
            sources: srcs,
            filters: Vec::new(),
        });
    }
    units
}

impl lusail_core::subquery::FilterTarget for Unit {
    fn mentions_var(&self, var: &str) -> bool {
        self.triples.iter().any(|t| t.mentions(var))
    }

    fn push_filter(&mut self, filter: Expression) {
        self.filters.push(filter);
    }
}

/// Pushes filters whose variables are all local to one unit; returns the
/// rest.
pub fn push_filters(filters: &[Expression], units: &mut [Unit]) -> Vec<Expression> {
    lusail_core::subquery::push_filters_into(filters, units)
}

/// FedX's variable-counting heuristic: order units so that each step binds
/// as many variables as possible — fewest *free* variables first, with
/// constants counting as bound, preferring exclusive groups on ties.
pub fn order_units(mut units: Vec<Unit>) -> Vec<Unit> {
    let mut ordered: Vec<Unit> = Vec::with_capacity(units.len());
    let mut bound: FxHashSet<String> = FxHashSet::default();
    while !units.is_empty() {
        let (idx, _) = units
            .iter()
            .enumerate()
            .min_by_key(|(_, u)| {
                let free = u
                    .vars()
                    .iter()
                    .filter(|v| !bound.contains(v.as_str()))
                    .count();
                let consts: usize = u.triples.iter().map(|t| t.bound_positions()).sum();
                let exclusive = usize::from(u.sources.len() != 1);
                // Prefer: more bound vars, then exclusive groups, then
                // more constants.
                (free, exclusive, usize::MAX - consts)
            })
            .expect("non-empty units");
        let u = units.remove(idx);
        for v in u.vars() {
            bound.insert(v);
        }
        ordered.push(u);
    }
    ordered
}

/// Evaluates a unit with no bindings: one SELECT per relevant endpoint,
/// dispatched through the net's budgeted request handler (endpoints run
/// in parallel up to the thread budget), results concatenated in source
/// order. An endpoint that fails (after the client's retries) contributes
/// nothing and raises the `loss` flag — the engine reports the query
/// incomplete instead of aborting.
pub fn evaluate_unbound(
    fed: &Federation,
    unit: &Unit,
    net: &Net,
    loss: &AtomicBool,
) -> SolutionSet {
    let q = unit.to_query(None);
    let tasks: Vec<(EndpointId, ())> = unit.sources.iter().map(|&ep| (ep, ())).collect();
    let results = net.handler.run(fed, tasks, |ep_id, _, _| {
        match net.client.select_failover(fed, ep_id, &q) {
            Ok((_, part)) => Some(part),
            Err(_) => {
                loss.store(true, Ordering::Relaxed);
                None
            }
        }
    });
    let mut out = SolutionSet::empty(unit.vars());
    for (_, _, part) in results {
        if let Some(part) = part {
            out.append(part);
        }
    }
    out
}

/// Block nested-loop **bound join** (FedX §4): ships the current
/// intermediate bindings of the shared variables in blocks of
/// `block_size`, one request per block per relevant endpoint, then joins
/// the retrieved rows back with the intermediate result locally.
///
/// When `limit` is `Some(k)`, block submission stops as soon as the joined
/// output reaches `k` rows — FedX's first-k cutoff (the reason it wins the
/// paper's C4).
pub fn bound_join(
    fed: &Federation,
    current: &SolutionSet,
    unit: &Unit,
    block_size: usize,
    limit: Option<usize>,
    net: &Net,
    loss: &AtomicBool,
) -> SolutionSet {
    let unit_vars = unit.vars();
    let shared: Vec<String> = current
        .vars
        .iter()
        .filter(|v| unit_vars.contains(v))
        .cloned()
        .collect();
    if shared.is_empty() || current.is_empty() {
        // Cross product or empty input: fall back to unbound evaluation.
        let fetched = evaluate_unbound(fed, unit, net, loss);
        return current.hash_join(&fetched);
    }

    // Distinct binding tuples over the shared variables.
    let tuples = current.distinct_tuples(&shared);

    // Join distributes over the union of block results, so each block is
    // joined once and appended — no re-join over the accumulated set. The
    // block loop stays sequential (the first-k cutoff must see each
    // block's contribution before shipping the next); within a block the
    // per-endpoint requests fan out through the budgeted handler.
    let mut joined: Option<SolutionSet> = None;
    for block in tuples.chunks(block_size) {
        let vb = ValuesBlock {
            vars: shared.clone(),
            rows: block.to_vec(),
        };
        let q = unit.to_query(Some(vb));
        let tasks: Vec<(EndpointId, ())> = unit.sources.iter().map(|&ep| (ep, ())).collect();
        let results = net.handler.run(fed, tasks, |ep_id, _, _| {
            match net.client.select_failover(fed, ep_id, &q) {
                Ok((_, part)) => Some(part),
                Err(_) => {
                    loss.store(true, Ordering::Relaxed);
                    None
                }
            }
        });
        let mut fetched = SolutionSet::empty(unit.vars());
        for (_, _, part) in results {
            if let Some(part) = part {
                fetched.append(part);
            }
        }
        let block_join = current.hash_join(&fetched);
        match &mut joined {
            None => joined = Some(block_join),
            Some(j) => j.append(block_join),
        }
        if let Some(k) = limit {
            if joined.as_ref().is_some_and(|j| j.len() >= k) {
                return joined.unwrap();
            }
        }
    }
    joined.unwrap_or_else(|| current.hash_join(&SolutionSet::empty(unit_vars)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term, TermId};
    use lusail_sparql::ast::PatternTerm;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn v(name: &str) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    fn c(id: u32) -> PatternTerm {
        PatternTerm::Const(TermId(id))
    }

    fn sm(entries: Vec<(TriplePattern, Vec<usize>)>) -> SourceMap {
        let mut m = SourceMap::default();
        for (tp, srcs) in entries {
            m.push_entry(tp, srcs);
        }
        m
    }

    #[test]
    fn exclusive_groups_merge_single_source_patterns() {
        let t1 = TriplePattern::new(v("a"), c(1), v("b"));
        let t2 = TriplePattern::new(v("b"), c(2), v("d"));
        let t3 = TriplePattern::new(v("d"), c(3), v("e"));
        let sources = sm(vec![
            (t1.clone(), vec![0]),
            (t2.clone(), vec![0]),
            (t3.clone(), vec![0, 1]),
        ]);
        let units = exclusive_groups(&[t1, t2, t3], &sources);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].triples.len(), 2); // exclusive group at ep 0
        assert_eq!(units[1].sources, vec![0, 1]);
    }

    #[test]
    fn ordering_prefers_bound_and_exclusive() {
        let t1 = TriplePattern::new(v("a"), c(1), v("b")); // 2 free, multi-source
        let t2 = TriplePattern::new(v("b"), c(2), c(9)); // 1 free, single source
        let sources = sm(vec![(t1.clone(), vec![0, 1]), (t2.clone(), vec![0])]);
        let units = order_units(exclusive_groups(&[t1, t2.clone()], &sources));
        assert_eq!(units[0].triples[0], t2);
    }

    #[test]
    fn bound_join_ships_blocks_and_matches_plain_join() {
        // Endpoint with p2 triples for half the subjects.
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        let p2 = Term::iri("http://x/p2");
        for i in 0..10 {
            if i % 2 == 0 {
                st.insert_terms(
                    &Term::iri(format!("http://x/s{i}")),
                    &p2,
                    &Term::iri(format!("http://x/o{i}")),
                );
            }
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        fed.add(Arc::new(LocalEndpoint::new("A", st)));

        // Intermediate bindings: all 10 subjects.
        let mut current = SolutionSet::empty(vec!["s".into()]);
        for i in 0..10 {
            let id = dict.encode(&Term::iri(format!("http://x/s{i}")));
            current.rows.push(vec![Some(id)]);
        }
        let p2id = dict.encode(&p2);
        let unit = Unit {
            triples: vec![TriplePattern::new(v("s"), PatternTerm::Const(p2id), v("o"))],
            sources: vec![0],
            filters: Vec::new(),
        };
        let net = Net::default();
        let loss = AtomicBool::new(false);
        let before = fed.stats_snapshot();
        let joined = bound_join(&fed, &current, &unit, 3, None, &net, &loss);
        let window = fed.stats_snapshot().since(&before);
        // 10 bindings / block 3 = 4 blocks = 4 requests.
        assert_eq!(window.select_requests, 4);
        assert_eq!(joined.len(), 5);
        assert!(!loss.load(Ordering::Relaxed));
        // Identical to evaluating unbound then joining.
        let unbound = evaluate_unbound(&fed, &unit, &net, &loss);
        assert_eq!(
            joined.canonicalize(),
            current.hash_join(&unbound).canonicalize()
        );
    }

    #[test]
    fn push_filters_splits_local_and_global() {
        let t1 = TriplePattern::new(v("a"), c(1), v("b"));
        let t2 = TriplePattern::new(v("x"), c(2), v("y"));
        let sources = sm(vec![(t1.clone(), vec![0]), (t2.clone(), vec![1])]);
        let mut units = exclusive_groups(&[t1, t2], &sources);
        let local = Expression::Bound("b".into());
        let global = Expression::Cmp(
            lusail_sparql::ast::CmpOp::Eq,
            Box::new(Expression::Var("b".into())),
            Box::new(Expression::Var("y".into())),
        );
        let rest = push_filters(&[local, global.clone()], &mut units);
        assert_eq!(rest, vec![global]);
        assert_eq!(units[0].filters.len(), 1);
    }
}
