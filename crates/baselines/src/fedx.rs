//! A FedX-style engine (Schwarte et al., ISWC 2011).
//!
//! FedX is the index-free baseline the paper leans on (its Fig. 3
//! motivation experiment and most comparisons): ASK-based source selection
//! with caching, exclusive groups, variable-counting join ordering, and
//! block nested-loop bound joins. The signature behaviour reproduced here
//! is *triple-pattern-at-a-time* execution: when endpoints share a schema
//! (so no exclusive groups form), every pattern is a separate unit and the
//! intermediate bindings are shipped in `VALUES` blocks — the number of
//! remote requests grows with the intermediate result size, which is
//! exactly the scalability wall of §II.
//!
//! (The FedX the paper benchmarked rewrote bound joins as UNION blocks
//! with renamed variables; FedX 3.x and later use SPARQL 1.1 `VALUES`,
//! which is what we implement — the request counts and data volumes are
//! identical, only the wire syntax differs.)

use crate::common::{
    bound_join, evaluate_unbound, exclusive_groups, order_units, push_filters, Unit,
};
use lusail_core::cache::ProbeCache;
use lusail_core::exec::Net;
use lusail_core::source_selection::{select_sources, SourceMap};
use lusail_endpoint::{
    EndpointId, ExecOptions, FederatedEngine, Federation, FederationError, QueryOutcome,
    RequestPolicy, SystemClock, TraceEvent,
};
use lusail_rdf::TermId;
use lusail_sparql::ast::{Expression, GroupPattern, Query};
use lusail_sparql::SolutionSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// FedX tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FedXConfig {
    /// Bindings per bound-join block (FedX's default is 15).
    pub block_size: usize,
    /// Memoize ASK probes across queries.
    pub use_cache: bool,
}

impl Default for FedXConfig {
    fn default() -> Self {
        FedXConfig {
            block_size: 15,
            use_cache: true,
        }
    }
}

/// The FedX-style engine.
pub struct FedX {
    config: FedXConfig,
    policy: RequestPolicy,
    ask_cache: ProbeCache<bool>,
}

impl Default for FedX {
    fn default() -> Self {
        FedX::new(FedXConfig::default())
    }
}

impl FedX {
    /// Creates an engine with the given configuration.
    pub fn new(config: FedXConfig) -> Self {
        FedX {
            config,
            policy: RequestPolicy::default(),
            ask_cache: ProbeCache::new(config.use_cache),
        }
    }

    /// Replaces the retry/backoff/deadline policy for remote requests.
    pub fn with_policy(mut self, policy: RequestPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Executes a query. A federated `SELECT (COUNT(*) AS ?c)` is
    /// normalized to a mediator-side aggregate so the count is global.
    /// Endpoint failures degrade into an incomplete [`QueryOutcome`];
    /// only an empty federation is an `Err`.
    pub fn execute(
        &self,
        fed: &Federation,
        query: &Query,
    ) -> Result<QueryOutcome, FederationError> {
        self.execute_with(fed, query, &ExecOptions::default())
    }

    /// [`FedX::execute`] under explicit [`ExecOptions`]: request-level
    /// tracing (an enabled trace always ends with
    /// [`TraceEvent::QueryFinished`]), the worker budget for per-endpoint
    /// dispatch, and an optional deadline overriding the policy's query
    /// budget.
    pub fn execute_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        if fed.is_empty() {
            return Err(FederationError::EmptyFederation);
        }
        let mut policy = self.policy;
        if let Some(deadline) = opts.deadline {
            policy.query_budget = deadline;
        }
        let net = Net::build(
            policy,
            Arc::new(SystemClock::default()),
            opts.trace.clone(),
            opts.thread_budget(),
            opts.on_health_transition.clone(),
        );
        let loss = AtomicBool::new(false);
        let solutions = self.execute_inner(fed, query, &net, &loss);
        let complete = !loss.load(Ordering::Relaxed) && !net.degradation.data_loss();
        opts.trace.emit(|| TraceEvent::QueryFinished {
            rows: solutions.len(),
            complete,
        });
        Ok(QueryOutcome {
            solutions,
            complete,
            failures: net.client.report(fed),
        })
    }

    fn execute_inner(
        &self,
        fed: &Federation,
        query: &Query,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        if let Some(rewritten) = query.count_star_as_aggregate() {
            return self.execute_inner(fed, &rewritten, net, loss);
        }
        let sources = select_sources(fed, &query.pattern, &self.ask_cache, net);
        if sources.any_required_empty(&query.pattern.triples) {
            return SolutionSet::empty(query.output_vars());
        }
        // The first-k cutoff is unsound under ORDER BY, DISTINCT, and
        // aggregation: all must see every row before truncation.
        let cutoff = if query.order_by.is_empty() && !query.distinct && query.aggregates.is_empty()
        {
            query.limit
        } else {
            None
        };
        let solutions = self.evaluate_group(fed, &query.pattern, &sources, cutoff, net, loss);
        lusail_store::eval::apply_modifiers(solutions, query, fed.dict())
    }

    /// Left-deep pipeline over the group's units, then nested clauses.
    fn evaluate_group(
        &self,
        fed: &Federation,
        group: &GroupPattern,
        sources: &SourceMap,
        limit: Option<usize>,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        let mut units = exclusive_groups(&group.triples, sources);
        let global_filters = push_filters(&group.filters, &mut units);
        let units = order_units(units);

        // FedX's first-k cutoff is sound only when nothing downstream can
        // drop or multiply rows.
        let simple = group.optionals.is_empty()
            && group.unions.is_empty()
            && group.not_exists.is_empty()
            && global_filters.is_empty();

        let mut current = match group.values {
            Some(ref v) => SolutionSet {
                vars: v.vars.clone(),
                rows: v.rows.clone(),
            },
            None => SolutionSet {
                vars: Vec::new(),
                rows: vec![Vec::new()],
            },
        };
        let n_units = units.len();
        for (i, unit) in units.iter().enumerate() {
            let is_first = current.vars.is_empty() && current.len() == 1;
            if is_first {
                let fetched = evaluate_unbound(fed, unit, net, loss);
                current = fetched;
            } else {
                let cutoff = if simple && i + 1 == n_units {
                    limit
                } else {
                    None
                };
                current = bound_join(
                    fed,
                    &current,
                    unit,
                    self.config.block_size,
                    cutoff,
                    net,
                    loss,
                );
            }
            if current.is_empty() {
                // Short-circuit: downstream joins cannot revive rows, but
                // OPTIONAL/UNION clauses may still contribute columns.
                break;
            }
        }

        // OPTIONALs take FedX's bound left-fetch; UNION and NOT EXISTS go
        // through the shared nested-group machinery.
        for opt in &group.optionals {
            let (inner, correlated) = opt.split_correlated_filters();
            let os = self.evaluate_optional(fed, &inner, sources, &current, net, loss);
            current =
                lusail_store::eval::left_join_filtered(&current, &os, &correlated, fed.dict());
        }
        let mut without_optionals = group.clone();
        without_optionals.optionals = Vec::new();
        current = lusail_store::eval::join_nested_groups(
            current,
            &without_optionals,
            fed.dict(),
            |sub| self.evaluate_group(fed, sub, sources, None, net, loss),
        );
        lusail_store::eval::retain_filtered(&mut current, &global_filters, fed.dict());
        current
    }

    /// OPTIONAL bodies are evaluated with a bound join against the current
    /// bindings when they share variables (FedX's left-bind-join), falling
    /// back to independent evaluation.
    fn evaluate_optional(
        &self,
        fed: &Federation,
        group: &GroupPattern,
        sources: &SourceMap,
        current: &SolutionSet,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        // Single-unit optionals with shared vars: bound retrieval.
        let mut units = exclusive_groups(&group.triples, sources);
        let global_filters = push_filters(&group.filters, &mut units);
        if units.len() == 1
            && group.optionals.is_empty()
            && group.unions.is_empty()
            && group.not_exists.is_empty()
        {
            let unit = &units[0];
            let shared: Vec<String> = current
                .vars
                .iter()
                .filter(|v| unit.vars().contains(v))
                .cloned()
                .collect();
            if !shared.is_empty() && !current.is_empty() {
                let fetched = bound_fetch(
                    fed,
                    current,
                    unit,
                    &shared,
                    self.config.block_size,
                    net,
                    loss,
                );
                return apply_filters(fed, fetched, &global_filters);
            }
        }
        self.evaluate_group(fed, group, sources, None, net, loss)
    }
}

/// Fetches a unit's rows restricted to blocks of the given bindings,
/// without joining back (the caller left-joins). Per-endpoint requests
/// fan out through the budgeted handler; results keep source order.
fn bound_fetch(
    fed: &Federation,
    current: &SolutionSet,
    unit: &Unit,
    shared: &[String],
    block_size: usize,
    net: &Net,
    loss: &AtomicBool,
) -> SolutionSet {
    let tuples = current.distinct_tuples(shared);
    let mut fetched = SolutionSet::empty(unit.vars());
    for block in tuples.chunks(block_size) {
        let vb = lusail_sparql::ast::ValuesBlock {
            vars: shared.to_vec(),
            rows: block.to_vec(),
        };
        let q = unit.to_query(Some(vb));
        let tasks: Vec<(EndpointId, ())> = unit.sources.iter().map(|&ep| (ep, ())).collect();
        let results = net.handler.run(fed, tasks, |ep_id, _, _| {
            match net.client.select_failover(fed, ep_id, &q) {
                Ok((_, part)) => Some(part),
                Err(_) => {
                    loss.store(true, Ordering::Relaxed);
                    None
                }
            }
        });
        for (_, _, part) in results {
            if let Some(part) = part {
                fetched.append(part);
            }
        }
    }
    fetched.dedup();
    fetched
}

fn apply_filters(fed: &Federation, mut sols: SolutionSet, filters: &[Expression]) -> SolutionSet {
    let vars = sols.vars.clone();
    let dict = fed.dict();
    sols.rows.retain(|row| {
        let ctx: (&[String], &[Option<TermId>]) = (&vars, row);
        filters
            .iter()
            .all(|f| lusail_store::expr::eval_filter(f, &ctx, dict))
    });
    sols
}

impl FederatedEngine for FedX {
    fn engine_name(&self) -> &str {
        "FedX"
    }

    fn run_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        self.execute_with(fed, query, opts)
    }

    fn reset(&self) {
        self.ask_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    /// Two same-schema endpoints so no exclusive groups form — the
    /// pattern-at-a-time regime.
    fn fed_and_oracle() -> (Federation, TripleStore) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let p = Term::iri("http://x/p");
        let q = Term::iri("http://x/q");
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        for i in 0..20 {
            let s = Term::iri(format!("http://x/s{i}"));
            let m = Term::iri(format!("http://x/m{i}"));
            let o = Term::iri(format!("http://x/o{i}"));
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.insert_terms(&s, &p, &m);
            oracle.insert_terms(&s, &p, &m);
            // Half the chains complete at the *other* endpoint.
            let target2 = if i % 4 < 2 { &mut a } else { &mut b };
            target2.insert_terms(&m, &q, &o);
            oracle.insert_terms(&m, &q, &o);
        }
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        (fed, oracle)
    }

    #[test]
    fn chain_query_matches_oracle() {
        let (fed, oracle) = fed_and_oracle();
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let engine = FedX::default();
        let outcome = engine.execute(&fed, &q).unwrap();
        assert!(outcome.complete);
        let want = lusail_store::eval::evaluate(&oracle, &q);
        assert_eq!(outcome.solutions.canonicalize(), want.canonicalize());
        assert_eq!(outcome.solutions.len(), 20);
    }

    #[test]
    fn bound_join_request_count_scales_with_bindings() {
        let (fed, _) = fed_and_oracle();
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let engine = FedX::new(FedXConfig {
            block_size: 5,
            use_cache: true,
        });
        let before = fed.stats_snapshot();
        engine.execute(&fed, &q).unwrap();
        let window = fed.stats_snapshot().since(&before);
        // First unit: 2 selects. Second unit: 20 bindings / 5 per block =
        // 4 blocks × 2 endpoints = 8 selects. Plus 4 ASKs.
        assert_eq!(window.select_requests, 10);
        assert_eq!(window.ask_requests, 4);
    }

    #[test]
    fn optional_matches_oracle() {
        let (fed, oracle) = fed_and_oracle();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?m . OPTIONAL { ?m <http://x/q> ?o } }",
            fed.dict(),
        )
        .unwrap();
        let engine = FedX::default();
        let got = engine.execute(&fed, &q).unwrap().solutions;
        let want = lusail_store::eval::evaluate(&oracle, &q);
        assert_eq!(got.canonicalize(), want.canonicalize());
    }

    #[test]
    fn limit_cutoff_stops_early() {
        let (fed, _) = fed_and_oracle();
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o } LIMIT 2",
            fed.dict(),
        )
        .unwrap();
        let engine = FedX::new(FedXConfig {
            block_size: 2,
            use_cache: true,
        });
        let before = fed.stats_snapshot();
        let got = engine.execute(&fed, &q).unwrap().solutions;
        let window = fed.stats_snapshot().since(&before);
        assert_eq!(got.len(), 2);
        // Without the cutoff this would be 2 + 10*2 = 22 selects; with it,
        // far fewer.
        assert!(
            window.select_requests < 10,
            "cutoff did not engage: {} selects",
            window.select_requests
        );
    }
}
