//! A SPLENDID-style engine (Görlitz & Staab, COLD 2011).
//!
//! SPLENDID is the paper's index-based baseline. It requires a
//! **preprocessing pass** that builds VOID-style statistics for every
//! endpoint — per-predicate triple counts and distinct subject/object
//! counts. The paper reports this pass costing 25 s (QFed) to 3,513 s
//! (LargeRDFBench) and uses it to argue for index-free designs; the
//! [`VoidIndex::build`] implementation here scans every endpoint store the
//! same way, and the `preprocessing_cost` harness times it.
//!
//! Query processing: source selection from the index (predicate presence,
//! with `ASK` verification for constant subjects/objects), greedy
//! cost-ordered joins using index cardinalities, and a per-join choice
//! between *hash join* (retrieve both sides independently, in parallel)
//! and *bind join* (one request **per binding** — SPLENDID does not block
//! bindings like FedX, which is why it collapses on large intermediate
//! results, as the paper observes).

use lusail_core::cache::ProbeCache;
use lusail_core::exec::Net;
use lusail_core::source_selection::SourceMap;
use lusail_endpoint::{
    EndpointId, ExecOptions, FederatedEngine, Federation, FederationError, LocalEndpoint,
    QueryOutcome, RequestKind, RequestPolicy, SystemClock, TraceEvent,
};
use lusail_rdf::{FxHashMap, TermId};
use lusail_sparql::ast::{GroupPattern, Query, TriplePattern, ValuesBlock};
use lusail_sparql::SolutionSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// VOID-style statistics for one endpoint.
#[derive(Debug, Clone, Default)]
pub struct VoidDescription {
    /// Total triples.
    pub triples: u64,
    /// Per-predicate: (triples, distinct subjects, distinct objects).
    pub predicates: FxHashMap<TermId, (u64, u64, u64)>,
}

/// The preprocessing product: a VOID description per endpoint.
#[derive(Debug, Clone, Default)]
pub struct VoidIndex {
    /// One description per endpoint id.
    pub descriptions: Vec<VoidDescription>,
    /// Wall time the preprocessing pass took.
    pub build_time: Duration,
}

impl VoidIndex {
    /// Scans every endpoint and collects its VOID statistics. This is the
    /// pass whose cost the paper contrasts with index-free startup; it
    /// reads every endpoint's full data (here via the [`LocalEndpoint`]
    /// store handle, standing in for the dump/endpoint crawl the real
    /// system performs).
    pub fn build(endpoints: &[&LocalEndpoint]) -> Self {
        let t0 = Instant::now();
        let mut descriptions = Vec::with_capacity(endpoints.len());
        for ep in endpoints {
            let store = ep.store();
            let mut d = VoidDescription {
                triples: store.len() as u64,
                predicates: FxHashMap::default(),
            };
            for (p, stats) in store.predicates() {
                let subjects = store.distinct_subjects(p);
                let objects = store.distinct_objects(p);
                d.predicates.insert(p, (stats.triples, subjects, objects));
            }
            descriptions.push(d);
        }
        VoidIndex {
            descriptions,
            build_time: t0.elapsed(),
        }
    }

    /// Endpoints whose description contains the predicate.
    fn sources_for_predicate(&self, p: TermId) -> Vec<EndpointId> {
        self.descriptions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.predicates.contains_key(&p))
            .map(|(i, _)| i)
            .collect()
    }

    /// Index-based cardinality estimate of a pattern at one endpoint.
    fn estimate(&self, tp: &TriplePattern, ep: EndpointId) -> f64 {
        let d = &self.descriptions[ep];
        match tp.p.as_const() {
            Some(p) => match d.predicates.get(&p) {
                Some(&(triples, subjects, objects)) => {
                    let mut est = triples as f64;
                    if !tp.s.is_var() {
                        est /= subjects.max(1) as f64;
                    }
                    if !tp.o.is_var() {
                        est /= objects.max(1) as f64;
                    }
                    est.max(1.0)
                }
                None => 0.0,
            },
            None => d.triples as f64,
        }
    }
}

/// SPLENDID tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SplendidConfig {
    /// Use bind join when the bound side's estimated bindings are below
    /// this; otherwise hash join (full retrieval).
    pub bind_join_threshold: f64,
}

impl Default for SplendidConfig {
    fn default() -> Self {
        SplendidConfig {
            bind_join_threshold: 120.0,
        }
    }
}

/// The SPLENDID-style engine. Holds the prebuilt [`VoidIndex`].
pub struct Splendid {
    index: VoidIndex,
    config: SplendidConfig,
    policy: RequestPolicy,
    ask_cache: ProbeCache<bool>,
}

impl Splendid {
    /// Creates the engine from a prebuilt index.
    pub fn new(index: VoidIndex) -> Self {
        Splendid::with_config(index, SplendidConfig::default())
    }

    /// Creates the engine with custom configuration.
    pub fn with_config(index: VoidIndex, config: SplendidConfig) -> Self {
        Splendid {
            index,
            config,
            policy: RequestPolicy::default(),
            ask_cache: ProbeCache::new(true),
        }
    }

    /// Replaces the retry/backoff/deadline policy for remote requests.
    pub fn with_policy(mut self, policy: RequestPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The index build time (reported by the preprocessing harness).
    pub fn preprocessing_time(&self) -> Duration {
        self.index.build_time
    }

    /// Index-driven source selection: predicate presence, narrowed by ASK
    /// for constant-bearing patterns (mirroring SPLENDID's handling of
    /// `owl:sameAs`-style lookups).
    fn select_sources(&self, fed: &Federation, pattern: &GroupPattern, net: &Net) -> SourceMap {
        let mut map = SourceMap::default();
        for tp in pattern.all_triples() {
            let candidates = match tp.p.as_const() {
                Some(p) => self.index.sources_for_predicate(p),
                None => fed.logical_ids(),
            };
            let sources = if tp.bound_positions() > 1 && candidates.len() > 1 {
                // Verify constants with ASK; a failed probe keeps the
                // candidate (assume relevant — never loses answers).
                let tasks: Vec<(EndpointId, ())> = candidates.iter().map(|&ep| (ep, ())).collect();
                let tp_clone = tp.clone();
                let results = net.handler.run(fed, tasks, move |ep_id, ep, _| {
                    let q = Query::ask(GroupPattern::bgp(vec![tp_clone.clone()]));
                    net.client
                        .request_kind(ep_id, RequestKind::Ask, || ep.ask(&q))
                        .unwrap_or(true)
                });
                results
                    .into_iter()
                    .filter(|(_, _, ok)| *ok)
                    .map(|(ep, _, _)| ep)
                    .collect()
            } else {
                candidates
            };
            map.push_entry(tp.clone(), sources);
        }
        map
    }

    /// Executes a query. A federated `SELECT (COUNT(*) AS ?c)` is
    /// normalized to a mediator-side aggregate so the count is global.
    /// Endpoint failures degrade into an incomplete [`QueryOutcome`];
    /// only an empty federation is an `Err`.
    pub fn execute(
        &self,
        fed: &Federation,
        query: &Query,
    ) -> Result<QueryOutcome, FederationError> {
        self.execute_with(fed, query, &ExecOptions::default())
    }

    /// [`Splendid::execute`] under explicit [`ExecOptions`]: request-level
    /// tracing (an enabled trace always ends with
    /// [`TraceEvent::QueryFinished`]), the worker budget for per-endpoint
    /// dispatch, and an optional deadline overriding the policy's query
    /// budget.
    pub fn execute_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        if fed.is_empty() {
            return Err(FederationError::EmptyFederation);
        }
        let mut policy = self.policy;
        if let Some(deadline) = opts.deadline {
            policy.query_budget = deadline;
        }
        let net = Net::build(
            policy,
            Arc::new(SystemClock::default()),
            opts.trace.clone(),
            opts.thread_budget(),
            opts.on_health_transition.clone(),
        );
        let loss = AtomicBool::new(false);
        let solutions = self.execute_inner(fed, query, &net, &loss);
        let complete = !loss.load(Ordering::Relaxed) && !net.degradation.data_loss();
        opts.trace.emit(|| TraceEvent::QueryFinished {
            rows: solutions.len(),
            complete,
        });
        Ok(QueryOutcome {
            solutions,
            complete,
            failures: net.client.report(fed),
        })
    }

    fn execute_inner(
        &self,
        fed: &Federation,
        query: &Query,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        if let Some(rewritten) = query.count_star_as_aggregate() {
            return self.execute_inner(fed, &rewritten, net, loss);
        }
        let sources = self.select_sources(fed, &query.pattern, net);
        if sources.any_required_empty(&query.pattern.triples) {
            return SolutionSet::empty(query.output_vars());
        }
        let solutions = self.evaluate_group(fed, &query.pattern, &sources, net, loss);
        lusail_store::eval::apply_modifiers(solutions, query, fed.dict())
    }

    fn evaluate_group(
        &self,
        fed: &Federation,
        group: &GroupPattern,
        sources: &SourceMap,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        // Order patterns greedily by total index estimate.
        let mut order: Vec<usize> = (0..group.triples.len()).collect();
        let total_est = |i: usize| -> f64 {
            let tp = &group.triples[i];
            sources
                .sources(tp)
                .iter()
                .map(|&ep| self.index.estimate(tp, ep))
                .sum()
        };
        order.sort_by(|&a, &b| total_est(a).total_cmp(&total_est(b)));

        let mut current = match group.values {
            Some(ref v) => SolutionSet {
                vars: v.vars.clone(),
                rows: v.rows.clone(),
            },
            None => SolutionSet {
                vars: Vec::new(),
                rows: vec![Vec::new()],
            },
        };
        for &i in &order {
            let tp = &group.triples[i];
            let srcs = sources.sources(tp);
            let shared: Vec<String> = current
                .vars
                .iter()
                .filter(|v| tp.mentions(v))
                .cloned()
                .collect();
            let use_bind = !shared.is_empty()
                && !current.is_empty()
                && (current.len() as f64) < self.config.bind_join_threshold;
            let fetched = if use_bind {
                // SPLENDID's bind join: one request per binding (no
                // blocking), per relevant endpoint.
                self.bind_fetch(fed, &current, tp, &shared, srcs, net, loss)
            } else {
                // Hash join: full parallel retrieval of the pattern.
                let tasks: Vec<(EndpointId, ())> = srcs.iter().map(|&ep| (ep, ())).collect();
                let q = pattern_query(tp);
                let results = net.handler.run(fed, tasks, move |ep_id, _, _| {
                    net.select_or_lose(fed, ep_id, &q, pattern_vars(tp))
                });
                let mut out = SolutionSet::empty(pattern_vars(tp));
                for (_, _, sols) in results {
                    out.append(sols);
                }
                out
            };
            current = current.hash_join(&fetched);
            if current.is_empty() {
                break;
            }
        }

        current = lusail_store::eval::join_nested_groups(current, group, fed.dict(), |sub| {
            self.evaluate_group(fed, sub, sources, net, loss)
        });
        lusail_store::eval::retain_filtered(&mut current, &group.filters, fed.dict());
        current
    }

    /// One request per distinct binding tuple per endpoint.
    #[allow(clippy::too_many_arguments)]
    fn bind_fetch(
        &self,
        fed: &Federation,
        current: &SolutionSet,
        tp: &TriplePattern,
        shared: &[String],
        srcs: &[EndpointId],
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        let mut out = SolutionSet::empty(pattern_vars(tp));
        for tuple in current.distinct_tuples(shared) {
            let vb = ValuesBlock {
                vars: shared.to_vec(),
                rows: vec![tuple],
            };
            let mut pattern = GroupPattern::bgp(vec![tp.clone()]);
            pattern.values = Some(vb);
            let q = Query {
                form: lusail_sparql::ast::QueryForm::Select,
                distinct: false,
                projection: pattern_vars(tp),
                pattern,
                aggregates: Vec::new(),
                group_by: Vec::new(),
                having: Vec::new(),
                order_by: Vec::new(),
                limit: None,
            };
            let tasks: Vec<(EndpointId, ())> = srcs.iter().map(|&ep| (ep, ())).collect();
            let results = net.handler.run(fed, tasks, |ep_id, _, _| {
                match net.client.select_failover(fed, ep_id, &q) {
                    Ok((_, part)) => Some(part),
                    Err(_) => {
                        loss.store(true, Ordering::Relaxed);
                        None
                    }
                }
            });
            for (_, _, part) in results {
                if let Some(part) = part {
                    out.append(part);
                }
            }
        }
        out.dedup();
        out
    }
}

fn pattern_vars(tp: &TriplePattern) -> Vec<String> {
    lusail_sparql::ast::collect_pattern_vars(std::iter::once(tp))
}

fn pattern_query(tp: &TriplePattern) -> Query {
    Query {
        form: lusail_sparql::ast::QueryForm::Select,
        distinct: false,
        projection: pattern_vars(tp),
        pattern: GroupPattern::bgp(vec![tp.clone()]),
        aggregates: Vec::new(),
        group_by: Vec::new(),
        having: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    }
}

impl FederatedEngine for Splendid {
    fn engine_name(&self) -> &str {
        "SPLENDID"
    }

    fn run_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        self.execute_with(fed, query, opts)
    }

    fn reset(&self) {
        self.ask_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::SparqlEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn build() -> (Federation, Vec<Arc<LocalEndpoint>>, TripleStore) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        let p = Term::iri("http://x/p");
        let q = Term::iri("http://x/q");
        for i in 0..12 {
            let s = Term::iri(format!("http://x/s{i}"));
            let m = Term::iri(format!("http://x/m{i}"));
            let o = Term::iri(format!("http://x/o{i}"));
            a.insert_terms(&s, &p, &m);
            oracle.insert_terms(&s, &p, &m);
            if i % 3 == 0 {
                b.insert_terms(&m, &q, &o);
                oracle.insert_terms(&m, &q, &o);
            }
        }
        let ea = Arc::new(LocalEndpoint::new("A", a));
        let eb = Arc::new(LocalEndpoint::new("B", b));
        let mut fed = Federation::new(dict);
        fed.add(Arc::clone(&ea) as Arc<dyn SparqlEndpoint>);
        fed.add(Arc::clone(&eb) as Arc<dyn SparqlEndpoint>);
        (fed, vec![ea, eb], oracle)
    }

    #[test]
    fn void_index_statistics() {
        let (_, eps, _) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let index = VoidIndex::build(&refs);
        assert_eq!(index.descriptions.len(), 2);
        assert_eq!(index.descriptions[0].triples, 12);
        assert_eq!(index.descriptions[1].triples, 4);
        let p = eps[0]
            .store()
            .dict()
            .lookup(&Term::iri("http://x/p"))
            .unwrap();
        assert_eq!(index.descriptions[0].predicates[&p], (12, 12, 12));
        assert!(!index.descriptions[1].predicates.contains_key(&p));
    }

    #[test]
    fn chain_query_matches_oracle() {
        let (fed, eps, oracle) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let engine = Splendid::new(VoidIndex::build(&refs));
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let outcome = engine.execute(&fed, &q).unwrap();
        assert!(outcome.complete);
        let want = lusail_store::eval::evaluate(&oracle, &q);
        assert_eq!(outcome.solutions.canonicalize(), want.canonicalize());
        assert_eq!(outcome.solutions.len(), 4);
    }

    #[test]
    fn index_source_selection_avoids_asks_for_simple_patterns() {
        let (fed, eps, _) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let engine = Splendid::new(VoidIndex::build(&refs));
        let q = parse_query("SELECT ?s ?m WHERE { ?s <http://x/p> ?m }", fed.dict()).unwrap();
        let before = fed.stats_snapshot();
        engine.execute(&fed, &q).unwrap();
        let window = fed.stats_snapshot().since(&before);
        assert_eq!(window.ask_requests, 0); // pure index-based selection
        assert_eq!(window.select_requests, 1); // only endpoint A is relevant
    }

    #[test]
    fn bind_join_issues_per_binding_requests() {
        let (fed, eps, _) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let engine = Splendid::with_config(
            VoidIndex::build(&refs),
            SplendidConfig {
                bind_join_threshold: 1_000.0,
            },
        );
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let before = fed.stats_snapshot();
        engine.execute(&fed, &q).unwrap();
        let window = fed.stats_snapshot().since(&before);
        // q side is smaller (4 triples at B): evaluated first with 1
        // request; then p side bind-joins with one request per binding (4)
        // at endpoint A.
        assert_eq!(window.select_requests, 1 + 4);
    }
}
