//! A HiBISCuS-style source-pruning add-on (Saleem & Ngonga Ngomo,
//! ESWC 2014), run on top of the FedX executor as in the paper.
//!
//! HiBISCuS summarizes each endpoint by the **URI authorities** (scheme +
//! host) of the subjects and objects of every predicate. At query time,
//! after ASK source selection, an endpoint is pruned from a pattern's
//! source list when the authorities it could contribute for a join
//! variable cannot intersect the authorities the joining patterns can
//! contribute. This reduces the fan-out of the bound joins but — unlike
//! Lusail's LADE — says nothing about whether the *instances* are
//! co-located, so pattern-at-a-time execution remains.

use crate::common::{bound_join, evaluate_unbound, exclusive_groups, order_units, push_filters};
use lusail_core::cache::ProbeCache;
use lusail_core::exec::Net;
use lusail_core::source_selection::{select_sources, SourceMap};
use lusail_endpoint::{
    EndpointId, ExecOptions, FederatedEngine, Federation, FederationError, LocalEndpoint,
    QueryOutcome, RequestPolicy, SystemClock, TraceEvent,
};
use lusail_rdf::{FxHashMap, FxHashSet, TermId};
use lusail_sparql::ast::{GroupPattern, Query, TriplePattern};
use lusail_sparql::SolutionSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Subject and object authority sets for one predicate at one endpoint.
type AuthoritySets = (FxHashSet<String>, FxHashSet<String>);

/// Authority sets per (endpoint, predicate).
#[derive(Debug, Clone, Default)]
pub struct HibiscusIndex {
    /// Per endpoint: predicate → (subject authorities, object authorities).
    per_endpoint: Vec<FxHashMap<TermId, AuthoritySets>>,
    /// Preprocessing wall time.
    pub build_time: Duration,
}

impl HibiscusIndex {
    /// Scans every endpoint and collects authority summaries.
    pub fn build(endpoints: &[&LocalEndpoint]) -> Self {
        let t0 = Instant::now();
        let mut per_endpoint = Vec::with_capacity(endpoints.len());
        for ep in endpoints {
            let store = ep.store();
            let dict = store.dict();
            let mut summary: FxHashMap<TermId, AuthoritySets> = FxHashMap::default();
            for (p, _) in store.predicates() {
                let mut subj: FxHashSet<String> = FxHashSet::default();
                let mut obj: FxHashSet<String> = FxHashSet::default();
                store.scan(None, Some(p), None, |t| {
                    // Terms without a URI authority (blank nodes, urn:,
                    // literals) are summarized as the wildcard "*": they
                    // can match anything, so the endpoint must never be
                    // pruned on their account.
                    match dict.decode(t.s).authority() {
                        Some(a) => subj.insert(a.to_string()),
                        None => subj.insert("*".to_string()),
                    };
                    match dict.decode(t.o).authority() {
                        Some(a) => obj.insert(a.to_string()),
                        None => obj.insert("*".to_string()),
                    };
                    true
                });
                summary.insert(p, (subj, obj));
            }
            per_endpoint.push(summary);
        }
        HibiscusIndex {
            per_endpoint,
            build_time: t0.elapsed(),
        }
    }

    fn subject_authorities(&self, ep: EndpointId, p: TermId) -> Option<&FxHashSet<String>> {
        self.per_endpoint.get(ep)?.get(&p).map(|(s, _)| s)
    }

    fn object_authorities(&self, ep: EndpointId, p: TermId) -> Option<&FxHashSet<String>> {
        self.per_endpoint.get(ep)?.get(&p).map(|(_, o)| o)
    }

    /// Prunes a source map: for every join variable between two constant-
    /// predicate patterns, an endpoint survives for the subject-side
    /// pattern only if its subject authorities intersect the union of the
    /// object authorities the other pattern can contribute (and vice
    /// versa).
    pub fn prune(&self, triples: &[TriplePattern], sources: &SourceMap) -> SourceMap {
        let mut pruned: Vec<(TriplePattern, Vec<EndpointId>)> = triples
            .iter()
            .map(|tp| (tp.clone(), sources.sources(tp).to_vec()))
            .collect();

        // Collect join variables with their (pattern, role) occurrences.
        for i in 0..triples.len() {
            for j in 0..triples.len() {
                if i == j {
                    continue;
                }
                let (Some(pi), Some(pj)) = (triples[i].p.as_const(), triples[j].p.as_const())
                else {
                    continue;
                };
                // Variable as object of i and subject of j: prune j's
                // sources whose subject authorities miss all of i's object
                // authorities.
                let join_var = triples[i]
                    .o
                    .as_var()
                    .filter(|v| triples[j].s.as_var() == Some(v));
                if join_var.is_none() {
                    continue;
                }
                let mut contributed: FxHashSet<&String> = FxHashSet::default();
                for &ep in sources.sources(&triples[i]) {
                    if let Some(auths) = self.object_authorities(ep, pi) {
                        contributed.extend(auths.iter());
                    }
                }
                // No info, or a wildcard contributor (non-URI objects):
                // cannot prune safely.
                if contributed.is_empty() || contributed.iter().any(|a| *a == "*") {
                    continue;
                }
                let (_, srcs_j) = &mut pruned[j];
                srcs_j.retain(|&ep| {
                    self.subject_authorities(ep, pj).is_none_or(|auths| {
                        auths.iter().any(|a| a == "*" || contributed.contains(a))
                    })
                });
            }
        }

        let mut out = SourceMap::default();
        for (tp, srcs) in pruned {
            out.push_entry(tp, srcs);
        }
        out
    }
}

/// HiBISCuS = authority pruning + the FedX execution strategy.
pub struct HiBisCus {
    index: HibiscusIndex,
    block_size: usize,
    policy: RequestPolicy,
    ask_cache: ProbeCache<bool>,
}

impl HiBisCus {
    /// Creates the engine from a prebuilt index (FedX's default block
    /// size).
    pub fn new(index: HibiscusIndex) -> Self {
        HiBisCus {
            index,
            block_size: 15,
            policy: RequestPolicy::default(),
            ask_cache: ProbeCache::new(true),
        }
    }

    /// Replaces the retry/backoff/deadline policy for remote requests.
    pub fn with_policy(mut self, policy: RequestPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Index build time.
    pub fn preprocessing_time(&self) -> Duration {
        self.index.build_time
    }

    /// Executes a query. A federated `SELECT (COUNT(*) AS ?c)` is
    /// normalized to a mediator-side aggregate so the count is global.
    /// Endpoint failures degrade into an incomplete [`QueryOutcome`];
    /// only an empty federation is an `Err`.
    pub fn execute(
        &self,
        fed: &Federation,
        query: &Query,
    ) -> Result<QueryOutcome, FederationError> {
        self.execute_with(fed, query, &ExecOptions::default())
    }

    /// [`HiBisCus::execute`] under explicit [`ExecOptions`]: request-level
    /// tracing (an enabled trace always ends with
    /// [`TraceEvent::QueryFinished`]), the worker budget for per-endpoint
    /// dispatch, and an optional deadline overriding the policy's query
    /// budget.
    pub fn execute_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        if fed.is_empty() {
            return Err(FederationError::EmptyFederation);
        }
        let mut policy = self.policy;
        if let Some(deadline) = opts.deadline {
            policy.query_budget = deadline;
        }
        let net = Net::build(
            policy,
            Arc::new(SystemClock::default()),
            opts.trace.clone(),
            opts.thread_budget(),
            opts.on_health_transition.clone(),
        );
        let loss = AtomicBool::new(false);
        let solutions = self.execute_inner(fed, query, &net, &loss);
        let complete = !loss.load(Ordering::Relaxed) && !net.degradation.data_loss();
        opts.trace.emit(|| TraceEvent::QueryFinished {
            rows: solutions.len(),
            complete,
        });
        Ok(QueryOutcome {
            solutions,
            complete,
            failures: net.client.report(fed),
        })
    }

    fn execute_inner(
        &self,
        fed: &Federation,
        query: &Query,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        if let Some(rewritten) = query.count_star_as_aggregate() {
            return self.execute_inner(fed, &rewritten, net, loss);
        }
        let raw_sources = select_sources(fed, &query.pattern, &self.ask_cache, net);
        if raw_sources.any_required_empty(&query.pattern.triples) {
            return SolutionSet::empty(query.output_vars());
        }
        // The first-k cutoff is unsound under ORDER BY, DISTINCT, and
        // aggregation: all must see every row before truncation.
        let cutoff = if query.order_by.is_empty() && !query.distinct && query.aggregates.is_empty()
        {
            query.limit
        } else {
            None
        };
        let solutions = self.evaluate_group(fed, &query.pattern, cutoff, &raw_sources, net, loss);
        lusail_store::eval::apply_modifiers(solutions, query, fed.dict())
    }

    fn evaluate_group(
        &self,
        fed: &Federation,
        group: &GroupPattern,
        limit: Option<usize>,
        raw_sources: &SourceMap,
        net: &Net,
        loss: &AtomicBool,
    ) -> SolutionSet {
        // Authority pruning before unit formation: fewer sources can mean
        // more exclusive groups. Pruning only considers *this* group's
        // conjunctive patterns — joins against OPTIONAL/UNION patterns
        // must not prune a required pattern's sources (the optional side
        // may simply not match).
        let sources = self.index.prune(&group.triples, raw_sources);

        let mut units = exclusive_groups(&group.triples, &sources);
        let global_filters = push_filters(&group.filters, &mut units);
        let units = order_units(units);
        let simple = group.optionals.is_empty()
            && group.unions.is_empty()
            && group.not_exists.is_empty()
            && global_filters.is_empty();

        let mut current = match group.values {
            Some(ref v) => SolutionSet {
                vars: v.vars.clone(),
                rows: v.rows.clone(),
            },
            None => SolutionSet {
                vars: Vec::new(),
                rows: vec![Vec::new()],
            },
        };
        let n_units = units.len();
        for (i, unit) in units.iter().enumerate() {
            let is_first = current.vars.is_empty() && current.len() == 1;
            if is_first {
                current = evaluate_unbound(fed, unit, net, loss);
            } else {
                let cutoff = if simple && i + 1 == n_units {
                    limit
                } else {
                    None
                };
                current = bound_join(fed, &current, unit, self.block_size, cutoff, net, loss);
            }
            if current.is_empty() {
                break;
            }
        }
        current = lusail_store::eval::join_nested_groups(current, group, fed.dict(), |sub| {
            self.evaluate_group(fed, sub, None, raw_sources, net, loss)
        });
        lusail_store::eval::retain_filtered(&mut current, &global_filters, fed.dict());
        current
    }
}

impl FederatedEngine for HiBisCus {
    fn engine_name(&self) -> &str {
        "HiBISCuS"
    }

    fn run_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        self.execute_with(fed, query, opts)
    }

    fn reset(&self) {
        self.ask_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::SparqlEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    /// Endpoint A links into authority `http://b.org`; endpoint C uses a
    /// different authority entirely, so it can be pruned for joins with A.
    fn build() -> (Federation, Vec<Arc<LocalEndpoint>>, TripleStore) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let p = Term::iri("http://x/p");
        let q = Term::iri("http://x/q");

        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        let mut c = TripleStore::new(Arc::clone(&dict));
        for i in 0..6 {
            let s = Term::iri(format!("http://a.org/s{i}"));
            let m = Term::iri(format!("http://b.org/m{i}"));
            a.insert_terms(&s, &p, &m);
            oracle.insert_terms(&s, &p, &m);
            let o = Term::iri(format!("http://b.org/o{i}"));
            b.insert_terms(&m, &q, &o);
            oracle.insert_terms(&m, &q, &o);
            // C has q-triples with unrelated authority.
            let cs = Term::iri(format!("http://c.org/z{i}"));
            let co = Term::iri(format!("http://c.org/w{i}"));
            c.insert_terms(&cs, &q, &co);
            oracle.insert_terms(&cs, &q, &co);
        }
        let ea = Arc::new(LocalEndpoint::new("A", a));
        let eb = Arc::new(LocalEndpoint::new("B", b));
        let ec = Arc::new(LocalEndpoint::new("C", c));
        let mut fed = Federation::new(dict);
        fed.add(Arc::clone(&ea) as Arc<dyn SparqlEndpoint>);
        fed.add(Arc::clone(&eb) as Arc<dyn SparqlEndpoint>);
        fed.add(Arc::clone(&ec) as Arc<dyn SparqlEndpoint>);
        (fed, vec![ea, eb, ec], oracle)
    }

    #[test]
    fn pruning_drops_disjoint_authority_sources() {
        let (fed, eps, _) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let index = HibiscusIndex::build(&refs);
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let net = Net::default();
        let cache = ProbeCache::new(true);
        let raw = select_sources(&fed, &q.pattern, &cache, &net);
        // Raw: q-pattern relevant at B and C.
        assert_eq!(raw.sources(&q.pattern.triples[1]), &[1, 2]);
        let pruned = index.prune(&q.pattern.triples, &raw);
        // Pruned: C's subject authorities (c.org) don't intersect A's
        // object authorities (b.org).
        assert_eq!(pruned.sources(&q.pattern.triples[1]), &[1]);
    }

    #[test]
    fn results_match_oracle_despite_pruning() {
        let (fed, eps, oracle) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let engine = HiBisCus::new(HibiscusIndex::build(&refs));
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let outcome = engine.execute(&fed, &q).unwrap();
        assert!(outcome.complete);
        let want = lusail_store::eval::evaluate(&oracle, &q);
        assert_eq!(outcome.solutions.canonicalize(), want.canonicalize());
        assert_eq!(outcome.solutions.len(), 6);
    }

    #[test]
    fn pruning_reduces_requests_vs_fedx() {
        let (fed, eps, _) = build();
        let refs: Vec<&LocalEndpoint> = eps.iter().map(|e| e.as_ref()).collect();
        let q = parse_query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();

        let fedx = crate::fedx::FedX::default();
        let before = fed.stats_snapshot();
        fedx.execute(&fed, &q).unwrap();
        let fedx_requests = fed.stats_snapshot().since(&before).select_requests;

        let hib = HiBisCus::new(HibiscusIndex::build(&refs));
        let before = fed.stats_snapshot();
        hib.execute(&fed, &q).unwrap();
        let hib_requests = fed.stats_snapshot().since(&before).select_requests;
        assert!(
            hib_requests < fedx_requests,
            "hibiscus {hib_requests} !< fedx {fedx_requests}"
        );
    }
}
