//! Re-implementations of the federated SPARQL systems the paper compares
//! against.
//!
//! The paper evaluates Lusail against three systems; each is rebuilt here
//! from its published algorithm so the comparison exercises the same
//! *strategies* the original Java codebases implement:
//!
//! * [`fedx`] — **FedX** (Schwarte et al., ISWC 2011): index-free. ASK
//!   source selection with caching, *exclusive groups* (patterns whose
//!   single relevant source coincides), variable-counting join ordering,
//!   and block nested-loop **bound joins** that ship intermediate bindings
//!   in fixed-size blocks — the triple-pattern-at-a-time behaviour whose
//!   request explosion Fig. 3 of the paper demonstrates.
//! * [`splendid`] — **SPLENDID** (Görlitz & Staab, COLD 2011):
//!   index-based. A VOID-style statistics index built in a preprocessing
//!   pass (whose cost the paper reports: seconds to hours), DP-style join
//!   ordering over index cardinalities, and per-join choice between hash
//!   join (independent retrieval) and bind join.
//! * [`hibiscus`] — **HiBISCuS** (Saleem & Ngonga Ngomo, ESWC 2014): an
//!   add-on that prunes sources using per-predicate URI-authority
//!   summaries; run (as in the paper) on top of the FedX executor.
//!
//! All three implement [`FederatedEngine`](lusail_endpoint::FederatedEngine)
//! and return results equivalent to the centralized evaluation of the
//! query over the union of all endpoint graphs (verified in the
//! workspace's integration tests).

pub mod common;
pub mod fedx;
pub mod hibiscus;
pub mod splendid;

pub use fedx::{FedX, FedXConfig};
pub use hibiscus::{HiBisCus, HibiscusIndex};
pub use splendid::{Splendid, VoidIndex};
