//! Fault injection: wrap any endpoint in a [`FlakyEndpoint`] that fails,
//! times out, or slows down a seeded fraction of requests.
//!
//! This is how the reproduction tests the engines against the unreliable
//! WANs the paper's geo-distributed setting (Fig. 14) implies. Injection is
//! fully deterministic: the same seed produces the same fault sequence on
//! every platform, and scripted mode replays an exact per-request schedule
//! for unit tests of the retry machinery.

use crate::error::EndpointError;
use crate::network::{NetworkStats, StatsSnapshot};
use crate::{EndpointRef, SparqlEndpoint};
use lusail_sparql::{Query, SolutionSet};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A deterministic SplitMix64 stream (independent of the workload
/// generators so the endpoint crate stays dependency-free).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Describes how often and how an endpoint misbehaves.
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// Seed for the per-endpoint fault stream.
    pub seed: u64,
    /// Probability a request drops mid-flight ([`EndpointError::Interrupted`]).
    pub failure_rate: f64,
    /// Probability a request times out ([`EndpointError::Timeout`]).
    pub timeout_rate: f64,
    /// Probability a request is slowed down by [`FaultProfile::slowdown`]
    /// of extra virtual network time (the request still succeeds).
    pub slowdown_rate: f64,
    /// Extra virtual time charged on a slowdown.
    pub slowdown: Duration,
    /// If true, every request fails with [`EndpointError::Unavailable`] —
    /// the endpoint is permanently down.
    pub dead: bool,
    /// If nonzero, the endpoint serves its first `dead_after` requests
    /// normally (still subject to the rates above) and then goes
    /// permanently [`EndpointError::Unavailable`] — a primary killed
    /// mid-query.
    pub dead_after: u64,
}

impl Default for FaultProfile {
    /// A profile that never injects anything.
    fn default() -> Self {
        FaultProfile {
            seed: 0,
            failure_rate: 0.0,
            timeout_rate: 0.0,
            slowdown_rate: 0.0,
            slowdown: Duration::ZERO,
            dead: false,
            dead_after: 0,
        }
    }
}

impl FaultProfile {
    /// A profile injecting transient connection drops at the given rate.
    pub fn transient(seed: u64, failure_rate: f64) -> Self {
        FaultProfile {
            seed,
            failure_rate,
            ..FaultProfile::default()
        }
    }

    /// A permanently unavailable endpoint.
    pub fn dead() -> Self {
        FaultProfile {
            dead: true,
            ..FaultProfile::default()
        }
    }

    /// An endpoint that dies permanently after serving `n` requests —
    /// the "primary killed mid-query" scenario failover tests exercise.
    pub fn dies_after(n: u64) -> Self {
        FaultProfile {
            dead_after: n,
            ..FaultProfile::default()
        }
    }
}

/// Wraps an endpoint and injects faults per a [`FaultProfile`], or per an
/// explicit per-request script. Failed requests are counted both in the
/// request-kind counter (an attempt crossed the wire) and in the
/// `faults_injected` counter of the wrapper's stats.
pub struct FlakyEndpoint {
    inner: EndpointRef,
    profile: FaultProfile,
    rng: Mutex<SplitMix64>,
    script: Mutex<VecDeque<Option<EndpointError>>>,
    fault_stats: NetworkStats,
    /// Requests seen so far, for the `dead_after` kill switch.
    requests_seen: AtomicU64,
}

impl FlakyEndpoint {
    /// Wraps `inner`, injecting faults according to `profile`.
    pub fn new(inner: EndpointRef, profile: FaultProfile) -> Self {
        FlakyEndpoint {
            inner,
            rng: Mutex::new(SplitMix64::new(profile.seed)),
            profile,
            script: Mutex::new(VecDeque::new()),
            fault_stats: NetworkStats::default(),
            requests_seen: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` with an exact per-request schedule: entry `i` decides
    /// request `i` (`Some(e)` fails it, `None` passes it through). Once the
    /// script drains, the profile (here: no faults) takes over.
    pub fn scripted(
        inner: EndpointRef,
        script: impl IntoIterator<Item = Option<EndpointError>>,
    ) -> Self {
        let ep = FlakyEndpoint::new(inner, FaultProfile::default());
        ep.script.lock().unwrap().extend(script);
        ep
    }

    /// Appends entries to the fault script.
    pub fn push_script(&self, entries: impl IntoIterator<Item = Option<EndpointError>>) {
        self.script.lock().unwrap().extend(entries);
    }

    /// Decides one request's fate. `bump` records a failed attempt of the
    /// right request kind on the wrapper's stats.
    fn intercept(&self, bump: impl Fn(&NetworkStats)) -> Result<(), EndpointError> {
        let seen = self.requests_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let scripted = self.script.lock().unwrap().pop_front();
        let fault = match scripted {
            Some(decision) => decision,
            None => {
                if self.profile.dead
                    || (self.profile.dead_after > 0 && seen > self.profile.dead_after)
                {
                    Some(EndpointError::Unavailable)
                } else {
                    let mut rng = self.rng.lock().unwrap();
                    if rng.chance(self.profile.failure_rate) {
                        Some(EndpointError::Interrupted)
                    } else if rng.chance(self.profile.timeout_rate) {
                        Some(EndpointError::Timeout)
                    } else {
                        if rng.chance(self.profile.slowdown_rate) {
                            self.fault_stats.bump_slowdown();
                            self.fault_stats.record(0, 0, 0, self.profile.slowdown);
                        }
                        None
                    }
                }
            }
        };
        match fault {
            Some(e) => {
                bump(&self.fault_stats);
                self.fault_stats.bump_fault();
                Err(e)
            }
            None => Ok(()),
        }
    }
}

impl SparqlEndpoint for FlakyEndpoint {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn ask(&self, q: &Query) -> Result<bool, EndpointError> {
        self.intercept(|s| s.bump_ask())?;
        self.inner.ask(q)
    }

    fn select(&self, q: &Query) -> Result<SolutionSet, EndpointError> {
        self.intercept(|s| s.bump_select())?;
        self.inner.select(q)
    }

    fn count(&self, q: &Query) -> Result<u64, EndpointError> {
        self.intercept(|s| s.bump_count())?;
        self.inner.count(q)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.inner
            .stats_snapshot()
            .plus(&self.fault_stats.snapshot())
    }

    fn triple_count(&self) -> usize {
        self.inner.triple_count()
    }

    fn resident_bytes(&self) -> Option<u64> {
        self.inner.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn inner() -> (EndpointRef, Query) {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        st.insert_terms(
            &Term::iri("http://x/s"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/o"),
        );
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();
        (Arc::new(LocalEndpoint::new("A", st)), q)
    }

    #[test]
    fn seeded_injection_is_deterministic() {
        let outcomes = |seed| {
            let (ep, q) = inner();
            let flaky = FlakyEndpoint::new(ep, FaultProfile::transient(seed, 0.4));
            (0..64)
                .map(|_| flaky.select(&q).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8));
        assert!(outcomes(7).iter().any(|ok| !ok), "no fault ever injected");
        assert!(outcomes(7).iter().any(|ok| *ok), "every request failed");
    }

    #[test]
    fn scripted_faults_fire_in_order_then_pass_through() {
        let (ep, q) = inner();
        let flaky = FlakyEndpoint::scripted(
            ep,
            [
                Some(EndpointError::Interrupted),
                None,
                Some(EndpointError::Timeout),
            ],
        );
        assert_eq!(flaky.select(&q), Err(EndpointError::Interrupted));
        assert!(flaky.select(&q).is_ok());
        assert_eq!(flaky.ask(&q), Err(EndpointError::Timeout));
        assert!(flaky.count(&q).is_ok());
    }

    #[test]
    fn dead_profile_fails_everything() {
        let (ep, q) = inner();
        let flaky = FlakyEndpoint::new(ep, FaultProfile::dead());
        for _ in 0..3 {
            assert_eq!(flaky.select(&q), Err(EndpointError::Unavailable));
        }
    }

    #[test]
    fn faults_are_counted_as_requests_and_faults() {
        let (ep, q) = inner();
        let flaky = FlakyEndpoint::scripted(ep, [Some(EndpointError::Interrupted), None]);
        let _ = flaky.select(&q);
        let _ = flaky.select(&q);
        let s = flaky.stats_snapshot();
        // Both the failed attempt and the successful one count as selects.
        assert_eq!(s.select_requests, 2);
        assert_eq!(s.faults_injected, 1);
    }

    #[test]
    fn dies_after_serves_then_fails_permanently() {
        let (ep, q) = inner();
        let flaky = FlakyEndpoint::new(ep, FaultProfile::dies_after(2));
        assert!(flaky.select(&q).is_ok());
        assert!(flaky.ask(&q).is_ok());
        for _ in 0..3 {
            assert_eq!(flaky.select(&q), Err(EndpointError::Unavailable));
        }
        // Failed attempts still count as requests plus injected faults.
        let s = flaky.stats_snapshot();
        assert_eq!(s.faults_injected, 3);
    }

    #[test]
    fn slowdowns_add_virtual_time() {
        let (ep, q) = inner();
        let profile = FaultProfile {
            seed: 3,
            slowdown_rate: 1.0,
            slowdown: Duration::from_millis(25),
            ..FaultProfile::default()
        };
        let flaky = FlakyEndpoint::new(ep, profile);
        assert!(flaky.select(&q).is_ok());
        let s = flaky.stats_snapshot();
        assert_eq!(s.slowdowns_injected, 1);
        assert!(s.virtual_time_ns >= 25_000_000);
    }
}
