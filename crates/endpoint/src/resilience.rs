//! The resilience layer every engine routes remote calls through:
//! retries with exponential backoff and jitter, per-request deadlines, a
//! per-query deadline budget, and a per-endpoint circuit breaker.
//!
//! A [`ResilientClient`] is created per query execution. Each endpoint's
//! circuit moves Closed → Open (after `trip_threshold` consecutive
//! failures) → HalfOpen (once `open_cooldown` has elapsed on the
//! injectable [`Clock`]) and back: the half-open state admits a single
//! probe request whose success re-closes the circuit, so an endpoint
//! that recovers mid-query is re-admitted instead of staying dead
//! forever. When the federation replicates partitions, data-bearing
//! selects additionally *fail over*: a request that exhausts its retries
//! on one replica-group member is transparently re-issued against the
//! next healthy member ([`ResilientClient::select_failover`]), and slow
//! primaries are *hedged* — demoted behind a healthy replica when their
//! last observed latency exceeds the policy's hedge threshold. Time is
//! abstracted behind [`Clock`] so every schedule is testable without
//! real sleeping.

use crate::error::{EndpointError, EndpointFailure};
use crate::fault::SplitMix64;
use crate::federation::{EndpointId, Federation};
use crate::trace::{HealthState, RequestKind, TraceEvent, TraceSink};
use lusail_sparql::{Query, SolutionSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic time source the client schedules retries against.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;
    /// Blocks (or pretends to block) for the given duration.
    fn sleep(&self, d: Duration);
}

/// The real clock: `Instant`-based, actually sleeps.
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if d > Duration::ZERO {
            std::thread::sleep(d);
        }
    }
}

/// A manually-advanced clock for deterministic tests: `sleep` advances
/// virtual time instantly, so a test can assert the exact backoff
/// schedule the client produced.
#[derive(Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    /// Advances virtual time.
    pub fn advance(&self, d: Duration) {
        *self.now.lock().unwrap() += d;
    }

    /// Virtual time elapsed so far (sum of all sleeps and advances).
    pub fn elapsed(&self) -> Duration {
        *self.now.lock().unwrap()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock().unwrap()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// Retry/backoff/deadline policy for remote requests.
#[derive(Debug, Clone, Copy)]
pub struct RequestPolicy {
    /// Retries per request after the first attempt (transient errors only).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per subsequent retry.
    pub backoff_multiplier: f64,
    /// Cap on any single backoff.
    pub max_backoff: Duration,
    /// Jitter fraction: each backoff is scaled by a deterministic factor
    /// uniform in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Budget for one request including all its retries and backoffs;
    /// `Duration::ZERO` disables the deadline.
    pub deadline: Duration,
    /// Consecutive failed requests before the endpoint's circuit opens
    /// (requests short-circuit without a wire attempt); `0` disables
    /// tripping.
    pub trip_threshold: u32,
    /// How long an open circuit stays open before the next request is
    /// admitted as a half-open recovery probe. `Duration::ZERO` keeps an
    /// opened circuit open forever (the legacy one-way trip).
    pub open_cooldown: Duration,
    /// Hedging threshold: when an endpoint's last observed latency
    /// exceeds this, [`ResilientClient::select_failover`] demotes it
    /// behind a healthy replica (the duplicate request "wins" by going
    /// first). `Duration::ZERO` disables hedging.
    pub hedge_threshold: Duration,
    /// Per-*query* deadline budget shared by every request this client
    /// issues, measured from the client's construction: no wire attempt
    /// starts once the budget is spent, so hedges, retries, and failovers
    /// can never exceed the caller's deadline. `Duration::ZERO` disables
    /// the budget.
    pub query_budget: Duration,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        RequestPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            deadline: Duration::from_secs(10),
            trip_threshold: 3,
            open_cooldown: Duration::from_secs(30),
            hedge_threshold: Duration::ZERO,
            query_budget: Duration::ZERO,
        }
    }
}

impl RequestPolicy {
    /// A policy that never retries, never waits, and never trips — the
    /// legacy fail-fast behaviour.
    pub fn no_retries() -> Self {
        RequestPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            jitter: 0.0,
            deadline: Duration::ZERO,
            trip_threshold: 0,
            ..RequestPolicy::default()
        }
    }

    /// The backoff before retry number `attempt` (0-based), with the
    /// deterministic jitter stream keyed by `nonce`.
    pub fn backoff_for(&self, attempt: u32, nonce: u64) -> Duration {
        let base = self.base_backoff.as_secs_f64()
            * self
                .backoff_multiplier
                .powi(attempt.min(i32::MAX as u32) as i32);
        let capped = base.min(self.max_backoff.as_secs_f64());
        let factor = if self.jitter > 0.0 {
            let r = SplitMix64::new(nonce).next_u64() as f64 / u64::MAX as f64;
            1.0 - self.jitter + 2.0 * self.jitter * r
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// Internal circuit state; `Open` remembers *when* it opened so the
/// cooldown can be measured on the clock.
#[derive(Debug, Clone, Copy, Default)]
enum Health {
    #[default]
    Closed,
    Open {
        since: Duration,
    },
    HalfOpen,
}

impl Health {
    fn state(self) -> HealthState {
        match self {
            Health::Closed => HealthState::Closed,
            Health::Open { .. } => HealthState::Open,
            Health::HalfOpen => HealthState::HalfOpen,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct EpState {
    consecutive_failures: u32,
    failed_requests: u64,
    retries: u64,
    health: Health,
    /// True if the circuit was ever opened, even if it later recovered.
    ever_opened: bool,
    last_error: Option<EndpointError>,
    /// Bitmask over [`EndpointError::index`] of every error kind seen.
    error_kinds: u8,
    /// Latency of the last successful wire attempt, on the clock.
    last_latency: Option<Duration>,
}

/// Routes requests to endpoints with retry, backoff, deadline, and
/// trip-to-dead semantics. One instance per query execution.
pub struct ResilientClient {
    policy: RequestPolicy,
    clock: Arc<dyn Clock>,
    /// When the query started (clock time at construction) — the origin
    /// the per-query deadline budget is measured from.
    origin: Duration,
    states: Mutex<Vec<EpState>>,
    nonce: AtomicU64,
    trace: TraceSink,
    /// Wire attempts per [`RequestKind`] (indexed by `kind.index()`): each
    /// increment corresponds to exactly one invocation of the request
    /// operation, i.e. one bump of the endpoint's request counter.
    wire_attempts: [AtomicU64; 4],
    /// Observer invoked on every circuit transition, outside the state
    /// lock — a long-lived server hangs shared-cache invalidation here.
    on_transition: Option<HealthHook>,
}

/// Callback invoked on every circuit-breaker health transition. The hook
/// runs with no client lock held, so it may itself issue queries (e.g. to
/// warm a cache) without deadlocking, but it runs on the request path:
/// keep it short.
pub type HealthHook = Arc<dyn Fn(EndpointId, HealthState, HealthState) + Send + Sync>;

impl Default for ResilientClient {
    fn default() -> Self {
        ResilientClient::new(RequestPolicy::default())
    }
}

impl ResilientClient {
    /// A client over the real clock.
    pub fn new(policy: RequestPolicy) -> Self {
        ResilientClient::with_clock(policy, Arc::new(SystemClock::default()))
    }

    /// A client over an injected clock (tests).
    pub fn with_clock(policy: RequestPolicy, clock: Arc<dyn Clock>) -> Self {
        ResilientClient::traced(policy, clock, TraceSink::disabled())
    }

    /// A client over an injected clock that emits one
    /// [`TraceEvent::Request`] per logical request into `trace`.
    pub fn traced(policy: RequestPolicy, clock: Arc<dyn Clock>, trace: TraceSink) -> Self {
        let origin = clock.now();
        ResilientClient {
            policy,
            clock,
            origin,
            states: Mutex::new(Vec::new()),
            nonce: AtomicU64::new(0),
            trace,
            wire_attempts: [const { AtomicU64::new(0) }; 4],
            on_transition: None,
        }
    }

    /// Installs a [`HealthHook`] observing every circuit transition this
    /// client performs. The hook fires after the transition is committed
    /// and after the state lock is released.
    pub fn with_transition_hook(mut self, hook: HealthHook) -> Self {
        self.on_transition = Some(hook);
        self
    }

    /// Total wire attempts of the given kind routed through this client —
    /// one per operation invocation, so retried requests count once per
    /// attempt and circuit-broken requests count zero.
    pub fn wire_attempts(&self, kind: RequestKind) -> u64 {
        self.wire_attempts[kind.index()].load(Ordering::Relaxed)
    }

    /// The client's policy.
    pub fn policy(&self) -> &RequestPolicy {
        &self.policy
    }

    fn with_state<R>(&self, ep: EndpointId, f: impl FnOnce(&mut EpState) -> R) -> R {
        let mut states = self.states.lock().unwrap();
        if states.len() <= ep {
            states.resize_with(ep + 1, EpState::default);
        }
        f(&mut states[ep])
    }

    /// True if a request to this endpoint would currently short-circuit:
    /// the circuit is open and its cooldown has not yet elapsed (a zero
    /// cooldown keeps it open forever).
    pub fn is_dead(&self, ep: EndpointId) -> bool {
        let now = self.clock.now();
        let cooldown = self.policy.open_cooldown;
        self.with_state(ep, |s| match s.health {
            Health::Open { since } => cooldown.is_zero() || now.saturating_sub(since) < cooldown,
            _ => false,
        })
    }

    /// The endpoint's current circuit state.
    pub fn health(&self, ep: EndpointId) -> HealthState {
        self.with_state(ep, |s| s.health.state())
    }

    /// Retries spent on the endpoint so far.
    pub fn retries(&self, ep: EndpointId) -> u64 {
        self.with_state(ep, |s| s.retries)
    }

    /// Requests that ultimately failed at the endpoint.
    pub fn failed_requests(&self, ep: EndpointId) -> u64 {
        self.with_state(ep, |s| s.failed_requests)
    }

    /// Latency of the endpoint's last successful wire attempt, measured
    /// on the clock — the signal the hedging policy reads.
    pub fn last_latency(&self, ep: EndpointId) -> Option<Duration> {
        self.with_state(ep, |s| s.last_latency)
    }

    /// True once the per-query deadline budget is spent (always false
    /// when the policy disables it).
    pub fn budget_exhausted(&self) -> bool {
        let budget = self.policy.query_budget;
        !budget.is_zero() && self.clock.now().saturating_sub(self.origin) >= budget
    }

    fn emit_transition(&self, ep: EndpointId, from: HealthState, to: HealthState) {
        self.trace.emit(|| TraceEvent::HealthTransition {
            endpoint: ep,
            from,
            to,
        });
        if let Some(hook) = &self.on_transition {
            hook(ep, from, to);
        }
    }

    /// Admission control: decides whether a request may touch the wire,
    /// moving an open circuit to half-open once its cooldown has elapsed
    /// (that request becomes the recovery probe). While a probe is in
    /// flight (half-open), further requests are short-circuited.
    fn admit(&self, ep: EndpointId) -> bool {
        let now = self.clock.now();
        let cooldown = self.policy.open_cooldown;
        let mut transition = None;
        let admitted = self.with_state(ep, |s| match s.health {
            Health::Closed => true,
            Health::HalfOpen => false,
            Health::Open { since } => {
                if !cooldown.is_zero() && now.saturating_sub(since) >= cooldown {
                    transition = Some((HealthState::Open, HealthState::HalfOpen));
                    s.health = Health::HalfOpen;
                    true
                } else {
                    false
                }
            }
        });
        if let Some((from, to)) = transition {
            self.emit_transition(ep, from, to);
        }
        admitted
    }

    fn record_success(&self, ep: EndpointId, latency: Duration) {
        let mut transition = None;
        self.with_state(ep, |s| {
            s.consecutive_failures = 0;
            s.last_latency = Some(latency);
            if matches!(s.health, Health::HalfOpen) {
                transition = Some((HealthState::HalfOpen, HealthState::Closed));
                s.health = Health::Closed;
            }
        });
        if let Some((from, to)) = transition {
            self.emit_transition(ep, from, to);
        }
    }

    fn record_failure(&self, ep: EndpointId, e: EndpointError) {
        let trip = self.policy.trip_threshold;
        let now = self.clock.now();
        let mut transition = None;
        self.with_state(ep, |s| {
            s.consecutive_failures += 1;
            s.failed_requests += 1;
            s.last_error = Some(e);
            s.error_kinds |= 1 << e.index();
            match s.health {
                // A failed half-open probe re-opens the circuit.
                Health::HalfOpen => {
                    transition = Some((HealthState::HalfOpen, HealthState::Open));
                    s.health = Health::Open { since: now };
                    s.ever_opened = true;
                }
                Health::Closed if trip > 0 && s.consecutive_failures >= trip => {
                    transition = Some((HealthState::Closed, HealthState::Open));
                    s.health = Health::Open { since: now };
                    s.ever_opened = true;
                }
                _ => {}
            }
        });
        if let Some((from, to)) = transition {
            self.emit_transition(ep, from, to);
        }
    }

    /// Runs one logical request against endpoint `ep`, retrying transient
    /// failures per the policy. Tripped endpoints fail immediately with
    /// [`EndpointError::Unavailable`] without counting a new failure.
    /// Equivalent to [`request_kind`](Self::request_kind) with
    /// [`RequestKind::Select`] — the default for data-bearing calls.
    pub fn request<T>(
        &self,
        ep: EndpointId,
        op: impl Fn() -> Result<T, EndpointError>,
    ) -> Result<T, EndpointError> {
        self.request_kind(ep, RequestKind::Select, op)
    }

    /// [`request`](Self::request) with an explicit [`RequestKind`] label,
    /// so the trace (and the per-kind wire-attempt counters) distinguish
    /// ASK probes, COUNT probes, and check queries from data selects.
    pub fn request_kind<T>(
        &self,
        ep: EndpointId,
        kind: RequestKind,
        op: impl Fn() -> Result<T, EndpointError>,
    ) -> Result<T, EndpointError> {
        if !self.admit(ep) {
            // The circuit breaker short-circuits without touching the
            // wire: zero attempts, no endpoint counter moves.
            self.trace.emit(|| TraceEvent::Request {
                endpoint: ep,
                kind,
                attempts: 0,
                ok: false,
                error: Some(format!("{:?}", EndpointError::Unavailable)),
            });
            return Err(EndpointError::Unavailable);
        }
        let start = self.clock.now();
        let mut attempt: u32 = 0;
        let mut attempts: u64 = 0;
        let result = loop {
            if self.budget_exhausted() {
                // The per-query budget is spent: no wire attempt may
                // start. The endpoint is blameless when it never got an
                // attempt, so only record a failure against it otherwise.
                if attempts > 0 {
                    self.record_failure(ep, EndpointError::Timeout);
                }
                break Err(EndpointError::Timeout);
            }
            attempts += 1;
            self.wire_attempts[kind.index()].fetch_add(1, Ordering::Relaxed);
            let sent = self.clock.now();
            match op() {
                Ok(v) => {
                    self.record_success(ep, self.clock.now().saturating_sub(sent));
                    break Ok(v);
                }
                Err(e) => {
                    if !e.is_transient() || attempt >= self.policy.max_retries {
                        self.record_failure(ep, e);
                        break Err(e);
                    }
                    let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.policy.backoff_for(attempt, nonce);
                    if !self.policy.deadline.is_zero() {
                        let elapsed = self.clock.now().saturating_sub(start);
                        if elapsed + backoff > self.policy.deadline {
                            self.record_failure(ep, EndpointError::Timeout);
                            break Err(EndpointError::Timeout);
                        }
                    }
                    if !self.policy.query_budget.is_zero() {
                        // Sleeping past the query budget would let the
                        // next attempt start after the deadline.
                        let spent = self.clock.now().saturating_sub(self.origin);
                        if spent + backoff >= self.policy.query_budget {
                            self.record_failure(ep, EndpointError::Timeout);
                            break Err(EndpointError::Timeout);
                        }
                    }
                    self.with_state(ep, |s| s.retries += 1);
                    self.clock.sleep(backoff);
                    attempt += 1;
                }
            }
        };
        self.trace.emit(|| TraceEvent::Request {
            endpoint: ep,
            kind,
            attempts,
            ok: result.is_ok(),
            error: result.as_ref().err().map(|e| format!("{e:?}")),
        });
        result
    }

    /// An `ASK` through the resilience layer.
    pub fn ask(&self, fed: &Federation, ep: EndpointId, q: &Query) -> Result<bool, EndpointError> {
        self.request_kind(ep, RequestKind::Ask, || fed.endpoint(ep).ask(q))
    }

    /// A `SELECT` through the resilience layer.
    pub fn select(
        &self,
        fed: &Federation,
        ep: EndpointId,
        q: &Query,
    ) -> Result<SolutionSet, EndpointError> {
        self.request_kind(ep, RequestKind::Select, || fed.endpoint(ep).select(q))
    }

    /// A `COUNT` through the resilience layer.
    pub fn count(&self, fed: &Federation, ep: EndpointId, q: &Query) -> Result<u64, EndpointError> {
        self.request_kind(ep, RequestKind::Count, || fed.endpoint(ep).count(q))
    }

    /// The candidate order a data-bearing select tries the endpoint's
    /// replica group in: the requested member first, then every other
    /// *healthy* member in id order — unless the requested member is
    /// slow (last observed latency above the hedge threshold) and a
    /// healthy replica exists, in which case the replica is hedged in
    /// front of it.
    fn failover_candidates(&self, fed: &Federation, ep: EndpointId) -> Vec<EndpointId> {
        let mut candidates: Vec<EndpointId> = vec![ep];
        candidates.extend(
            fed.replica_group(ep)
                .into_iter()
                .filter(|&m| m != ep && !self.is_dead(m)),
        );
        let hedge = self.policy.hedge_threshold;
        if !hedge.is_zero() && candidates.len() > 1 {
            if let Some(latency) = self.last_latency(ep) {
                if latency > hedge {
                    let replica = candidates[1];
                    self.trace.emit(|| TraceEvent::Hedged {
                        primary: ep,
                        replica,
                    });
                    candidates.swap(0, 1);
                }
            }
        }
        candidates
    }

    /// A data-bearing `SELECT` with replica-aware failover: the request
    /// is issued to the endpoint's replica group one member at a time
    /// (see [`failover_candidates`](Self::failover_candidates) for the
    /// order; each member gets the full retry policy), and the first
    /// success wins. Returns the winning member's id alongside the rows
    /// so callers can invalidate per-endpoint state for the losers. Errs
    /// only when every candidate failed.
    ///
    /// Hedging is implemented as a deterministic refinement of
    /// first-success-wins racing: the duplicate request goes first and
    /// elides the slow primary's attempt entirely when it succeeds, so
    /// traces and request counters stay reproducible under the test
    /// clock.
    pub fn select_failover(
        &self,
        fed: &Federation,
        ep: EndpointId,
        q: &Query,
    ) -> Result<(EndpointId, SolutionSet), EndpointError> {
        let candidates = self.failover_candidates(fed, ep);
        let mut last_err = EndpointError::Unavailable;
        for (i, &member) in candidates.iter().enumerate() {
            match self.request_kind(member, RequestKind::Select, || {
                fed.endpoint(member).select(q)
            }) {
                Ok(rows) => return Ok((member, rows)),
                Err(e) => {
                    last_err = e;
                    if let Some(&next) = candidates.get(i + 1) {
                        self.trace.emit(|| TraceEvent::FailedOver {
                            from: member,
                            to: next,
                            kind: RequestKind::Select,
                            error: format!("{e:?}"),
                        });
                    }
                }
            }
        }
        Err(last_err)
    }

    /// The per-endpoint failure report for this query: one entry per
    /// endpoint that failed a request, spent retries, or had its circuit
    /// opened — sorted by endpoint id, with the distinct error kinds
    /// deduped in [`EndpointError::ALL`] order, so the report is
    /// deterministic however the failures interleaved.
    pub fn report(&self, fed: &Federation) -> Vec<EndpointFailure> {
        let states = self.states.lock().unwrap();
        let mut out: Vec<EndpointFailure> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.failed_requests > 0 || s.retries > 0 || s.ever_opened)
            .map(|(ep, s)| EndpointFailure {
                endpoint: ep,
                name: fed.endpoint(ep).name().to_string(),
                failed_requests: s.failed_requests,
                retries: s.retries,
                dead: s.ever_opened,
                last_error: s.last_error,
                errors: EndpointError::ALL
                    .into_iter()
                    .filter(|e| s.error_kinds & (1 << e.index()) != 0)
                    .collect(),
            })
            .collect();
        out.sort_by_key(|f| f.endpoint);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counting_op(
        outcomes: Vec<Result<u32, EndpointError>>,
    ) -> (Arc<AtomicUsize>, impl Fn() -> Result<u32, EndpointError>) {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let op = move || {
            let i = c.fetch_add(1, Ordering::Relaxed);
            outcomes.get(i).copied().unwrap_or(Ok(0))
        };
        (calls, op)
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let clock = ManualClock::new();
        let client = ResilientClient::with_clock(RequestPolicy::default(), clock);
        let (calls, op) = counting_op(vec![
            Err(EndpointError::Interrupted),
            Err(EndpointError::TooManyRequests),
            Ok(42),
        ]);
        assert_eq!(client.request(0, op), Ok(42));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(client.retries(0), 2);
        assert_eq!(client.failed_requests(0), 0);
    }

    #[test]
    fn unavailable_fails_fast_without_retry() {
        let clock = ManualClock::new();
        let client = ResilientClient::with_clock(RequestPolicy::default(), clock.clone());
        let (calls, op) = counting_op(vec![Err(EndpointError::Unavailable)]);
        assert_eq!(client.request(0, op), Err(EndpointError::Unavailable));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(client.retries(0), 0);
        assert_eq!(client.failed_requests(0), 1);
        assert_eq!(clock.elapsed(), Duration::ZERO, "no backoff was slept");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RequestPolicy {
            base_backoff: Duration::from_millis(10),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_millis(60),
            jitter: 0.0,
            ..RequestPolicy::default()
        };
        assert_eq!(policy.backoff_for(0, 0), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(1, 0), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(2, 0), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(3, 0), Duration::from_millis(60)); // capped
        assert_eq!(policy.backoff_for(9, 0), Duration::from_millis(60));
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let policy = RequestPolicy {
            base_backoff: Duration::from_millis(100),
            jitter: 0.2,
            ..RequestPolicy::default()
        };
        for nonce in 0..50 {
            let b = policy.backoff_for(0, nonce);
            assert!(b >= Duration::from_millis(80), "{b:?} below jitter floor");
            assert!(
                b <= Duration::from_millis(120),
                "{b:?} above jitter ceiling"
            );
            assert_eq!(b, policy.backoff_for(0, nonce));
        }
        // Not all nonces land on the same value.
        assert_ne!(policy.backoff_for(0, 1), policy.backoff_for(0, 2));
    }

    #[test]
    fn retries_sleep_the_backoff_schedule() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
            deadline: Duration::ZERO,
            trip_threshold: 0,
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock.clone());
        let (_, op) = counting_op(vec![
            Err(EndpointError::Interrupted),
            Err(EndpointError::Interrupted),
            Err(EndpointError::Interrupted),
            Ok(1),
        ]);
        assert_eq!(client.request(0, op), Ok(1));
        // 10 + 20 + 40 ms of backoff slept on the virtual clock.
        assert_eq!(clock.elapsed(), Duration::from_millis(70));
    }

    #[test]
    fn deadline_aborts_the_retry_loop() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(30),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_secs(10),
            jitter: 0.0,
            deadline: Duration::from_millis(100),
            trip_threshold: 0,
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock.clone());
        let (calls, op) = counting_op(vec![Err(EndpointError::Interrupted); 20]);
        assert_eq!(client.request(0, op), Err(EndpointError::Timeout));
        // Backoffs 30 + 60 fit in the 100 ms budget; the third (120) would
        // blow it, so the request aborts after 3 attempts.
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(clock.elapsed(), Duration::from_millis(90));
        assert_eq!(client.failed_requests(0), 1);
    }

    #[test]
    fn consecutive_failures_trip_the_endpoint_dead() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            trip_threshold: 3,
            jitter: 0.0,
            deadline: Duration::ZERO,
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock);
        for _ in 0..3 {
            let _ = client.request(1, || Err::<u32, _>(EndpointError::Interrupted));
        }
        assert!(client.is_dead(1));
        // Further requests fail fast without invoking the operation.
        let (calls, op) = counting_op(vec![Ok(5)]);
        assert_eq!(client.request(1, op), Err(EndpointError::Unavailable));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        // Other endpoints are unaffected.
        assert!(!client.is_dead(0));
        assert_eq!(client.request(0, || Ok(7)), Ok(7));
    }

    #[test]
    fn wire_attempts_count_once_per_operation_invocation() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 2,
            jitter: 0.0,
            deadline: Duration::ZERO,
            ..RequestPolicy::default()
        };
        let sink = TraceSink::enabled();
        let client = ResilientClient::traced(policy, clock, sink.clone());
        let (_, op) = counting_op(vec![
            Err(EndpointError::Interrupted),
            Err(EndpointError::Interrupted),
            Ok(9),
        ]);
        assert_eq!(client.request_kind(2, RequestKind::Ask, op), Ok(9));
        assert_eq!(client.wire_attempts(RequestKind::Ask), 3);
        assert_eq!(client.wire_attempts(RequestKind::Select), 0);
        assert_eq!(
            sink.events(),
            vec![TraceEvent::Request {
                endpoint: 2,
                kind: RequestKind::Ask,
                attempts: 3,
                ok: true,
                error: None,
            }]
        );
    }

    #[test]
    fn tripped_endpoint_records_a_zero_attempt_request_event() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            trip_threshold: 1,
            jitter: 0.0,
            deadline: Duration::ZERO,
            ..RequestPolicy::default()
        };
        let sink = TraceSink::enabled();
        let client = ResilientClient::traced(policy, clock, sink.clone());
        let _ = client.request_kind(0, RequestKind::Count, || {
            Err::<u32, _>(EndpointError::Interrupted)
        });
        assert!(client.is_dead(0));
        let (calls, op) = counting_op(vec![Ok(5)]);
        assert_eq!(
            client.request_kind(0, RequestKind::Count, op),
            Err(EndpointError::Unavailable)
        );
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        // One wire attempt total (the tripping request), zero for the
        // short-circuited one — and both requests left an event, plus the
        // circuit-open transition between them.
        assert_eq!(client.wire_attempts(RequestKind::Count), 1);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            TraceEvent::HealthTransition {
                endpoint: 0,
                from: HealthState::Closed,
                to: HealthState::Open,
            }
        );
        assert_eq!(
            events[2],
            TraceEvent::Request {
                endpoint: 0,
                kind: RequestKind::Count,
                attempts: 0,
                ok: false,
                error: Some(format!("{:?}", EndpointError::Unavailable)),
            }
        );
    }

    #[test]
    fn open_circuit_half_opens_after_cooldown_and_recloses_on_success() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            trip_threshold: 2,
            jitter: 0.0,
            deadline: Duration::ZERO,
            open_cooldown: Duration::from_secs(5),
            ..RequestPolicy::default()
        };
        let sink = TraceSink::enabled();
        let client = ResilientClient::traced(policy, clock.clone(), sink.clone());
        for _ in 0..2 {
            let _ = client.request(0, || Err::<u32, _>(EndpointError::Interrupted));
        }
        assert!(client.is_dead(0));
        assert_eq!(client.health(0), HealthState::Open);
        // Before the cooldown, requests still short-circuit.
        let (calls, op) = counting_op(vec![Ok(1)]);
        assert_eq!(client.request(0, op), Err(EndpointError::Unavailable));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        // After the cooldown, the next request is the half-open probe.
        clock.advance(Duration::from_secs(5));
        assert!(!client.is_dead(0));
        assert_eq!(client.request(0, || Ok(7)), Ok(7));
        assert_eq!(client.health(0), HealthState::Closed);
        // Subsequent requests flow normally again.
        assert_eq!(client.request(0, || Ok(8)), Ok(8));
        let transitions: Vec<_> = sink
            .events()
            .into_iter()
            .filter_map(|ev| match ev {
                TraceEvent::HealthTransition { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                (HealthState::Closed, HealthState::Open),
                (HealthState::Open, HealthState::HalfOpen),
                (HealthState::HalfOpen, HealthState::Closed),
            ]
        );
    }

    #[test]
    fn failed_half_open_probe_reopens_the_circuit() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            trip_threshold: 1,
            jitter: 0.0,
            deadline: Duration::ZERO,
            open_cooldown: Duration::from_secs(5),
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock.clone());
        let _ = client.request(0, || Err::<u32, _>(EndpointError::Interrupted));
        assert_eq!(client.health(0), HealthState::Open);
        clock.advance(Duration::from_secs(5));
        // The probe fails: open again, with the cooldown restarted.
        let _ = client.request(0, || Err::<u32, _>(EndpointError::Interrupted));
        assert_eq!(client.health(0), HealthState::Open);
        assert!(client.is_dead(0));
        clock.advance(Duration::from_secs(4));
        assert!(client.is_dead(0), "cooldown was not restarted");
        clock.advance(Duration::from_secs(1));
        assert!(!client.is_dead(0));
    }

    #[test]
    fn zero_cooldown_keeps_the_circuit_open_forever() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            trip_threshold: 1,
            jitter: 0.0,
            deadline: Duration::ZERO,
            open_cooldown: Duration::ZERO,
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock.clone());
        let _ = client.request(0, || Err::<u32, _>(EndpointError::Interrupted));
        clock.advance(Duration::from_secs(3600));
        assert!(client.is_dead(0));
        let (calls, op) = counting_op(vec![Ok(1)]);
        assert_eq!(client.request(0, op), Err(EndpointError::Unavailable));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn query_budget_blocks_wire_attempts_once_spent() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(40),
            backoff_multiplier: 1.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
            deadline: Duration::ZERO,
            trip_threshold: 0,
            query_budget: Duration::from_millis(100),
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock.clone());
        let (calls, op) = counting_op(vec![Err(EndpointError::Interrupted); 20]);
        assert_eq!(client.request(0, op), Err(EndpointError::Timeout));
        // Attempts at t=0, 40, 80; sleeping to 120 would pass the 100 ms
        // budget, so the request stops after 3 attempts at t=80.
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert!(clock.elapsed() < Duration::from_millis(100));
        // The budget is per *query*, not per request: a fresh request is
        // refused before its first wire attempt once the budget is spent.
        clock.advance(Duration::from_millis(100));
        assert!(client.budget_exhausted());
        let (calls2, op2) = counting_op(vec![Ok(5)]);
        assert_eq!(client.request(0, op2), Err(EndpointError::Timeout));
        assert_eq!(
            calls2.load(Ordering::Relaxed),
            0,
            "wire attempt after deadline"
        );
    }

    #[test]
    fn report_is_sorted_by_endpoint_and_dedups_error_kinds() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            jitter: 0.0,
            deadline: Duration::ZERO,
            trip_threshold: 0,
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock);
        // Failures arrive out of id order, with repeats of the same kind.
        let _ = client.request(2, || Err::<u32, _>(EndpointError::Interrupted));
        let _ = client.request(0, || Err::<u32, _>(EndpointError::Timeout));
        let _ = client.request(2, || Err::<u32, _>(EndpointError::Interrupted));
        let _ = client.request(2, || Err::<u32, _>(EndpointError::Timeout));
        let mut fed = Federation::new(lusail_rdf::Dictionary::shared());
        for name in ["A", "B", "C"] {
            let store = lusail_store::TripleStore::new(fed.dict().clone());
            fed.add(Arc::new(crate::LocalEndpoint::new(name, store)));
        }
        let report = client.report(&fed);
        assert_eq!(report.len(), 2);
        assert_eq!(
            report.iter().map(|f| f.endpoint).collect::<Vec<_>>(),
            vec![0, 2],
            "report not sorted by endpoint id"
        );
        assert_eq!(report[0].errors, vec![EndpointError::Timeout]);
        // Repeated Interrupted failures dedup to one entry; kinds are in
        // taxonomy order (Timeout before Interrupted).
        assert_eq!(
            report[1].errors,
            vec![EndpointError::Timeout, EndpointError::Interrupted]
        );
        assert_eq!(report[1].failed_requests, 3);
    }

    #[test]
    fn success_resets_the_consecutive_counter() {
        let clock = ManualClock::new();
        let policy = RequestPolicy {
            max_retries: 0,
            trip_threshold: 3,
            deadline: Duration::ZERO,
            ..RequestPolicy::default()
        };
        let client = ResilientClient::with_clock(policy, clock);
        for _ in 0..2 {
            let _ = client.request(0, || Err::<u32, _>(EndpointError::Interrupted));
        }
        assert_eq!(client.request(0, || Ok(1)), Ok(1));
        for _ in 0..2 {
            let _ = client.request(0, || Err::<u32, _>(EndpointError::Interrupted));
        }
        assert!(!client.is_dead(0), "success did not reset the trip counter");
    }
}
