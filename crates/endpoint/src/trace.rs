//! Structured query tracing: typed events and the sink handle that
//! collects them.
//!
//! A [`TraceSink`] is a cheap, cloneable handle that is either *disabled*
//! (the default — a `None`, so tracing is zero-cost: event constructors
//! are closures that are never invoked) or *enabled* (a shared,
//! mutex-guarded event log). Engines thread one sink through their whole
//! request path; [`TraceEvent`]s are plain data (ids, counts, strings) so
//! a finished trace can be inspected, aggregated, and rendered without
//! holding any engine state.
//!
//! Determinism contract: events emitted from concurrent request workers
//! ([`TraceEvent::Request`]) arrive in a nondeterministic order, so
//! consumers must aggregate them (per endpoint and kind) rather than
//! depend on their sequence. All other events are emitted from the
//! engine's sequential planning/join path and their relative order *is*
//! deterministic, as are all payload values when the engine runs under
//! the test [`Clock`](crate::Clock).

use crate::EndpointId;
use std::sync::{Arc, Mutex};

/// What a traced remote request was for.
///
/// `Check` is a LADE check query — carried on the wire as a SELECT (it
/// bumps the endpoint's *select* counter) but recorded separately so
/// traces can distinguish analysis probes from data-bearing selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// ASK source-selection (or bound source-refinement) probe.
    Ask,
    /// Data-bearing SELECT.
    Select,
    /// `SELECT (COUNT(*) …)` cardinality probe.
    Count,
    /// GJV check query (wire-level SELECT).
    Check,
}

impl RequestKind {
    /// All kinds, in display order.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::Ask,
        RequestKind::Select,
        RequestKind::Count,
        RequestKind::Check,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Ask => "ask",
            RequestKind::Select => "select",
            RequestKind::Count => "count",
            RequestKind::Check => "check",
        }
    }

    /// Dense index (for per-kind counters).
    pub fn index(self) -> usize {
        match self {
            RequestKind::Ask => 0,
            RequestKind::Select => 1,
            RequestKind::Count => 2,
            RequestKind::Check => 3,
        }
    }
}

/// The circuit-breaker state of one endpoint, as recorded in
/// [`TraceEvent::HealthTransition`] events.
///
/// `Closed` admits requests normally; `Open` short-circuits them without
/// touching the wire; `HalfOpen` admits a single probe request whose
/// outcome decides between re-closing and re-opening the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: requests fail fast without a wire attempt.
    Open,
    /// Cooling down: the next request is admitted as a recovery probe.
    HalfOpen,
}

impl HealthState {
    /// Display name (lower-case, used by EXPLAIN ANALYZE).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Closed => "closed",
            HealthState::Open => "open",
            HealthState::HalfOpen => "half-open",
        }
    }
}

/// One structured trace event. Variants are plain data so traces can
/// outlive the engine run that produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One *logical* remote request (possibly several wire attempts under
    /// the retry policy). `attempts` counts invocations that actually
    /// reached the endpoint — it is `0` when the circuit breaker
    /// fast-failed the request without touching the wire.
    Request {
        /// Target endpoint.
        endpoint: EndpointId,
        /// What the request was for.
        kind: RequestKind,
        /// Wire attempts (each bumps the endpoint's request counter).
        attempts: u64,
        /// Whether the request ultimately succeeded.
        ok: bool,
        /// The final error, when it did not.
        error: Option<String>,
    },
    /// A batch of tasks handed to the request handler's fan-out.
    Dispatch {
        /// Number of tasks in the batch.
        tasks: usize,
        /// Distinct endpoints the batch touches.
        endpoints: usize,
    },
    /// The query was decomposed into subqueries.
    Decomposed {
        /// Number of subqueries produced.
        subqueries: usize,
        /// Global join variables detected by LADE.
        gjvs: usize,
    },
    /// The cost model's verdict for one subquery.
    SubqueryPlanned {
        /// Subquery index (position in the decomposition).
        index: usize,
        /// Rendered triple patterns.
        patterns: Vec<String>,
        /// Number of relevant endpoints.
        sources: usize,
        /// Estimated cardinality `C(sq)`.
        cardinality: u64,
        /// Endpoint fan-out used by the delay decision.
        fanout: usize,
        /// Whether the subquery is delayed.
        delayed: bool,
        /// Human-readable reason (the Chauvenet `μ+kσ` threshold the
        /// estimate exceeded). `Some` exactly when `delayed`.
        delay_reason: Option<String>,
    },
    /// A delayed subquery promoted to concurrent execution (all were
    /// delayed, so the most selective one runs first).
    SubqueryPromoted {
        /// Subquery index.
        index: usize,
    },
    /// A subquery finished evaluating.
    SubqueryEvaluated {
        /// Subquery index.
        index: usize,
        /// Actual rows returned (across endpoints).
        rows: usize,
        /// Result partitions (endpoint streams) backing the relation.
        partitions: usize,
    },
    /// A subquery was served from a batch's shared-relation memo
    /// (multi-query optimization) instead of being re-evaluated. No
    /// [`TraceEvent::Request`] events are emitted for the elided
    /// evaluation — request accounting only ever counts wire work.
    SubqueryShared {
        /// Subquery index within this query's decomposition.
        index: usize,
        /// Wire requests the producing evaluation spent — the traffic
        /// this reuse avoided.
        saved_requests: u64,
    },
    /// One VALUES-bound block dispatched for a delayed subquery.
    ValuesBatch {
        /// Subquery index.
        subquery: usize,
        /// Target endpoint.
        endpoint: EndpointId,
        /// Bindings in the block.
        bindings: usize,
    },
    /// One executed hash join.
    JoinStep {
        /// Rows on the left input.
        left_rows: usize,
        /// Rows on the right input.
        right_rows: usize,
        /// Rows produced.
        output_rows: usize,
        /// The `JoinCost` that ordered this step (DP: planned step cost;
        /// greedy: the combined parallel work of the pair).
        cost: f64,
    },
    /// A request failed on one replica-group member and was re-issued
    /// against the next healthy member.
    FailedOver {
        /// The member that failed.
        from: EndpointId,
        /// The member the request was re-issued against.
        to: EndpointId,
        /// What the request was for.
        kind: RequestKind,
        /// The error that triggered the failover.
        error: String,
    },
    /// A slow primary was hedged: a duplicate request was issued to a
    /// replica because the primary's last observed latency exceeded the
    /// policy's hedge threshold.
    Hedged {
        /// The slow primary.
        primary: EndpointId,
        /// The replica the duplicate was sent to.
        replica: EndpointId,
    },
    /// Offline statistics answered a planning question locally, eliding
    /// the wire probe that would otherwise have been issued. No
    /// [`TraceEvent::Request`] is emitted for an elided probe — request
    /// accounting only ever counts wire work — so these events are the
    /// audit trail for where statistics saved traffic.
    StatsAnswered {
        /// The endpoint whose probe was elided.
        endpoint: EndpointId,
        /// The kind of probe that would have gone to the wire.
        kind: RequestKind,
    },
    /// The engine found offline statistics attached to the federation at
    /// query start. Emitted at most once per run.
    StatsLoaded {
        /// Endpoints carrying statistics.
        endpoints: usize,
        /// Total characteristic sets across those endpoints.
        sets: usize,
    },
    /// An endpoint's circuit-breaker state changed.
    HealthTransition {
        /// The endpoint whose circuit moved.
        endpoint: EndpointId,
        /// State before the transition.
        from: HealthState,
        /// State after the transition.
        to: HealthState,
    },
    /// The engine finished. Always the last event of a trace.
    QueryFinished {
        /// Result rows.
        rows: usize,
        /// Whether the outcome was complete.
        complete: bool,
    },
}

/// A cloneable handle to an (optional) event log.
///
/// Disabled sinks ([`TraceSink::disabled`], also the `Default`) carry no
/// allocation and never invoke the event-constructor closure passed to
/// [`emit`](TraceSink::emit); enabled sinks ([`TraceSink::enabled`])
/// share one mutex-guarded `Vec<TraceEvent>` across clones.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<Vec<TraceEvent>>>>,
}

impl TraceSink {
    /// A sink that records nothing and costs nothing.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A sink that records events.
    pub fn enabled() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event built by `f` — which is *not invoked* when the
    /// sink is disabled, so arbitrary rendering work may sit inside it.
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("trace sink poisoned").push(f());
        }
    }

    /// Snapshot of the events recorded so far (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.lock().expect("trace sink poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().expect("trace sink poisoned").len(),
            None => 0,
        }
    }

    /// True when no events have been recorded (always true when
    /// disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_never_invokes_the_constructor() {
        let sink = TraceSink::disabled();
        let mut invoked = false;
        sink.emit(|| {
            invoked = true;
            TraceEvent::QueryFinished {
                rows: 0,
                complete: true,
            }
        });
        assert!(!invoked);
        assert!(!sink.is_enabled());
        assert!(sink.is_empty());
        assert!(sink.events().is_empty());
    }

    #[test]
    fn enabled_sink_shares_events_across_clones() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        clone.emit(|| TraceEvent::Dispatch {
            tasks: 3,
            endpoints: 2,
        });
        sink.emit(|| TraceEvent::QueryFinished {
            rows: 1,
            complete: true,
        });
        assert!(sink.is_enabled());
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events(), clone.events());
        assert_eq!(
            sink.events()[0],
            TraceEvent::Dispatch {
                tasks: 3,
                endpoints: 2
            }
        );
    }

    #[test]
    fn default_sink_is_disabled() {
        assert!(!TraceSink::default().is_enabled());
    }

    #[test]
    fn request_kind_indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for kind in RequestKind::ALL {
            assert!(!seen[kind.index()], "duplicate index for {kind:?}");
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
