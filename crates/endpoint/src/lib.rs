//! SPARQL endpoint abstraction for decentralized RDF graphs.
//!
//! In the paper every data source is an independent SPARQL endpoint
//! (Jena Fuseki or Virtuoso behind HTTP). Here an endpoint is a
//! [`StorageBackend`](lusail_store::StorageBackend) — the BTree-indexed
//! [`TripleStore`] or the compressed columnar store, selected at
//! construction — behind the [`SparqlEndpoint`] trait, with a simulated
//! network in front of it:
//!
//! * every request is **counted** (ASK / SELECT / COUNT separately) and the
//!   serialized request & response sizes are accumulated — these counters
//!   are exactly the "number of remote requests" and "intermediate data"
//!   metrics driving the paper's analysis (Figs. 3, 11–14);
//! * an optional [`NetworkProfile`] adds real latency (`thread::sleep`) and
//!   bandwidth delay per request, used for the geo-distributed experiments
//!   (Fig. 14); the same virtual time is always *accumulated* so harnesses
//!   can compute modeled response times without sleeping;
//! * every request is **fallible**: `ask`/`select`/`count` return
//!   `Result<_, EndpointError>`, a [`FlakyEndpoint`] wrapper injects
//!   deterministic faults, and engines route calls through a
//!   [`ResilientClient`] that retries, backs off, and trips dead endpoints.
//!
//! A [`Federation`] is a named, ordered collection of endpoints sharing a
//! term dictionary.

pub mod error;
pub mod fault;
pub mod federation;
pub mod network;
pub mod resilience;
pub mod trace;

pub use error::{EndpointError, EndpointFailure, FederationError, QueryOutcome};
pub use fault::{FaultProfile, FlakyEndpoint};
pub use federation::{EndpointId, Federation, FederationBuilder};
pub use network::{NetworkProfile, NetworkStats, StatsSnapshot};
pub use resilience::{Clock, HealthHook, ManualClock, RequestPolicy, ResilientClient, SystemClock};
pub use trace::{HealthState, RequestKind, TraceEvent, TraceSink};

use lusail_sparql::{write_query, Query, SolutionSet};
use lusail_store::{BackendKind, StorageBackend, TripleStore};
use std::sync::Arc;
use std::time::Duration;

/// The interface a federated query engine sees for one remote source.
pub trait SparqlEndpoint: Send + Sync {
    /// The endpoint's stable name (e.g. `"DrugBank"` or `"univ-0"`).
    fn name(&self) -> &str;
    /// Executes an `ASK`: does the query's pattern have any solution here?
    fn ask(&self, q: &Query) -> Result<bool, EndpointError>;
    /// Executes a `SELECT`, returning the solutions.
    fn select(&self, q: &Query) -> Result<SolutionSet, EndpointError>;
    /// Executes a `SELECT (COUNT(*) …)`, returning the count.
    fn count(&self, q: &Query) -> Result<u64, EndpointError>;
    /// A point-in-time copy of this endpoint's request/byte counters.
    fn stats_snapshot(&self) -> StatsSnapshot;
    /// Number of triples stored at this endpoint (catalog metadata, not a
    /// remote request — engines use it as a conservative cardinality
    /// fallback when COUNT probes fail).
    fn triple_count(&self) -> usize;
    /// Resident heap bytes of the endpoint's storage, when the endpoint
    /// is local enough to know (see
    /// [`StorageBackend::resident_bytes`](lusail_store::StorageBackend::resident_bytes)).
    /// `None` for endpoints whose storage is not observable (the default).
    fn resident_bytes(&self) -> Option<u64> {
        None
    }
}

/// An in-process SPARQL endpoint over a [`StorageBackend`] (the
/// BTree-indexed [`TripleStore`] by default), with simulated network
/// costs. Never fails on its own; wrap it in a [`FlakyEndpoint`] to
/// inject faults.
pub struct LocalEndpoint {
    name: String,
    store: Box<dyn StorageBackend>,
    profile: NetworkProfile,
    stats: NetworkStats,
}

impl LocalEndpoint {
    /// Creates an endpoint with no network delay (local-cluster setting)
    /// over the default BTree backend.
    pub fn new(name: impl Into<String>, store: TripleStore) -> Self {
        Self::with_backend(name, Box::new(store), NetworkProfile::default())
    }

    /// Creates an endpoint with the given network profile (geo-distributed
    /// setting) over the default BTree backend.
    pub fn with_profile(
        name: impl Into<String>,
        store: TripleStore,
        profile: NetworkProfile,
    ) -> Self {
        Self::with_backend(name, Box::new(store), profile)
    }

    /// Creates an endpoint over an already-materialized backend — the
    /// fully general constructor behind [`LocalEndpoint::new`] and
    /// [`LocalEndpoint::with_profile`].
    pub fn with_backend(
        name: impl Into<String>,
        store: Box<dyn StorageBackend>,
        profile: NetworkProfile,
    ) -> Self {
        LocalEndpoint {
            name: name.into(),
            store,
            profile,
            stats: NetworkStats::default(),
        }
    }

    /// Creates an endpoint by materializing a populated [`TripleStore`]
    /// into the chosen backend, with the given network profile.
    pub fn on_backend(
        name: impl Into<String>,
        store: TripleStore,
        backend: BackendKind,
        profile: NetworkProfile,
    ) -> Self {
        Self::with_backend(name, backend.realize(store), profile)
    }

    /// Read access to the underlying store (used by index-building
    /// baselines, whose preprocessing cost the paper measures).
    pub fn store(&self) -> &dyn StorageBackend {
        &*self.store
    }

    /// The endpoint's network profile.
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// Accounts for one request: serialized request size, latency and
    /// transfer delay, sleeping if the profile says to.
    fn charge(&self, q: &Query, response_bytes: u64, rows: u64) {
        let request_bytes = write_query(q, self.store.dict()).len() as u64;
        let virtual_time =
            self.profile.latency + self.profile.transfer_time(request_bytes + response_bytes);
        self.stats
            .record(request_bytes, response_bytes, rows, virtual_time);
        if self.profile.sleep && virtual_time > Duration::ZERO {
            std::thread::sleep(virtual_time);
        }
    }
}

impl SparqlEndpoint for LocalEndpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn ask(&self, q: &Query) -> Result<bool, EndpointError> {
        let result = lusail_store::eval::ask(&*self.store, q);
        self.stats.bump_ask();
        // The serialized response is the boolean literal itself.
        let body = if result { "true" } else { "false" };
        self.charge(q, body.len() as u64, 0);
        Ok(result)
    }

    fn select(&self, q: &Query) -> Result<SolutionSet, EndpointError> {
        let result = lusail_store::eval::evaluate(&*self.store, q);
        self.stats.bump_select();
        self.charge(q, result.wire_bytes(), result.len() as u64);
        Ok(result)
    }

    fn count(&self, q: &Query) -> Result<u64, EndpointError> {
        let result = lusail_store::eval::count(&*self.store, q);
        self.stats.bump_count();
        // The serialized response is the count's decimal digits.
        self.charge(q, result.to_string().len() as u64, 1);
        Ok(result)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        // Overlay the store's own work counter: it is monotonic like the
        // network counters, so window arithmetic (`since`) applies to it
        // unchanged, and fault wrappers inherit it through `plus`.
        let mut snap = self.stats.snapshot();
        snap.rows_scanned = self.store.rows_scanned();
        snap
    }

    fn triple_count(&self) -> usize {
        self.store.len()
    }

    fn resident_bytes(&self) -> Option<u64> {
        Some(self.store.resident_bytes())
    }
}

/// Convenience alias used throughout the engines.
pub type EndpointRef = Arc<dyn SparqlEndpoint>;

/// Per-call execution options for [`FederatedEngine::run_with`].
///
/// This is the single options-carrying entry point that replaced the
/// `run` / `run_traced` method split: tracing, the physical parallelism
/// budget, and an optional wall-clock deadline all travel together.
#[derive(Clone)]
pub struct ExecOptions {
    /// Structured event sink. A disabled sink (the default) costs nothing.
    pub trace: TraceSink,
    /// Physical parallelism budget: how many worker threads the executor
    /// may use for endpoint dispatch and partitioned hash joins. `1`
    /// (the default) runs fully inline — request order, work counters,
    /// traces, and results are identical at every budget; higher budgets
    /// only change wall-clock time.
    pub threads: std::num::NonZeroUsize,
    /// Optional per-query wall-clock deadline. When set it overrides the
    /// engine policy's `query_budget` for this call.
    pub deadline: Option<Duration>,
    /// Optional observer of circuit-breaker health transitions during
    /// this call. A long-lived server hangs shared-cache invalidation
    /// here so a failover in one tenant's query is visible to every
    /// other tenant *before* the failing query finishes.
    pub on_health_transition: Option<resilience::HealthHook>,
}

impl std::fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("trace", &self.trace)
            .field("threads", &self.threads)
            .field("deadline", &self.deadline)
            .field(
                "on_health_transition",
                &self.on_health_transition.as_ref().map(|_| "<hook>"),
            )
            .finish()
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            trace: TraceSink::disabled(),
            threads: std::num::NonZeroUsize::MIN,
            deadline: None,
            on_health_transition: None,
        }
    }
}

impl ExecOptions {
    /// Default options: disabled trace, one thread, no deadline.
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// Replaces the trace sink.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Sets the worker-thread budget; `0` is clamped to `1`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = std::num::NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1");
        self
    }

    /// Sets the per-query deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a health-transition observer for this call.
    pub fn with_health_hook(mut self, hook: resilience::HealthHook) -> Self {
        self.on_health_transition = Some(hook);
        self
    }

    /// The thread budget as a plain `usize`.
    pub fn thread_budget(&self) -> usize {
        self.threads.get()
    }
}

/// A federated SPARQL query engine — implemented by Lusail and by the
/// FedX / SPLENDID / HiBISCuS baselines so harnesses can drive them
/// uniformly. Request counts and byte volumes are read from the
/// federation's [`StatsSnapshot`] around the call.
pub trait FederatedEngine: Send + Sync {
    /// A short display name ("Lusail", "FedX", …).
    fn engine_name(&self) -> &str;
    /// Executes the query under the given [`ExecOptions`]. Endpoint
    /// failures degrade gracefully into an incomplete [`QueryOutcome`];
    /// only federation-level misuse (e.g. an empty federation) is an
    /// `Err`. With an enabled sink in `opts.trace`, engines guarantee a
    /// [`TraceEvent::QueryFinished`] is the last event emitted.
    fn run_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError>;
    /// Clears any memoized probe results (between benchmark repetitions).
    fn reset(&self) {}
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use std::time::Instant;

    fn endpoint(profile: NetworkProfile) -> LocalEndpoint {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(std::sync::Arc::clone(&dict));
        for i in 0..50 {
            st.insert_terms(
                &Term::iri(format!("http://x/s{i}")),
                &Term::iri("http://x/p"),
                &Term::lit(format!("value {i}")),
            );
        }
        LocalEndpoint::with_profile("T", st, profile)
    }

    #[test]
    fn accounting_without_sleep_is_fast_but_counted() {
        let mut profile = NetworkProfile::wan(50, 1);
        profile.sleep = false; // accounting only
        let ep = endpoint(profile);
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", ep.store().dict()).unwrap();
        let t0 = Instant::now();
        let sols = ep.select(&q).unwrap();
        assert_eq!(sols.len(), 50);
        assert!(
            t0.elapsed().as_millis() < 40,
            "accounting-only profile slept"
        );
        let s = ep.stats_snapshot();
        assert_eq!(s.select_requests, 1);
        assert_eq!(s.rows_returned, 50);
        // Virtual time includes the 50 ms latency even without sleeping.
        assert!(s.virtual_time_ns >= 50_000_000);
    }

    #[test]
    fn wan_profile_actually_sleeps() {
        let ep = endpoint(NetworkProfile::wan(30, 100));
        let q = parse_query("ASK { ?s <http://x/p> ?o }", ep.store().dict()).unwrap();
        let t0 = Instant::now();
        assert!(ep.ask(&q).unwrap());
        assert!(
            t0.elapsed().as_millis() >= 30,
            "WAN profile did not sleep for its latency"
        );
    }

    #[test]
    fn bigger_results_cost_more_virtual_time_under_bandwidth() {
        let mut profile = NetworkProfile::wan(0, 1); // 1 Mbit/s, no latency
        profile.sleep = false;
        let ep = endpoint(profile);
        let dict = ep.store().dict();
        let small = parse_query("SELECT * WHERE { ?s <http://x/p> ?o } LIMIT 1", dict).unwrap();
        let large = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", dict).unwrap();
        let _ = ep.select(&small);
        let after_small = ep.stats_snapshot().virtual_time_ns;
        let _ = ep.select(&large);
        let after_large = ep.stats_snapshot().virtual_time_ns - after_small;
        assert!(
            after_large > after_small,
            "transfer time did not grow with result size: {after_small} vs {after_large}"
        );
    }

    #[test]
    fn ask_and_count_charge_real_response_sizes() {
        let ep = endpoint(NetworkProfile::default());
        let dict = ep.store().dict();
        let hit = parse_query("ASK { ?s <http://x/p> ?o }", dict).unwrap();
        let miss = parse_query("ASK { ?s <http://x/q> ?o }", dict).unwrap();
        let before = ep.stats_snapshot();
        assert!(ep.ask(&hit).unwrap());
        let true_bytes = ep.stats_snapshot().since(&before).bytes_returned;
        assert_eq!(true_bytes, 4); // "true"

        let before = ep.stats_snapshot();
        assert!(!ep.ask(&miss).unwrap());
        let false_bytes = ep.stats_snapshot().since(&before).bytes_returned;
        assert_eq!(false_bytes, 5); // "false"

        let count_q =
            parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }", dict).unwrap();
        let before = ep.stats_snapshot();
        assert_eq!(ep.count(&count_q).unwrap(), 50);
        let count_bytes = ep.stats_snapshot().since(&before).bytes_returned;
        assert_eq!(count_bytes, 2); // "50"
    }

    #[test]
    fn rows_scanned_surfaces_in_snapshots() {
        let ep = endpoint(NetworkProfile::default());
        let dict = ep.store().dict();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", dict).unwrap();
        let before = ep.stats_snapshot();
        assert_eq!(ep.select(&q).unwrap().len(), 50);
        let window = ep.stats_snapshot().since(&before);
        assert_eq!(window.rows_scanned, 50);
        // A LIMIT 1 pushdown visits a single index entry.
        let limited = parse_query("SELECT * WHERE { ?s <http://x/p> ?o } LIMIT 1", dict).unwrap();
        let before = ep.stats_snapshot();
        let _ = ep.select(&limited);
        assert_eq!(ep.stats_snapshot().since(&before).rows_scanned, 1);
    }
}
