//! A federation: the named set of endpoints a query runs against.

use crate::network::StatsSnapshot;
use crate::{EndpointRef, SparqlEndpoint};
use lusail_rdf::Dictionary;
use std::sync::Arc;

/// Index of an endpoint within a [`Federation`]. Engines carry endpoint
/// sets as sorted `Vec<EndpointId>`.
pub type EndpointId = usize;

/// An ordered collection of SPARQL endpoints sharing one term dictionary.
#[derive(Clone)]
pub struct Federation {
    dict: Arc<Dictionary>,
    endpoints: Vec<EndpointRef>,
}

impl Federation {
    /// Creates an empty federation over the given dictionary.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        Federation {
            dict,
            endpoints: Vec::new(),
        }
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// Adds an endpoint, returning its id.
    pub fn add(&mut self, ep: EndpointRef) -> EndpointId {
        self.endpoints.push(ep);
        self.endpoints.len() - 1
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True if the federation has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The endpoint with the given id. Panics on out-of-range ids (ids are
    /// only produced by [`Federation::add`]).
    pub fn endpoint(&self, id: EndpointId) -> &EndpointRef {
        &self.endpoints[id]
    }

    /// Looks an endpoint up by name.
    pub fn by_name(&self, name: &str) -> Option<(EndpointId, &EndpointRef)> {
        self.endpoints
            .iter()
            .enumerate()
            .find(|(_, ep)| ep.name() == name)
    }

    /// Iterates over `(id, endpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EndpointId, &EndpointRef)> {
        self.endpoints.iter().enumerate()
    }

    /// All endpoint ids.
    pub fn all_ids(&self) -> Vec<EndpointId> {
        (0..self.endpoints.len()).collect()
    }

    /// Sum of all endpoints' counters (snapshot).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.endpoints
            .iter()
            .map(|ep| ep.stats().snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc.plus(&s))
    }

    /// Total triples across the federation.
    pub fn total_triples(&self) -> usize {
        self.endpoints.iter().map(|ep| ep.triple_count()).sum()
    }
}

/// Builds a federation directly from named stores (test/bench helper).
pub fn federation_from_stores(
    dict: Arc<Dictionary>,
    stores: Vec<(String, lusail_store::TripleStore)>,
) -> Federation {
    let mut fed = Federation::new(dict);
    for (name, store) in stores {
        fed.add(Arc::new(crate::LocalEndpoint::new(name, store)) as Arc<dyn SparqlEndpoint>);
    }
    fed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalEndpoint;
    use lusail_rdf::Term;
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;

    fn fed() -> Federation {
        let dict = Dictionary::shared();
        let mut st1 = TripleStore::new(Arc::clone(&dict));
        st1.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://a/p"),
            &Term::iri("http://a/o"),
        );
        let mut st2 = TripleStore::new(Arc::clone(&dict));
        st2.insert_terms(
            &Term::iri("http://b/s"),
            &Term::iri("http://b/p"),
            &Term::iri("http://b/o"),
        );
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", st1)));
        fed.add(Arc::new(LocalEndpoint::new("B", st2)));
        fed
    }

    #[test]
    fn lookup_by_name_and_id() {
        let f = fed();
        assert_eq!(f.len(), 2);
        let (id, ep) = f.by_name("B").unwrap();
        assert_eq!(id, 1);
        assert_eq!(ep.name(), "B");
        assert_eq!(f.endpoint(0).name(), "A");
        assert!(f.by_name("C").is_none());
    }

    #[test]
    fn ask_routes_to_the_right_store() {
        let f = fed();
        let q = parse_query("ASK { ?s <http://a/p> ?o }", f.dict()).unwrap();
        assert!(f.endpoint(0).ask(&q));
        assert!(!f.endpoint(1).ask(&q));
    }

    #[test]
    fn stats_aggregate_across_endpoints() {
        let f = fed();
        let before = f.stats_snapshot();
        let q = parse_query("SELECT * WHERE { ?s ?p ?o }", f.dict()).unwrap();
        let r0 = f.endpoint(0).select(&q);
        let r1 = f.endpoint(1).select(&q);
        assert_eq!(r0.len(), 1);
        assert_eq!(r1.len(), 1);
        let window = f.stats_snapshot().since(&before);
        assert_eq!(window.select_requests, 2);
        assert_eq!(window.rows_returned, 2);
        assert!(window.bytes_sent > 0);
    }

    #[test]
    fn total_triples_sums_endpoints() {
        assert_eq!(fed().total_triples(), 2);
    }
}
