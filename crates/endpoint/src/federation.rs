//! A federation: the named set of endpoints a query runs against.

use crate::fault::{FaultProfile, FlakyEndpoint};
use crate::network::{NetworkProfile, StatsSnapshot};
use crate::{EndpointRef, LocalEndpoint};
use lusail_rdf::Dictionary;
use lusail_store::TripleStore;
use std::sync::Arc;

/// Index of an endpoint within a [`Federation`]. Engines carry endpoint
/// sets as sorted `Vec<EndpointId>`.
pub type EndpointId = usize;

/// An ordered collection of SPARQL endpoints sharing one term dictionary.
#[derive(Clone)]
pub struct Federation {
    dict: Arc<Dictionary>,
    endpoints: Vec<EndpointRef>,
}

impl Federation {
    /// Creates an empty federation over the given dictionary.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        Federation {
            dict,
            endpoints: Vec::new(),
        }
    }

    /// Starts a [`FederationBuilder`] over the given dictionary.
    pub fn builder(dict: Arc<Dictionary>) -> FederationBuilder {
        FederationBuilder {
            dict,
            entries: Vec::new(),
        }
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// Adds an endpoint, returning its id.
    pub fn add(&mut self, ep: EndpointRef) -> EndpointId {
        self.endpoints.push(ep);
        self.endpoints.len() - 1
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True if the federation has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The endpoint with the given id. Panics on out-of-range ids (ids are
    /// only produced by [`Federation::add`]).
    pub fn endpoint(&self, id: EndpointId) -> &EndpointRef {
        &self.endpoints[id]
    }

    /// Looks an endpoint up by name.
    pub fn endpoint_by_name(&self, name: &str) -> Option<(EndpointId, &EndpointRef)> {
        self.endpoints
            .iter()
            .enumerate()
            .find(|(_, ep)| ep.name() == name)
    }

    /// Iterates over `(id, endpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EndpointId, &EndpointRef)> {
        self.endpoints.iter().enumerate()
    }

    /// All endpoint ids.
    pub fn all_ids(&self) -> Vec<EndpointId> {
        (0..self.endpoints.len()).collect()
    }

    /// Sum of all endpoints' counters (snapshot).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.endpoints
            .iter()
            .map(|ep| ep.stats_snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc.plus(&s))
    }

    /// Total triples across the federation.
    pub fn total_triples(&self) -> usize {
        self.endpoints.iter().map(|ep| ep.triple_count()).sum()
    }
}

/// Fluent construction of a [`Federation`]: each [`endpoint`] call adds a
/// [`LocalEndpoint`], and [`profile`]/[`faults`] decorate the most recently
/// added endpoint.
///
/// [`endpoint`]: FederationBuilder::endpoint
/// [`profile`]: FederationBuilder::profile
/// [`faults`]: FederationBuilder::faults
///
/// ```
/// # use lusail_endpoint::{FaultProfile, Federation, NetworkProfile};
/// # use lusail_rdf::Dictionary;
/// # use lusail_store::TripleStore;
/// # let dict = Dictionary::shared();
/// # let (a, b) = (TripleStore::new(dict.clone()), TripleStore::new(dict.clone()));
/// let fed = Federation::builder(dict)
///     .endpoint("stable", a)
///     .endpoint("flaky", b)
///     .profile(NetworkProfile::wan(30, 100))
///     .faults(FaultProfile::transient(42, 0.2))
///     .build();
/// assert_eq!(fed.len(), 2);
/// assert!(fed.endpoint_by_name("flaky").is_some());
/// ```
pub struct FederationBuilder {
    dict: Arc<Dictionary>,
    entries: Vec<BuilderEntry>,
}

enum BuilderEntry {
    Local {
        name: String,
        store: TripleStore,
        profile: NetworkProfile,
        faults: Option<FaultProfile>,
    },
    Custom {
        ep: EndpointRef,
        faults: Option<FaultProfile>,
    },
}

impl FederationBuilder {
    /// Adds a [`LocalEndpoint`] over the store, with the default (zero
    /// delay, no faults) network.
    pub fn endpoint(mut self, name: impl Into<String>, store: TripleStore) -> Self {
        self.entries.push(BuilderEntry::Local {
            name: name.into(),
            store,
            profile: NetworkProfile::default(),
            faults: None,
        });
        self
    }

    /// Adds a pre-built endpoint (e.g. a custom [`SparqlEndpoint`] impl).
    pub fn custom(mut self, ep: EndpointRef) -> Self {
        self.entries.push(BuilderEntry::Custom { ep, faults: None });
        self
    }

    /// Sets the network profile of the most recently added endpoint.
    ///
    /// # Panics
    ///
    /// Panics if no endpoint has been added, or the last endpoint was
    /// added via [`FederationBuilder::custom`] (its network behaviour is
    /// its own business).
    pub fn profile(mut self, profile: NetworkProfile) -> Self {
        match self.entries.last_mut() {
            Some(BuilderEntry::Local { profile: p, .. }) => *p = profile,
            Some(BuilderEntry::Custom { .. }) => {
                panic!("profile() cannot decorate an externally built endpoint")
            }
            None => panic!("profile() before any endpoint()"),
        }
        self
    }

    /// Wraps the most recently added endpoint in a [`FlakyEndpoint`] with
    /// the given fault profile.
    ///
    /// # Panics
    ///
    /// Panics if no endpoint has been added yet.
    pub fn faults(mut self, faults: FaultProfile) -> Self {
        match self.entries.last_mut() {
            Some(BuilderEntry::Local { faults: f, .. })
            | Some(BuilderEntry::Custom { faults: f, .. }) => *f = Some(faults),
            None => panic!("faults() before any endpoint()"),
        }
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Federation {
        let mut fed = Federation::new(self.dict);
        for entry in self.entries {
            let (base, faults): (EndpointRef, Option<FaultProfile>) = match entry {
                BuilderEntry::Local {
                    name,
                    store,
                    profile,
                    faults,
                } => (
                    Arc::new(LocalEndpoint::with_profile(name, store, profile)),
                    faults,
                ),
                BuilderEntry::Custom { ep, faults } => (ep, faults),
            };
            let ep = match faults {
                Some(f) => Arc::new(FlakyEndpoint::new(base, f)) as EndpointRef,
                None => base,
            };
            fed.add(ep);
        }
        fed
    }
}

/// Builds a federation directly from named stores (test/bench helper).
pub fn federation_from_stores(
    dict: Arc<Dictionary>,
    stores: Vec<(String, TripleStore)>,
) -> Federation {
    let mut builder = Federation::builder(dict);
    for (name, store) in stores {
        builder = builder.endpoint(name, store);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;

    fn fed() -> Federation {
        let dict = Dictionary::shared();
        let mut st1 = TripleStore::new(Arc::clone(&dict));
        st1.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://a/p"),
            &Term::iri("http://a/o"),
        );
        let mut st2 = TripleStore::new(Arc::clone(&dict));
        st2.insert_terms(
            &Term::iri("http://b/s"),
            &Term::iri("http://b/p"),
            &Term::iri("http://b/o"),
        );
        Federation::builder(dict)
            .endpoint("A", st1)
            .endpoint("B", st2)
            .build()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let f = fed();
        assert_eq!(f.len(), 2);
        let (id, ep) = f.endpoint_by_name("B").unwrap();
        assert_eq!(id, 1);
        assert_eq!(ep.name(), "B");
        assert_eq!(f.endpoint(0).name(), "A");
        assert!(f.endpoint_by_name("C").is_none());
    }

    #[test]
    fn ask_routes_to_the_right_store() {
        let f = fed();
        let q = parse_query("ASK { ?s <http://a/p> ?o }", f.dict()).unwrap();
        assert!(f.endpoint(0).ask(&q).unwrap());
        assert!(!f.endpoint(1).ask(&q).unwrap());
    }

    #[test]
    fn stats_aggregate_across_endpoints() {
        let f = fed();
        let before = f.stats_snapshot();
        let q = parse_query("SELECT * WHERE { ?s ?p ?o }", f.dict()).unwrap();
        let r0 = f.endpoint(0).select(&q).unwrap();
        let r1 = f.endpoint(1).select(&q).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r1.len(), 1);
        let window = f.stats_snapshot().since(&before);
        assert_eq!(window.select_requests, 2);
        assert_eq!(window.rows_returned, 2);
        assert!(window.bytes_sent > 0);
    }

    #[test]
    fn total_triples_sums_endpoints() {
        assert_eq!(fed().total_triples(), 2);
    }

    #[test]
    fn builder_applies_profiles_and_faults() {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        st.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://a/p"),
            &Term::iri("http://a/o"),
        );
        let mut profile = NetworkProfile::wan(10, 100);
        profile.sleep = false;
        let f = Federation::builder(Arc::clone(&dict))
            .endpoint("A", st)
            .profile(profile)
            .faults(FaultProfile::dead())
            .endpoint("B", TripleStore::new(dict))
            .build();
        assert_eq!(f.len(), 2);
        // The dead fault profile wraps the profiled endpoint.
        let q = parse_query("ASK { ?s <http://a/p> ?o }", f.dict()).unwrap();
        assert!(f.endpoint(0).ask(&q).is_err());
        assert!(!f.endpoint(1).ask(&q).unwrap());
        assert_eq!(f.endpoint(0).triple_count(), 1);
    }
}
