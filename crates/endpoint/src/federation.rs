//! A federation: the named set of endpoints a query runs against.

use crate::fault::{FaultProfile, FlakyEndpoint};
use crate::network::{NetworkProfile, StatsSnapshot};
use crate::{EndpointRef, LocalEndpoint};
use lusail_rdf::Dictionary;
use lusail_store::{BackendKind, EndpointStats, TripleStore};
use std::sync::{Arc, Mutex};

/// Index of an endpoint within a [`Federation`]. Engines carry endpoint
/// sets as sorted `Vec<EndpointId>`.
pub type EndpointId = usize;

/// An ordered collection of SPARQL endpoints sharing one term dictionary.
///
/// Endpoints are organized into *replica groups*: a group is one logical
/// partition served by a primary plus zero or more replicas holding the
/// same data. [`Federation::add`] creates a singleton group (the endpoint
/// is its own primary); [`Federation::add_replica`] joins an existing
/// group. By convention replicas are added *after* all primaries, so a
/// federation with replication factor 1 is id-for-id identical to an
/// unreplicated one.
#[derive(Clone)]
pub struct Federation {
    dict: Arc<Dictionary>,
    endpoints: Vec<EndpointRef>,
    /// `group_of[id]` is the id of the group's primary; an endpoint is a
    /// primary iff `group_of[id] == id`.
    group_of: Vec<EndpointId>,
    /// Optional offline statistics per endpoint, indexed by endpoint id
    /// and shared across clones (so an engine invalidating an entry after
    /// an endpoint death is seen by every holder of the federation).
    stats: Arc<Mutex<Vec<Option<Arc<EndpointStats>>>>>,
}

impl Federation {
    /// Creates an empty federation over the given dictionary.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        Federation {
            dict,
            endpoints: Vec::new(),
            group_of: Vec::new(),
            stats: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Starts a [`FederationBuilder`] over the given dictionary.
    pub fn builder(dict: Arc<Dictionary>) -> FederationBuilder {
        FederationBuilder {
            dict,
            entries: Vec::new(),
            backend: BackendKind::default(),
        }
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// Adds an endpoint as the primary of a new singleton replica group,
    /// returning its id.
    pub fn add(&mut self, ep: EndpointRef) -> EndpointId {
        self.endpoints.push(ep);
        let id = self.endpoints.len() - 1;
        self.group_of.push(id);
        id
    }

    /// Adds an endpoint as a replica of the given primary's group,
    /// returning the replica's id. The replica must serve the same logical
    /// partition as the primary (the caller's responsibility).
    ///
    /// # Panics
    ///
    /// Panics if `primary` is out of range or is itself a replica
    /// (replica groups are one level deep).
    pub fn add_replica(&mut self, primary: EndpointId, ep: EndpointRef) -> EndpointId {
        assert!(primary < self.endpoints.len(), "unknown primary {primary}");
        assert_eq!(
            self.group_of[primary], primary,
            "primary {primary} is itself a replica"
        );
        self.endpoints.push(ep);
        let id = self.endpoints.len() - 1;
        self.group_of.push(primary);
        id
    }

    /// The id of the primary of the endpoint's replica group (the
    /// endpoint itself when it is a primary).
    pub fn primary_of(&self, id: EndpointId) -> EndpointId {
        self.group_of[id]
    }

    /// All members of the endpoint's replica group, in id order (the
    /// primary first, since replicas are always added after it).
    pub fn replica_group(&self, id: EndpointId) -> Vec<EndpointId> {
        let primary = self.group_of[id];
        (0..self.endpoints.len())
            .filter(|&i| self.group_of[i] == primary)
            .collect()
    }

    /// Ids of all primaries — one per logical partition. Source selection
    /// probes these and only these: probing replicas as independent
    /// sources would duplicate every result row.
    pub fn logical_ids(&self) -> Vec<EndpointId> {
        (0..self.endpoints.len())
            .filter(|&i| self.group_of[i] == i)
            .collect()
    }

    /// True if any replica group has more than one member.
    pub fn is_replicated(&self) -> bool {
        self.group_of.iter().enumerate().any(|(i, &p)| i != p)
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True if the federation has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The endpoint with the given id. Panics on out-of-range ids (ids are
    /// only produced by [`Federation::add`]).
    pub fn endpoint(&self, id: EndpointId) -> &EndpointRef {
        &self.endpoints[id]
    }

    /// Looks an endpoint up by name.
    pub fn endpoint_by_name(&self, name: &str) -> Option<(EndpointId, &EndpointRef)> {
        self.endpoints
            .iter()
            .enumerate()
            .find(|(_, ep)| ep.name() == name)
    }

    /// Iterates over `(id, endpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EndpointId, &EndpointRef)> {
        self.endpoints.iter().enumerate()
    }

    /// All endpoint ids.
    pub fn all_ids(&self) -> Vec<EndpointId> {
        (0..self.endpoints.len()).collect()
    }

    /// Sum of all endpoints' counters (snapshot).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.endpoints
            .iter()
            .map(|ep| ep.stats_snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc.plus(&s))
    }

    /// Total triples across the federation.
    pub fn total_triples(&self) -> usize {
        self.endpoints.iter().map(|ep| ep.triple_count()).sum()
    }

    /// Attaches offline statistics for the endpoint. Statistics are an
    /// optional planning layer: engines that consult them may answer
    /// relevance/cardinality probes locally, but a conclusive local
    /// answer must equal the wire answer (see `lusail_store::stats`).
    /// Takes `&self` — the layer is interior-mutable and shared across
    /// clones, like the endpoints' own counters.
    pub fn attach_stats(&self, id: EndpointId, stats: Arc<EndpointStats>) {
        assert!(id < self.endpoints.len(), "unknown endpoint {id}");
        let mut slots = self.stats.lock().expect("stats lock poisoned");
        if slots.len() < self.endpoints.len() {
            slots.resize(self.endpoints.len(), None);
        }
        slots[id] = Some(stats);
    }

    /// The statistics attached for the endpoint, if any.
    pub fn stats_for(&self, id: EndpointId) -> Option<Arc<EndpointStats>> {
        self.stats
            .lock()
            .expect("stats lock poisoned")
            .get(id)
            .cloned()
            .flatten()
    }

    /// Drops the endpoint's statistics (mirroring probe-cache
    /// invalidation: once an endpoint is observed dead, requests fail
    /// over to replicas whose data may have diverged, so summaries of the
    /// dead member's store must stop answering conclusively).
    pub fn invalidate_stats(&self, id: EndpointId) {
        let mut slots = self.stats.lock().expect("stats lock poisoned");
        if let Some(slot) = slots.get_mut(id) {
            *slot = None;
        }
    }

    /// `(endpoints with stats, total characteristic sets)` — `None` when
    /// no endpoint carries statistics (the default).
    pub fn stats_overview(&self) -> Option<(usize, usize)> {
        let slots = self.stats.lock().expect("stats lock poisoned");
        let endpoints = slots.iter().filter(|s| s.is_some()).count();
        if endpoints == 0 {
            return None;
        }
        let sets = slots.iter().flatten().map(|s| s.sets.len()).sum();
        Some((endpoints, sets))
    }
}

/// Fluent construction of a [`Federation`]: each [`endpoint`] call adds a
/// [`LocalEndpoint`], and [`profile`]/[`faults`] decorate the most recently
/// added endpoint.
///
/// [`endpoint`]: FederationBuilder::endpoint
/// [`profile`]: FederationBuilder::profile
/// [`faults`]: FederationBuilder::faults
///
/// ```
/// # use lusail_endpoint::{FaultProfile, Federation, NetworkProfile};
/// # use lusail_rdf::Dictionary;
/// # use lusail_store::TripleStore;
/// # let dict = Dictionary::shared();
/// # let (a, b) = (TripleStore::new(dict.clone()), TripleStore::new(dict.clone()));
/// let fed = Federation::builder(dict)
///     .endpoint("stable", a)
///     .endpoint("flaky", b)
///     .profile(NetworkProfile::wan(30, 100))
///     .faults(FaultProfile::transient(42, 0.2))
///     .build();
/// assert_eq!(fed.len(), 2);
/// assert!(fed.endpoint_by_name("flaky").is_some());
/// ```
pub struct FederationBuilder {
    dict: Arc<Dictionary>,
    entries: Vec<BuilderEntry>,
    /// Storage backend every [`FederationBuilder::endpoint`] store is
    /// materialized into (custom endpoints manage their own storage).
    backend: BackendKind,
}

struct BuilderEntry {
    kind: EntryKind,
    faults: Option<FaultProfile>,
    /// Name of the primary this entry replicates, if any.
    replica_of: Option<String>,
}

enum EntryKind {
    Local {
        name: String,
        store: TripleStore,
        profile: NetworkProfile,
    },
    Custom {
        ep: EndpointRef,
    },
}

impl FederationBuilder {
    fn push(&mut self, kind: EntryKind) {
        self.entries.push(BuilderEntry {
            kind,
            faults: None,
            replica_of: None,
        });
    }

    /// Adds a [`LocalEndpoint`] over the store, with the default (zero
    /// delay, no faults) network.
    pub fn endpoint(mut self, name: impl Into<String>, store: TripleStore) -> Self {
        self.push(EntryKind::Local {
            name: name.into(),
            store,
            profile: NetworkProfile::default(),
        });
        self
    }

    /// Selects the storage backend that every store added via
    /// [`FederationBuilder::endpoint`] is materialized into at
    /// [`FederationBuilder::build`] time (default: [`BackendKind::Btree`]).
    /// Applies to all local entries, before or after this call; endpoints
    /// added via [`FederationBuilder::custom`] are unaffected.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Adds a pre-built endpoint (e.g. a custom [`SparqlEndpoint`] impl).
    pub fn custom(mut self, ep: EndpointRef) -> Self {
        self.push(EntryKind::Custom { ep });
        self
    }

    /// Sets the network profile of the most recently added endpoint.
    ///
    /// # Panics
    ///
    /// Panics if no endpoint has been added, or the last endpoint was
    /// added via [`FederationBuilder::custom`] (its network behaviour is
    /// its own business).
    pub fn profile(mut self, profile: NetworkProfile) -> Self {
        match self.entries.last_mut().map(|e| &mut e.kind) {
            Some(EntryKind::Local { profile: p, .. }) => *p = profile,
            Some(EntryKind::Custom { .. }) => {
                panic!("profile() cannot decorate an externally built endpoint")
            }
            None => panic!("profile() before any endpoint()"),
        }
        self
    }

    /// Wraps the most recently added endpoint in a [`FlakyEndpoint`] with
    /// the given fault profile.
    ///
    /// # Panics
    ///
    /// Panics if no endpoint has been added yet.
    pub fn faults(mut self, faults: FaultProfile) -> Self {
        match self.entries.last_mut() {
            Some(entry) => entry.faults = Some(faults),
            None => panic!("faults() before any endpoint()"),
        }
        self
    }

    /// Marks the most recently added endpoint as a replica of the named
    /// primary. Primaries are always added to the built federation before
    /// replicas, whatever order the builder calls arrived in, so ids
    /// `0..n_primaries` are stable under replication.
    ///
    /// # Panics
    ///
    /// Panics if no endpoint has been added yet. An unknown primary name
    /// (or a primary that is itself a replica) panics in
    /// [`FederationBuilder::build`].
    pub fn replica_of(mut self, primary: impl Into<String>) -> Self {
        match self.entries.last_mut() {
            Some(entry) => entry.replica_of = Some(primary.into()),
            None => panic!("replica_of() before any endpoint()"),
        }
        self
    }

    /// Finishes construction: primaries first (in insertion order), then
    /// replicas (in insertion order), each resolved to its primary by name.
    pub fn build(self) -> Federation {
        let mut fed = Federation::new(self.dict);
        let (primaries, replicas): (Vec<BuilderEntry>, Vec<BuilderEntry>) = self
            .entries
            .into_iter()
            .partition(|e| e.replica_of.is_none());
        for entry in primaries {
            let ep = realize(entry.kind, entry.faults, self.backend);
            fed.add(ep);
        }
        for entry in replicas {
            let primary_name = entry.replica_of.expect("partitioned as replica");
            let (primary, _) = fed
                .endpoint_by_name(&primary_name)
                .unwrap_or_else(|| panic!("replica_of(): unknown primary {primary_name:?}"));
            let ep = realize(entry.kind, entry.faults, self.backend);
            fed.add_replica(primary, ep);
        }
        fed
    }
}

/// Materializes one builder entry into an endpoint, applying the chosen
/// storage backend and the fault wrapper when requested.
fn realize(kind: EntryKind, faults: Option<FaultProfile>, backend: BackendKind) -> EndpointRef {
    let base: EndpointRef = match kind {
        EntryKind::Local {
            name,
            store,
            profile,
        } => Arc::new(LocalEndpoint::on_backend(name, store, backend, profile)),
        EntryKind::Custom { ep } => ep,
    };
    match faults {
        Some(f) => Arc::new(FlakyEndpoint::new(base, f)) as EndpointRef,
        None => base,
    }
}

/// Builds a federation directly from named stores (test/bench helper).
pub fn federation_from_stores(
    dict: Arc<Dictionary>,
    stores: Vec<(String, TripleStore)>,
) -> Federation {
    let mut builder = Federation::builder(dict);
    for (name, store) in stores {
        builder = builder.endpoint(name, store);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;

    fn fed() -> Federation {
        let dict = Dictionary::shared();
        let mut st1 = TripleStore::new(Arc::clone(&dict));
        st1.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://a/p"),
            &Term::iri("http://a/o"),
        );
        let mut st2 = TripleStore::new(Arc::clone(&dict));
        st2.insert_terms(
            &Term::iri("http://b/s"),
            &Term::iri("http://b/p"),
            &Term::iri("http://b/o"),
        );
        Federation::builder(dict)
            .endpoint("A", st1)
            .endpoint("B", st2)
            .build()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let f = fed();
        assert_eq!(f.len(), 2);
        let (id, ep) = f.endpoint_by_name("B").unwrap();
        assert_eq!(id, 1);
        assert_eq!(ep.name(), "B");
        assert_eq!(f.endpoint(0).name(), "A");
        assert!(f.endpoint_by_name("C").is_none());
    }

    #[test]
    fn ask_routes_to_the_right_store() {
        let f = fed();
        let q = parse_query("ASK { ?s <http://a/p> ?o }", f.dict()).unwrap();
        assert!(f.endpoint(0).ask(&q).unwrap());
        assert!(!f.endpoint(1).ask(&q).unwrap());
    }

    #[test]
    fn stats_aggregate_across_endpoints() {
        let f = fed();
        let before = f.stats_snapshot();
        let q = parse_query("SELECT * WHERE { ?s ?p ?o }", f.dict()).unwrap();
        let r0 = f.endpoint(0).select(&q).unwrap();
        let r1 = f.endpoint(1).select(&q).unwrap();
        assert_eq!(r0.len(), 1);
        assert_eq!(r1.len(), 1);
        let window = f.stats_snapshot().since(&before);
        assert_eq!(window.select_requests, 2);
        assert_eq!(window.rows_returned, 2);
        assert!(window.bytes_sent > 0);
    }

    #[test]
    fn total_triples_sums_endpoints() {
        assert_eq!(fed().total_triples(), 2);
    }

    #[test]
    fn replica_groups_track_primaries() {
        let dict = Dictionary::shared();
        let mut f = Federation::new(Arc::clone(&dict));
        let store = || TripleStore::new(Arc::clone(&dict));
        let a = f.add(Arc::new(LocalEndpoint::new("A", store())));
        let b = f.add(Arc::new(LocalEndpoint::new("B", store())));
        assert!(!f.is_replicated());
        let a2 = f.add_replica(a, Arc::new(LocalEndpoint::new("A-replica", store())));
        assert!(f.is_replicated());
        assert_eq!(f.primary_of(a2), a);
        assert_eq!(f.primary_of(a), a);
        assert_eq!(f.replica_group(a), vec![a, a2]);
        assert_eq!(f.replica_group(a2), vec![a, a2]);
        assert_eq!(f.replica_group(b), vec![b]);
        assert_eq!(f.logical_ids(), vec![a, b]);
        assert_eq!(f.all_ids(), vec![a, b, a2]);
    }

    #[test]
    #[should_panic(expected = "is itself a replica")]
    fn replica_of_a_replica_is_rejected() {
        let dict = Dictionary::shared();
        let mut f = Federation::new(Arc::clone(&dict));
        let store = || TripleStore::new(Arc::clone(&dict));
        let a = f.add(Arc::new(LocalEndpoint::new("A", store())));
        let r = f.add_replica(a, Arc::new(LocalEndpoint::new("R", store())));
        f.add_replica(r, Arc::new(LocalEndpoint::new("R2", store())));
    }

    #[test]
    fn builder_orders_primaries_before_replicas() {
        let dict = Dictionary::shared();
        let store = || TripleStore::new(Arc::clone(&dict));
        // The replica is declared in the middle; it must still land after
        // every primary so primary ids are stable under replication.
        let f = Federation::builder(Arc::clone(&dict))
            .endpoint("A", store())
            .endpoint("A-replica", store())
            .replica_of("A")
            .endpoint("B", store())
            .build();
        assert_eq!(f.endpoint(0).name(), "A");
        assert_eq!(f.endpoint(1).name(), "B");
        assert_eq!(f.endpoint(2).name(), "A-replica");
        assert_eq!(f.logical_ids(), vec![0, 1]);
        assert_eq!(f.replica_group(0), vec![0, 2]);
    }

    #[test]
    fn stats_attach_lookup_invalidate_shared_across_clones() {
        let f = fed();
        assert!(f.stats_for(0).is_none());
        assert!(f.stats_overview().is_none());

        let mut st = TripleStore::new(Arc::clone(f.dict()));
        st.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://a/p"),
            &Term::iri("http://a/o"),
        );
        let stats = Arc::new(EndpointStats::build(&st));
        f.attach_stats(0, Arc::clone(&stats));
        assert!(f.stats_for(0).is_some());
        assert!(f.stats_for(1).is_none());
        assert_eq!(f.stats_overview(), Some((1, 1)));

        // Clones see attachments and invalidations made through any holder.
        let clone = f.clone();
        assert!(clone.stats_for(0).is_some());
        clone.invalidate_stats(0);
        assert!(f.stats_for(0).is_none());
        assert!(f.stats_overview().is_none());
        // Invalidating an id without stats (or out of range) is a no-op.
        f.invalidate_stats(1);
        f.invalidate_stats(99);
    }

    #[test]
    fn builder_applies_profiles_and_faults() {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        st.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://a/p"),
            &Term::iri("http://a/o"),
        );
        let mut profile = NetworkProfile::wan(10, 100);
        profile.sleep = false;
        let f = Federation::builder(Arc::clone(&dict))
            .endpoint("A", st)
            .profile(profile)
            .faults(FaultProfile::dead())
            .endpoint("B", TripleStore::new(dict))
            .build();
        assert_eq!(f.len(), 2);
        // The dead fault profile wraps the profiled endpoint.
        let q = parse_query("ASK { ?s <http://a/p> ?o }", f.dict()).unwrap();
        assert!(f.endpoint(0).ask(&q).is_err());
        assert!(!f.endpoint(1).ask(&q).unwrap());
        assert_eq!(f.endpoint(0).triple_count(), 1);
    }
}
