//! Error taxonomy for the fallible endpoint API, plus the outcome types
//! federated engines report.
//!
//! The paper treats endpoints as autonomous remote services; real SPARQL
//! endpoints time out, throttle, and go down. [`EndpointError`] models the
//! failure classes a federated engine must distinguish: transient errors
//! are worth retrying, [`EndpointError::Unavailable`] is not. Engines never
//! panic on a failing endpoint — they degrade and report the damage via
//! [`QueryOutcome`].

use crate::federation::EndpointId;
use std::fmt;

/// A failed endpoint request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointError {
    /// The request (or its retry budget) exceeded its deadline.
    Timeout,
    /// The endpoint is down or refusing connections. Not transient: a
    /// resilient client fails fast instead of retrying.
    Unavailable,
    /// The endpoint throttled the request (HTTP 429 semantics).
    TooManyRequests,
    /// The connection dropped mid-request (reset, truncated response).
    Interrupted,
}

impl EndpointError {
    /// All error kinds, in taxonomy order (the order deduped failure
    /// reports list them in).
    pub const ALL: [EndpointError; 4] = [
        EndpointError::Timeout,
        EndpointError::Unavailable,
        EndpointError::TooManyRequests,
        EndpointError::Interrupted,
    ];

    /// True if an immediate retry has a reasonable chance of succeeding.
    /// `Unavailable` is the one terminal class: retrying a down endpoint
    /// only burns the deadline budget.
    pub fn is_transient(&self) -> bool {
        !matches!(self, EndpointError::Unavailable)
    }

    /// Dense index (for per-kind sets carried as bitmasks).
    pub fn index(self) -> usize {
        match self {
            EndpointError::Timeout => 0,
            EndpointError::Unavailable => 1,
            EndpointError::TooManyRequests => 2,
            EndpointError::Interrupted => 3,
        }
    }
}

impl fmt::Display for EndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointError::Timeout => write!(f, "request timed out"),
            EndpointError::Unavailable => write!(f, "endpoint unavailable"),
            EndpointError::TooManyRequests => write!(f, "endpoint throttled the request"),
            EndpointError::Interrupted => write!(f, "connection interrupted"),
        }
    }
}

impl std::error::Error for EndpointError {}

/// A federation-level failure: the query could not be attempted at all
/// (as opposed to partial endpoint failures, which degrade gracefully
/// into an incomplete [`QueryOutcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// The federation has no endpoints.
    EmptyFederation,
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::EmptyFederation => {
                write!(f, "the federation has no endpoints")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// Per-endpoint damage report for one query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointFailure {
    /// The endpoint's id within the federation.
    pub endpoint: EndpointId,
    /// The endpoint's name.
    pub name: String,
    /// Requests that ultimately failed (after retries).
    pub failed_requests: u64,
    /// Retries spent on this endpoint.
    pub retries: u64,
    /// True if the endpoint's circuit was opened (tripped) at some point
    /// during the query, even if it later recovered through a half-open
    /// probe.
    pub dead: bool,
    /// The most recent error observed.
    pub last_error: Option<EndpointError>,
    /// The distinct error kinds observed, deduped, in
    /// [`EndpointError::ALL`] order — deterministic regardless of the
    /// order failures arrived in.
    pub errors: Vec<EndpointError>,
}

/// What a federated engine returns: the solutions, whether they are
/// provably complete, and which endpoints misbehaved.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The solutions retrieved.
    pub solutions: lusail_sparql::SolutionSet,
    /// True if no result-bearing request was lost. Degraded *probes*
    /// (ASK/COUNT/check queries answered conservatively) do not clear
    /// this flag — only lost solution data does.
    pub complete: bool,
    /// Endpoints that failed requests, with retry counts and trip status.
    pub failures: Vec<EndpointFailure>,
}

impl QueryOutcome {
    /// A complete outcome with no failures.
    pub fn complete(solutions: lusail_sparql::SolutionSet) -> Self {
        QueryOutcome {
            solutions,
            complete: true,
            failures: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(EndpointError::Timeout.is_transient());
        assert!(EndpointError::TooManyRequests.is_transient());
        assert!(EndpointError::Interrupted.is_transient());
        assert!(!EndpointError::Unavailable.is_transient());
    }

    #[test]
    fn errors_display_and_propagate() {
        let e: Box<dyn std::error::Error> = Box::new(EndpointError::Timeout);
        assert_eq!(e.to_string(), "request timed out");
        let f: Box<dyn std::error::Error> = Box::new(FederationError::EmptyFederation);
        assert!(f.to_string().contains("no endpoints"));
    }
}
