//! Simulated network: per-endpoint request counters and delay profiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Network characteristics of the path between the federated engine and an
/// endpoint.
#[derive(Debug, Clone, Copy)]
pub struct NetworkProfile {
    /// Round-trip latency added to every request.
    pub latency: Duration,
    /// Link bandwidth in bytes/second; `None` means unmetered.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// If true, requests actually sleep for the simulated time; if false
    /// the time is only accumulated in the stats snapshot.
    pub sleep: bool,
}

impl Default for NetworkProfile {
    /// The local-cluster setting: no delay, accounting only.
    fn default() -> Self {
        NetworkProfile {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
            sleep: false,
        }
    }
}

impl NetworkProfile {
    /// A WAN-like profile that really sleeps: `latency_ms` round-trip
    /// latency and `mbps` megabits/second of bandwidth.
    pub fn wan(latency_ms: u64, mbps: u64) -> Self {
        NetworkProfile {
            latency: Duration::from_millis(latency_ms),
            bandwidth_bytes_per_sec: Some(mbps * 1_000_000 / 8),
            sleep: true,
        }
    }

    /// Transfer time for `bytes` at the profile's bandwidth.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        match self.bandwidth_bytes_per_sec {
            Some(bw) if bw > 0 => Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / bw),
            _ => Duration::ZERO,
        }
    }
}

/// Lock-free counters for one endpoint. All counters only ever increase;
/// harnesses snapshot before/after a run and subtract.
#[derive(Debug, Default)]
pub struct NetworkStats {
    ask_requests: AtomicU64,
    select_requests: AtomicU64,
    count_requests: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_returned: AtomicU64,
    rows_returned: AtomicU64,
    virtual_time_ns: AtomicU64,
    faults_injected: AtomicU64,
    slowdowns_injected: AtomicU64,
}

impl NetworkStats {
    pub(crate) fn bump_ask(&self) {
        self.ask_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_select(&self) {
        self.select_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_count(&self) {
        self.count_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_fault(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_slowdown(&self) {
        self.slowdowns_injected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, sent: u64, returned: u64, rows: u64, time: Duration) {
        self.bytes_sent.fetch_add(sent, Ordering::Relaxed);
        self.bytes_returned.fetch_add(returned, Ordering::Relaxed);
        self.rows_returned.fetch_add(rows, Ordering::Relaxed);
        self.virtual_time_ns
            .fetch_add(time.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ask_requests: self.ask_requests.load(Ordering::Relaxed),
            select_requests: self.select_requests.load(Ordering::Relaxed),
            count_requests: self.count_requests.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_returned: self.bytes_returned.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            virtual_time_ns: self.virtual_time_ns.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            slowdowns_injected: self.slowdowns_injected.load(Ordering::Relaxed),
            rows_scanned: 0,
            queries_shed: 0,
        }
    }
}

/// An immutable snapshot of [`NetworkStats`] counters. Supports
/// subtraction to measure a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `ASK` requests issued.
    pub ask_requests: u64,
    /// `SELECT` requests issued.
    pub select_requests: u64,
    /// `COUNT` requests issued.
    pub count_requests: u64,
    /// Serialized request bytes sent to the endpoint.
    pub bytes_sent: u64,
    /// Result bytes returned by the endpoint.
    pub bytes_returned: u64,
    /// Result rows returned by the endpoint.
    pub rows_returned: u64,
    /// Accumulated simulated network time, in nanoseconds.
    pub virtual_time_ns: u64,
    /// Requests that were failed by injected faults (flaky endpoints).
    pub faults_injected: u64,
    /// Requests that were slowed down by injected faults.
    pub slowdowns_injected: u64,
    /// Store index entries visited while answering requests (see
    /// [`StorageBackend::rows_scanned`](lusail_store::StorageBackend::rows_scanned)).
    /// Maintained by the store itself; endpoint wrappers overlay it into
    /// their snapshots, so `NetworkStats::snapshot` leaves it zero.
    pub rows_scanned: u64,
    /// Queries refused by admission control (shed, deadline-expired, or
    /// draining). Like `rows_scanned`, this is an overlay: the serving
    /// layer maintains it and `NetworkStats::snapshot` leaves it zero, so
    /// single-shot executions always report zero.
    pub queries_shed: u64,
}

impl StatsSnapshot {
    /// Total requests of any kind.
    pub fn total_requests(&self) -> u64 {
        self.ask_requests + self.select_requests + self.count_requests
    }

    /// Counter-wise difference `self - earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            ask_requests: self.ask_requests - earlier.ask_requests,
            select_requests: self.select_requests - earlier.select_requests,
            count_requests: self.count_requests - earlier.count_requests,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_returned: self.bytes_returned - earlier.bytes_returned,
            rows_returned: self.rows_returned - earlier.rows_returned,
            virtual_time_ns: self.virtual_time_ns - earlier.virtual_time_ns,
            faults_injected: self.faults_injected - earlier.faults_injected,
            slowdowns_injected: self.slowdowns_injected - earlier.slowdowns_injected,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            queries_shed: self.queries_shed - earlier.queries_shed,
        }
    }

    /// Counter-wise sum (aggregating across endpoints).
    pub fn plus(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            ask_requests: self.ask_requests + other.ask_requests,
            select_requests: self.select_requests + other.select_requests,
            count_requests: self.count_requests + other.count_requests,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_returned: self.bytes_returned + other.bytes_returned,
            rows_returned: self.rows_returned + other.rows_returned,
            virtual_time_ns: self.virtual_time_ns + other.virtual_time_ns,
            faults_injected: self.faults_injected + other.faults_injected,
            slowdowns_injected: self.slowdowns_injected + other.slowdowns_injected,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            queries_shed: self.queries_shed + other.queries_shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = NetworkProfile::wan(50, 8); // 8 Mbit/s = 1 MB/s
        assert_eq!(p.transfer_time(1_000_000), Duration::from_secs(1));
        assert_eq!(p.transfer_time(0), Duration::ZERO);
        let unmetered = NetworkProfile::default();
        assert_eq!(unmetered.transfer_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn snapshot_window_arithmetic() {
        let stats = NetworkStats::default();
        stats.bump_ask();
        stats.record(10, 20, 2, Duration::from_millis(5));
        let before = stats.snapshot();
        stats.bump_select();
        stats.record(30, 40, 4, Duration::from_millis(7));
        let after = stats.snapshot();
        let window = after.since(&before);
        assert_eq!(window.total_requests(), 1);
        assert_eq!(window.bytes_sent, 30);
        assert_eq!(window.bytes_returned, 40);
        assert_eq!(window.rows_returned, 4);
        assert_eq!(window.virtual_time_ns, 7_000_000);
        let sum = before.plus(&window);
        assert_eq!(sum, after);
    }
}
