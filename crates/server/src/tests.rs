use super::*;
use crate::http::{percent_decode, render_solutions, run_http_loop};
use lusail_core::LusailConfig;
use lusail_endpoint::{FaultProfile, FlakyEndpoint, LocalEndpoint, ManualClock, RequestPolicy};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;
use std::thread;

fn tiny_federation() -> (Federation, Arc<Dictionary>) {
    let dict = Dictionary::shared();
    let mut store = TripleStore::new(Arc::clone(&dict));
    for i in 0..5 {
        store.insert_terms(
            &Term::iri(format!("http://x/s{i}")),
            &Term::iri("http://x/p"),
            &Term::iri(format!("http://x/o{i}")),
        );
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(lusail_endpoint::LocalEndpoint::new("ep0", store)));
    (fed, dict)
}

fn tiny_query(dict: &Dictionary) -> Query {
    parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }", dict).unwrap()
}

fn tiny_server(config: ServerConfig) -> (Arc<QueryServer>, Query) {
    let (fed, dict) = tiny_federation();
    let query = tiny_query(&dict);
    let server = QueryServer::new(fed, Lusail::default(), config);
    (server, query)
}

#[test]
fn admitted_query_returns_rows_and_counts() {
    let (server, query) = tiny_server(ServerConfig::default());
    let result = server.execute("alice", &query).unwrap();
    assert_eq!(result.solutions.len(), 5);
    assert!(result.complete);
    let c = server.counters();
    assert_eq!(c.admitted, 1);
    assert_eq!(c.complete_results, 1);
    assert_eq!(c.total_rejected(), 0);
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn zero_deadline_is_a_typed_deadline_rejection() {
    let (server, query) = tiny_server(ServerConfig::default());
    let err = server
        .execute_with_deadline("alice", &query, Some(Duration::ZERO))
        .unwrap_err();
    match err {
        ServeError::Rejected(r) => assert_eq!(r.code(), "deadline"),
        other => panic!("expected rejection, got {other}"),
    }
    assert_eq!(server.counters().deadline_rejected, 1);
    // The rejection never reached the engine or the wire.
    assert_eq!(server.counters().admitted, 0);
}

#[test]
fn draining_server_refuses_new_queries_with_typed_rejection() {
    let (server, query) = tiny_server(ServerConfig::default());
    let report = server.drain();
    assert_eq!(report.abandoned, 0);
    assert!(server.is_draining());
    let err = server.execute("alice", &query).unwrap_err();
    match err {
        ServeError::Rejected(Rejection::Draining) => {}
        other => panic!("expected draining, got {other}"),
    }
    assert_eq!(server.counters().draining_rejected, 1);
}

#[test]
fn capacity_zero_sheds_everything_with_reason() {
    let (server, query) = tiny_server(ServerConfig {
        max_in_flight: 0,
        ..ServerConfig::default()
    });
    let err = server.execute("alice", &query).unwrap_err();
    match err {
        ServeError::Rejected(Rejection::Shed { reason }) => {
            assert!(reason.contains("capacity"), "reason was {reason:?}");
        }
        other => panic!("expected shed, got {other}"),
    }
    assert_eq!(server.counters().shed, 1);
    assert_eq!(server.stats_snapshot().queries_shed, 1);
}

#[test]
fn tenant_quota_is_independent_of_global_capacity() {
    // Global capacity is ample, but each tenant may only run one query
    // at a time. Holding tenant A's slot from another thread, A is shed
    // while B still gets in.
    let config = ServerConfig {
        max_in_flight: 8,
        default_tenant: TenantPolicy {
            max_in_flight: 1,
            deadline_budget: Duration::from_secs(30),
        },
        ..ServerConfig::default()
    };
    let (server, query) = tiny_server(config);
    // Occupy tenant A's slot manually via the admission path.
    let policy = server.config().policy_for("a");
    let session = server
        .admit("a", &policy, Duration::from_secs(5))
        .expect("first admission fits");
    let err = server.execute("a", &query).unwrap_err();
    match err {
        ServeError::Rejected(Rejection::Shed { reason }) => {
            assert!(reason.contains("quota"), "reason was {reason:?}");
        }
        other => panic!("expected tenant shed, got {other}"),
    }
    server.execute("b", &query).expect("tenant b unaffected");
    // Release A's slot the way SessionGuard would.
    drop(SessionGuard {
        server: &server,
        tenant: "a".into(),
        session,
    });
    server.execute("a", &query).expect("slot released");
}

#[test]
fn requested_deadline_is_clamped_to_tenant_budget() {
    let config = ServerConfig {
        default_tenant: TenantPolicy {
            max_in_flight: 4,
            deadline_budget: Duration::from_millis(250),
        },
        ..ServerConfig::default()
    };
    let (server, query) = tiny_server(config);
    // An hour-long request is clamped to 250 ms, which is still plenty
    // for a five-triple federation — the query succeeds.
    let result = server
        .execute_with_deadline("a", &query, Some(Duration::from_secs(3600)))
        .unwrap();
    assert!(result.complete);
}

#[test]
fn drain_waits_for_in_flight_queries() {
    let (server, query) = tiny_server(ServerConfig::default());
    let server2 = Arc::clone(&server);
    let query2 = query.clone();
    let worker = thread::spawn(move || {
        // Hold an admission slot across the drain call.
        for _ in 0..50 {
            let _ = server2.execute("a", &query2);
        }
    });
    let report = server.drain();
    assert_eq!(report.abandoned, 0);
    assert_eq!(server.in_flight(), 0);
    worker.join().unwrap();
}

#[test]
fn concurrent_tenants_never_overshoot_global_capacity() {
    let config = ServerConfig {
        max_in_flight: 2,
        default_tenant: TenantPolicy {
            max_in_flight: 2,
            deadline_budget: Duration::from_secs(30),
        },
        ..ServerConfig::default()
    };
    let (server, query) = tiny_server(config);
    let mut handles = Vec::new();
    for t in 0..8 {
        let server = Arc::clone(&server);
        let query = query.clone();
        handles.push(thread::spawn(move || {
            let tenant = format!("t{t}");
            let mut ok = 0u64;
            let mut shed = 0u64;
            for _ in 0..20 {
                match server.execute(&tenant, &query) {
                    Ok(r) => {
                        assert_eq!(r.solutions.len(), 5);
                        ok += 1;
                    }
                    Err(ServeError::Rejected(r)) => {
                        assert_eq!(r.code(), "shed");
                        shed += 1;
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
            (ok, shed)
        }));
    }
    let mut total_ok = 0;
    let mut total_shed = 0;
    for h in handles {
        let (ok, shed) = h.join().unwrap();
        total_ok += ok;
        total_shed += shed;
    }
    let c = server.counters();
    assert_eq!(c.admitted, total_ok);
    assert_eq!(c.shed, total_shed);
    assert_eq!(total_ok + total_shed, 160);
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn render_solutions_matches_cli_table_shape() {
    let (fed, dict) = tiny_federation();
    let query = tiny_query(&dict);
    let server = QueryServer::new(fed, Lusail::default(), ServerConfig::default());
    let result = server.execute("a", &query).unwrap();
    let rendered = render_solutions(&result.solutions, &dict);
    let mut lines = rendered.lines();
    assert_eq!(lines.next(), Some("s\to"));
    assert_eq!(rendered.lines().count(), 6); // header + 5 rows
    assert!(rendered.ends_with('\n'));
}

#[test]
fn percent_decode_handles_escapes_plus_and_garbage() {
    assert_eq!(percent_decode("a+b"), "a b");
    assert_eq!(percent_decode("%3Fs"), "?s");
    assert_eq!(percent_decode("SELECT%20%2A"), "SELECT *");
    assert_eq!(percent_decode("100%"), "100%");
    assert_eq!(percent_decode("%zz"), "%zz");
}

// ---------- cross-tenant batching -------------------------------------------

/// Two endpoints joined by a shared variable: A holds the p-edges, B the
/// q-edges, so the canonical two-pattern query decomposes into two
/// subqueries — the unit the batch memo shares across tenants. (A
/// single-endpoint federation would take the disjoint fast path and never
/// exercise sharing.)
fn shared_federation() -> (Federation, Arc<Dictionary>) {
    let dict = Dictionary::shared();
    let mut a = TripleStore::new(Arc::clone(&dict));
    let mut b = TripleStore::new(Arc::clone(&dict));
    for i in 0..20 {
        let s = Term::iri(format!("http://a/s{i}"));
        let v = Term::iri(format!("http://shared/v{}", i % 5));
        let o = Term::iri(format!("http://b/o{i}"));
        a.insert_terms(&s, &Term::iri("http://x/p"), &v);
        b.insert_terms(&v, &Term::iri("http://x/q"), &o);
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("A", a)));
    fed.add(Arc::new(LocalEndpoint::new("B", b)));
    (fed, dict)
}

fn join_query(dict: &Dictionary) -> Query {
    parse_query(
        "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
        dict,
    )
    .unwrap()
}

#[test]
fn one_window_batches_tenants_and_shares_identical_subqueries() {
    let (fed, dict) = shared_federation();
    let query = join_query(&dict);
    let config = ServerConfig {
        batch: BatchConfig {
            enabled: true,
            // Generous window: the count trigger (three pending) is what
            // closes it, so the test never races the clock.
            window: Duration::from_secs(5),
            max_batch: 3,
        },
        ..ServerConfig::default()
    };
    let server = QueryServer::new(fed, Lusail::default(), config);
    let mut handles = Vec::new();
    for t in 0..3 {
        let server = Arc::clone(&server);
        let query = query.clone();
        handles.push(thread::spawn(move || {
            server
                .execute(&format!("tenant{t}"), &query)
                .expect("batched query succeeds")
        }));
    }
    let rows: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().unwrap().solutions.canonicalize())
        .collect();
    assert!(
        rows.windows(2).all(|w| w[0] == w[1]),
        "tenants in one window saw different answers"
    );
    let stats = server.batch_stats();
    assert_eq!(stats.windows, 1, "{stats:?}");
    assert_eq!(stats.batched_queries, 3, "{stats:?}");
    assert_eq!(stats.max_window, 3, "{stats:?}");
    assert!(
        stats.shared_hits >= 1 && stats.wire_requests_saved >= 1,
        "identical queries in one window must share subqueries: {stats:?}"
    );
    let c = server.counters();
    assert_eq!(c.admitted, 3);
    assert_eq!(c.complete_results, 3);
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn tight_deadline_tenant_is_isolated_from_a_slow_neighbour() {
    // Endpoint B interrupts every request, so the slow tenant's retries
    // burn virtual time on the shared ManualClock. The fast tenant's
    // deadline is fixed at its own admission; the neighbour's backoffs
    // consume it, and the server must answer with the *typed* deadline
    // rejection (HTTP 504) — never a late result, never an extension
    // funded by another tenant's work.
    let clock = ManualClock::new();
    let dict = Dictionary::shared();
    let mut a = TripleStore::new(Arc::clone(&dict));
    let mut b = TripleStore::new(Arc::clone(&dict));
    for i in 0..20 {
        let s = Term::iri(format!("http://a/s{i}"));
        let v = Term::iri(format!("http://shared/v{}", i % 5));
        let o = Term::iri(format!("http://b/o{i}"));
        a.insert_terms(&s, &Term::iri("http://x/p"), &v);
        b.insert_terms(&v, &Term::iri("http://x/q"), &o);
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("A", a)));
    fed.add(Arc::new(FlakyEndpoint::new(
        Arc::new(LocalEndpoint::new("B", b)),
        FaultProfile::transient(7, 1.0),
    )));
    let query = join_query(&dict);
    let engine = Lusail::default()
        .with_policy(RequestPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(100),
            ..RequestPolicy::default()
        })
        .with_clock(clock.clone());
    let config = ServerConfig {
        batch: BatchConfig {
            enabled: true,
            window: Duration::from_secs(5),
            max_batch: 2,
        },
        ..ServerConfig::default()
    };
    let server = QueryServer::with_clock(fed, engine, config, clock.clone());

    // The slow tenant opens the window and leads it.
    let slow = {
        let server = Arc::clone(&server);
        let query = query.clone();
        thread::spawn(move || server.execute("slow", &query))
    };
    // Real-time grace so the slow tenant is parked first; the fast
    // submission then trips the count trigger and the window runs.
    thread::sleep(Duration::from_millis(100));
    let err = server
        .execute_with_deadline("fast", &query, Some(Duration::from_millis(50)))
        .expect_err("a deadline burned by a neighbour must be refused");
    match err {
        ServeError::Rejected(r) => assert_eq!(r.code(), "deadline"),
        other => panic!("expected typed deadline rejection, got {other}"),
    }
    let slow_result = slow
        .join()
        .unwrap()
        .expect("the slow tenant still gets its (degraded) answer");
    assert!(
        !slow_result.complete,
        "B interrupts everything; the slow result must be degraded"
    );
    assert!(
        clock.elapsed() >= Duration::from_millis(100),
        "retry backoffs should have advanced the virtual clock"
    );
    let c = server.counters();
    assert_eq!(c.deadline_rejected, 1);
    assert_eq!(c.admitted, 1);
    assert_eq!(c.incomplete_results, 1);
}

// ---------- evented front end ------------------------------------------------

/// Reads one full HTTP response (headers + Content-Length body) off a
/// blocking client socket and returns (status, body).
fn read_response(stream: &mut std::net::TcpStream) -> (u16, String) {
    use std::io::Read as _;
    let mut buf = Vec::new();
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response headers");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("content-length header");
    while buf.len() < header_end + content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[header_end..header_end + content_length]).to_string();
    (status, body)
}

fn post_sparql(stream: &mut std::net::TcpStream, query: &str) -> (u16, String) {
    use std::io::Write as _;
    let request = format!(
        "POST /sparql HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{query}",
        query.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    read_response(stream)
}

#[test]
fn idle_keepalive_connections_cost_no_query_slots() {
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::AtomicBool;
    use std::sync::mpsc;

    let (fed, _dict) = tiny_federation();
    let config = ServerConfig {
        max_in_flight: 2,
        ..ServerConfig::default()
    };
    let server = QueryServer::new(fed, Lusail::default(), config);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let (done_tx, done_rx) = mpsc::channel();
    {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            let report = run_http_loop(&server, listener, shutdown).unwrap();
            done_tx.send(report).unwrap();
        });
    }
    let query = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }";

    // 64 keep-alive connections that never send a byte. A thread-per-
    // session server would burn a worker (and, with capacity counted per
    // socket, the whole admission budget) on each; the evented loop just
    // holds the sockets.
    let mut idle: Vec<TcpStream> = (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();

    // Both query slots stay usable beneath the idle crowd.
    let mut busy: Vec<_> = (0..2)
        .map(|_| {
            thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).unwrap();
                post_sparql(&mut conn, query)
            })
        })
        .collect();
    for h in busy.drain(..) {
        let (status, body) = h.join().unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.lines().count(), 6, "header + 5 rows: {body}");
    }

    // The idle connections are live, not leaked: /healthz answers on one…
    idle[0]
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    let (status, body) = read_response(&mut idle[0]);
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    // …and a second request on the *same* socket proves keep-alive reuse.
    let (status, _) = post_sparql(&mut idle[0], query);
    assert_eq!(status, 200);

    // SIGTERM-style shutdown: the flag flips, the loop drains and exits
    // within a bounded wait even with 63 sockets still idle.
    shutdown.store(true, Ordering::SeqCst);
    let report = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown must drain and exit promptly");
    assert_eq!(report.abandoned, 0);
    assert_eq!(server.in_flight(), 0);
    drop(idle);
}

#[test]
fn bounded_probe_cache_reports_saturation_through_the_server() {
    let (fed, dict) = tiny_federation();
    let query = tiny_query(&dict);
    let engine = Lusail::new(LusailConfig {
        probe_cache_capacity: Some(1),
        ..LusailConfig::default()
    });
    let server = QueryServer::new(fed, engine, ServerConfig::default());
    for _ in 0..3 {
        server.execute("a", &query).unwrap();
    }
    let stats = server.engine().probe_cache_stats();
    // One entry fits; everything else must have been evicted or missed.
    assert!(stats.entries <= 2, "ask+count caches hold ≤1 entry each");
}
