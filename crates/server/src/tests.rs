use super::*;
use crate::http::{percent_decode, render_solutions};
use lusail_core::LusailConfig;
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;
use std::thread;

fn tiny_federation() -> (Federation, Arc<Dictionary>) {
    let dict = Dictionary::shared();
    let mut store = TripleStore::new(Arc::clone(&dict));
    for i in 0..5 {
        store.insert_terms(
            &Term::iri(format!("http://x/s{i}")),
            &Term::iri("http://x/p"),
            &Term::iri(format!("http://x/o{i}")),
        );
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(lusail_endpoint::LocalEndpoint::new("ep0", store)));
    (fed, dict)
}

fn tiny_query(dict: &Dictionary) -> Query {
    parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }", dict).unwrap()
}

fn tiny_server(config: ServerConfig) -> (Arc<QueryServer>, Query) {
    let (fed, dict) = tiny_federation();
    let query = tiny_query(&dict);
    let server = QueryServer::new(fed, Lusail::default(), config);
    (server, query)
}

#[test]
fn admitted_query_returns_rows_and_counts() {
    let (server, query) = tiny_server(ServerConfig::default());
    let result = server.execute("alice", &query).unwrap();
    assert_eq!(result.solutions.len(), 5);
    assert!(result.complete);
    let c = server.counters();
    assert_eq!(c.admitted, 1);
    assert_eq!(c.complete_results, 1);
    assert_eq!(c.total_rejected(), 0);
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn zero_deadline_is_a_typed_deadline_rejection() {
    let (server, query) = tiny_server(ServerConfig::default());
    let err = server
        .execute_with_deadline("alice", &query, Some(Duration::ZERO))
        .unwrap_err();
    match err {
        ServeError::Rejected(r) => assert_eq!(r.code(), "deadline"),
        other => panic!("expected rejection, got {other}"),
    }
    assert_eq!(server.counters().deadline_rejected, 1);
    // The rejection never reached the engine or the wire.
    assert_eq!(server.counters().admitted, 0);
}

#[test]
fn draining_server_refuses_new_queries_with_typed_rejection() {
    let (server, query) = tiny_server(ServerConfig::default());
    let report = server.drain();
    assert_eq!(report.abandoned, 0);
    assert!(server.is_draining());
    let err = server.execute("alice", &query).unwrap_err();
    match err {
        ServeError::Rejected(Rejection::Draining) => {}
        other => panic!("expected draining, got {other}"),
    }
    assert_eq!(server.counters().draining_rejected, 1);
}

#[test]
fn capacity_zero_sheds_everything_with_reason() {
    let (server, query) = tiny_server(ServerConfig {
        max_in_flight: 0,
        ..ServerConfig::default()
    });
    let err = server.execute("alice", &query).unwrap_err();
    match err {
        ServeError::Rejected(Rejection::Shed { reason }) => {
            assert!(reason.contains("capacity"), "reason was {reason:?}");
        }
        other => panic!("expected shed, got {other}"),
    }
    assert_eq!(server.counters().shed, 1);
    assert_eq!(server.stats_snapshot().queries_shed, 1);
}

#[test]
fn tenant_quota_is_independent_of_global_capacity() {
    // Global capacity is ample, but each tenant may only run one query
    // at a time. Holding tenant A's slot from another thread, A is shed
    // while B still gets in.
    let config = ServerConfig {
        max_in_flight: 8,
        default_tenant: TenantPolicy {
            max_in_flight: 1,
            deadline_budget: Duration::from_secs(30),
        },
        ..ServerConfig::default()
    };
    let (server, query) = tiny_server(config);
    // Occupy tenant A's slot manually via the admission path.
    let policy = server.config().policy_for("a");
    let session = server
        .admit("a", &policy, Duration::from_secs(5))
        .expect("first admission fits");
    let err = server.execute("a", &query).unwrap_err();
    match err {
        ServeError::Rejected(Rejection::Shed { reason }) => {
            assert!(reason.contains("quota"), "reason was {reason:?}");
        }
        other => panic!("expected tenant shed, got {other}"),
    }
    server.execute("b", &query).expect("tenant b unaffected");
    // Release A's slot the way SessionGuard would.
    drop(SessionGuard {
        server: &server,
        tenant: "a".into(),
        session,
    });
    server.execute("a", &query).expect("slot released");
}

#[test]
fn requested_deadline_is_clamped_to_tenant_budget() {
    let config = ServerConfig {
        default_tenant: TenantPolicy {
            max_in_flight: 4,
            deadline_budget: Duration::from_millis(250),
        },
        ..ServerConfig::default()
    };
    let (server, query) = tiny_server(config);
    // An hour-long request is clamped to 250 ms, which is still plenty
    // for a five-triple federation — the query succeeds.
    let result = server
        .execute_with_deadline("a", &query, Some(Duration::from_secs(3600)))
        .unwrap();
    assert!(result.complete);
}

#[test]
fn drain_waits_for_in_flight_queries() {
    let (server, query) = tiny_server(ServerConfig::default());
    let server2 = Arc::clone(&server);
    let query2 = query.clone();
    let worker = thread::spawn(move || {
        // Hold an admission slot across the drain call.
        for _ in 0..50 {
            let _ = server2.execute("a", &query2);
        }
    });
    let report = server.drain();
    assert_eq!(report.abandoned, 0);
    assert_eq!(server.in_flight(), 0);
    worker.join().unwrap();
}

#[test]
fn concurrent_tenants_never_overshoot_global_capacity() {
    let config = ServerConfig {
        max_in_flight: 2,
        default_tenant: TenantPolicy {
            max_in_flight: 2,
            deadline_budget: Duration::from_secs(30),
        },
        ..ServerConfig::default()
    };
    let (server, query) = tiny_server(config);
    let mut handles = Vec::new();
    for t in 0..8 {
        let server = Arc::clone(&server);
        let query = query.clone();
        handles.push(thread::spawn(move || {
            let tenant = format!("t{t}");
            let mut ok = 0u64;
            let mut shed = 0u64;
            for _ in 0..20 {
                match server.execute(&tenant, &query) {
                    Ok(r) => {
                        assert_eq!(r.solutions.len(), 5);
                        ok += 1;
                    }
                    Err(ServeError::Rejected(r)) => {
                        assert_eq!(r.code(), "shed");
                        shed += 1;
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
            (ok, shed)
        }));
    }
    let mut total_ok = 0;
    let mut total_shed = 0;
    for h in handles {
        let (ok, shed) = h.join().unwrap();
        total_ok += ok;
        total_shed += shed;
    }
    let c = server.counters();
    assert_eq!(c.admitted, total_ok);
    assert_eq!(c.shed, total_shed);
    assert_eq!(total_ok + total_shed, 160);
    assert_eq!(server.in_flight(), 0);
}

#[test]
fn render_solutions_matches_cli_table_shape() {
    let (fed, dict) = tiny_federation();
    let query = tiny_query(&dict);
    let server = QueryServer::new(fed, Lusail::default(), ServerConfig::default());
    let result = server.execute("a", &query).unwrap();
    let rendered = render_solutions(&result.solutions, &dict);
    let mut lines = rendered.lines();
    assert_eq!(lines.next(), Some("s\to"));
    assert_eq!(rendered.lines().count(), 6); // header + 5 rows
    assert!(rendered.ends_with('\n'));
}

#[test]
fn percent_decode_handles_escapes_plus_and_garbage() {
    assert_eq!(percent_decode("a+b"), "a b");
    assert_eq!(percent_decode("%3Fs"), "?s");
    assert_eq!(percent_decode("SELECT%20%2A"), "SELECT *");
    assert_eq!(percent_decode("100%"), "100%");
    assert_eq!(percent_decode("%zz"), "%zz");
}

#[test]
fn bounded_probe_cache_reports_saturation_through_the_server() {
    let (fed, dict) = tiny_federation();
    let query = tiny_query(&dict);
    let engine = Lusail::new(LusailConfig {
        probe_cache_capacity: Some(1),
        ..LusailConfig::default()
    });
    let server = QueryServer::new(fed, engine, ServerConfig::default());
    for _ in 0..3 {
        server.execute("a", &query).unwrap();
    }
    let stats = server.engine().probe_cache_stats();
    // One entry fits; everything else must have been evicted or missed.
    assert!(stats.entries <= 2, "ask+count caches hold ≤1 entry each");
}
