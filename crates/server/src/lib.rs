//! `lusail-server` — a long-lived, multi-tenant federated query service.
//!
//! The engines in `lusail-core` are one-shot: a caller builds a
//! [`Federation`], runs a query, and throws everything away. A production
//! deployment instead keeps **one shared `Federation` and one shared
//! [`Lusail`] engine** alive across many concurrent tenants, which raises
//! three problems this crate solves:
//!
//! * **Shared cross-query caches.** The engine's probe caches and the
//!   federation's offline statistics are now read and written by many
//!   queries at once. Both were already internally synchronized; the new
//!   hazard is *staleness across tenants*: tenant A's query discovers an
//!   endpoint is dead mid-flight, but tenant B plans its next query from
//!   probe answers that endpoint gave before it died. The server installs
//!   a [`HealthHook`] on every query so a circuit-breaker transition
//!   invalidates the shared probe caches and statistics **at transition
//!   time**, before any concurrent tenant's next planning read — not just
//!   when the failing query finishes.
//! * **Admission control and load shedding.** Queries are never queued:
//!   a query is either admitted immediately or rejected with a typed
//!   [`Rejection`] (global capacity, per-tenant quota, an impossible
//!   deadline, an unhealthy federation, or a draining server). Rejections
//!   are counted into the `queries_shed` overlay of
//!   [`StatsSnapshot`](lusail_endpoint::StatsSnapshot) so shed decisions
//!   are observable wherever request counters already flow.
//! * **Graceful drain.** [`QueryServer::drain`] refuses new admissions
//!   and waits for in-flight queries to finish, bounded by the longest
//!   outstanding per-query deadline — deadlines are mandatory at
//!   admission precisely so drain terminates.
//!
//! The HTTP front end (a dependency-free HTTP/1.1 loop) lives in
//! [`http`]; `lusail-cli serve` wires it to a federation loaded from
//! endpoint files.

pub mod batch;
pub mod http;

pub use batch::{BatchConfig, BatchStats};

use lusail_core::{Lusail, QueryResult};
use lusail_endpoint::{
    Clock, EndpointId, Federation, FederationError, HealthHook, HealthState, StatsSnapshot,
    SystemClock,
};
use lusail_sparql::Query;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Queries this tenant may have in flight at once.
    pub max_in_flight: usize,
    /// Upper bound (and default) for the tenant's per-query deadline: a
    /// requested deadline is clamped to this budget, and a request with
    /// no deadline gets exactly this budget. Admission always assigns
    /// *some* finite deadline so graceful drain has a bound to wait for.
    pub deadline_budget: Duration,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            max_in_flight: 4,
            deadline_budget: Duration::from_secs(30),
        }
    }
}

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Global cap on concurrently executing queries across all tenants.
    pub max_in_flight: usize,
    /// Worker-thread budget each admitted query executes with (the PR 6
    /// `ExecOptions` threading); total worker pressure is bounded by
    /// `max_in_flight * threads_per_query`.
    pub threads_per_query: usize,
    /// Limits for tenants without an explicit entry in `tenants`.
    pub default_tenant: TenantPolicy,
    /// Per-tenant overrides, keyed by tenant name.
    pub tenants: HashMap<String, TenantPolicy>,
    /// Shed new queries while every endpoint of the federation is
    /// believed dead (circuit open) — the load-shedding signal from the
    /// existing health model. Recovery is observed through the next
    /// complete query.
    pub shed_when_unhealthy: bool,
    /// Cross-tenant batching: admitted queries accumulate in a bounded
    /// window and shared subqueries are evaluated once (see [`batch`]).
    pub batch: BatchConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_in_flight: 8,
            threads_per_query: 1,
            default_tenant: TenantPolicy::default(),
            tenants: HashMap::new(),
            shed_when_unhealthy: true,
            batch: BatchConfig::default(),
        }
    }
}

impl ServerConfig {
    fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.tenants
            .get(tenant)
            .copied()
            .unwrap_or(self.default_tenant)
    }
}

/// Why a query was refused admission. Every refusal is typed — the
/// server never queues and never silently drops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// Load shedding: the server (or this tenant) is at capacity, or the
    /// federation is unhealthy. `reason` is human-readable.
    Shed {
        /// What tripped the shed decision.
        reason: String,
    },
    /// The effective deadline (requested, clamped to the tenant budget)
    /// is zero or already in the past: the query could never finish.
    DeadlineExceeded,
    /// The server is draining: in-flight queries are finishing, new
    /// admissions are refused.
    Draining,
}

impl Rejection {
    /// A stable machine-readable code: `shed`, `deadline`, or `draining`.
    pub fn code(&self) -> &'static str {
        match self {
            Rejection::Shed { .. } => "shed",
            Rejection::DeadlineExceeded => "deadline",
            Rejection::Draining => "draining",
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Shed { reason } => write!(f, "shed: {reason}"),
            Rejection::DeadlineExceeded => write!(f, "deadline: effective deadline is zero"),
            Rejection::Draining => write!(f, "draining: server is shutting down"),
        }
    }
}

/// Why [`QueryServer::execute`] did not return a result.
#[derive(Debug)]
pub enum ServeError {
    /// Refused at admission (typed; never reached the engine).
    Rejected(Rejection),
    /// The engine itself refused the query (federation-level misuse).
    Engine(FederationError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected ({r})"),
            ServeError::Engine(e) => write!(f, "engine error: {e:?}"),
        }
    }
}

/// What [`QueryServer::drain`] observed.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// How long drain waited for in-flight queries.
    pub waited: Duration,
    /// Queries still in flight when the wait bound expired (`0` on a
    /// clean drain).
    pub abandoned: usize,
}

/// Monotonic serving counters (all incremented exactly once per query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Queries admitted and executed.
    pub admitted: u64,
    /// Admitted queries whose result was complete.
    pub complete_results: u64,
    /// Admitted queries that degraded to an incomplete result.
    pub incomplete_results: u64,
    /// Rejections with code `shed`.
    pub shed: u64,
    /// Rejections with code `deadline`.
    pub deadline_rejected: u64,
    /// Rejections with code `draining`.
    pub draining_rejected: u64,
    /// Shared-cache / statistics invalidations triggered by circuit
    /// transitions observed mid-query.
    pub health_invalidations: u64,
}

impl ServerCounters {
    /// Total typed rejections of any kind.
    pub fn total_rejected(&self) -> u64 {
        self.shed + self.deadline_rejected + self.draining_rejected
    }
}

#[derive(Default)]
struct Atomics {
    admitted: AtomicU64,
    complete_results: AtomicU64,
    incomplete_results: AtomicU64,
    shed: AtomicU64,
    deadline_rejected: AtomicU64,
    draining_rejected: AtomicU64,
}

/// Admission bookkeeping, guarded by one mutex: the decision to admit
/// and the in-flight accounting are atomic, so the capacity bound is
/// never overshot by racing tenants.
#[derive(Default)]
struct Admission {
    draining: bool,
    in_flight: usize,
    per_tenant: HashMap<String, usize>,
    next_session: u64,
    /// Absolute deadline of every in-flight session — the drain bound.
    deadlines: HashMap<u64, Instant>,
}

/// A long-lived, multi-tenant query service over one shared
/// [`Federation`] and one shared [`Lusail`] engine.
pub struct QueryServer {
    engine: Arc<Lusail>,
    fed: Federation,
    config: ServerConfig,
    hook: HealthHook,
    state: Mutex<Admission>,
    drained: Condvar,
    counters: Atomics,
    /// Endpoints currently believed dead (circuit open), fed by the
    /// health hook; cleared by the next complete query.
    unhealthy: Arc<Mutex<HashSet<EndpointId>>>,
    /// Shared-cache invalidations performed by the hook (the hook holds
    /// a clone of this `Arc`, not a reference back to the server).
    invalidations: Arc<AtomicU64>,
    /// The clock batching windows and deadlines are measured on
    /// (injectable so scheduler tests are deterministic).
    pub(crate) clock: Arc<dyn Clock>,
    /// Cross-tenant batching scheduler state (see [`batch`]).
    pub(crate) batcher: batch::Batcher,
}

impl QueryServer {
    /// Builds a server around a federation, constructing the shared
    /// engine with the given configuration.
    pub fn new(fed: Federation, engine: Lusail, config: ServerConfig) -> Arc<Self> {
        Self::with_clock(fed, engine, config, Arc::new(SystemClock::default()))
    }

    /// [`QueryServer::new`] with an injected clock: batching windows and
    /// per-query deadlines are measured on it, so a
    /// [`ManualClock`](lusail_endpoint::ManualClock) shared with the
    /// engine makes scheduler timing fully deterministic in tests.
    pub fn with_clock(
        fed: Federation,
        engine: Lusail,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        let engine = Arc::new(engine);
        let unhealthy: Arc<Mutex<HashSet<EndpointId>>> = Arc::default();
        let invalidations = Arc::new(AtomicU64::new(0));
        let hook = make_invalidation_hook(
            Arc::clone(&engine),
            fed.clone(),
            Arc::clone(&unhealthy),
            Arc::clone(&invalidations),
        );
        Arc::new(QueryServer {
            engine,
            fed,
            config,
            hook,
            state: Mutex::new(Admission::default()),
            drained: Condvar::new(),
            counters: Atomics::default(),
            unhealthy,
            invalidations,
            clock,
            batcher: batch::Batcher::default(),
        })
    }

    /// The shared engine (its probe caches are the cross-query layer).
    pub fn engine(&self) -> &Arc<Lusail> {
        &self.engine
    }

    /// The shared federation.
    pub fn federation(&self) -> &Federation {
        &self.fed
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// True once [`QueryServer::drain`] has started.
    pub fn is_draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().in_flight
    }

    /// Executes `query` for `tenant` with the tenant's full deadline
    /// budget.
    pub fn execute(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServeError> {
        self.execute_with_deadline(tenant, query, None)
    }

    /// Executes `query` for `tenant`, clamping `requested` to the
    /// tenant's deadline budget (`None` uses the full budget). The query
    /// is either admitted and run to completion (possibly degraded, per
    /// the engine's graceful-degradation semantics) or refused with a
    /// typed [`Rejection`] — never queued.
    pub fn execute_with_deadline(
        &self,
        tenant: &str,
        query: &Query,
        requested: Option<Duration>,
    ) -> Result<QueryResult, ServeError> {
        let policy = self.config.policy_for(tenant);
        let deadline = match requested {
            Some(d) => d.min(policy.deadline_budget),
            None => policy.deadline_budget,
        };
        let session = match self.admit(tenant, &policy, deadline) {
            Ok(session) => session,
            Err(rejection) => {
                self.count_rejection(&rejection);
                return Err(ServeError::Rejected(rejection));
            }
        };
        let guard = SessionGuard {
            server: self,
            tenant: tenant.to_string(),
            session,
        };
        if self.config.batch.enabled {
            // The session stays held across the window wait — capacity
            // applies to queries the server has accepted, whether they
            // are executing or waiting for their batch to form.
            let delivery = self.batch_submit(query, deadline);
            drop(guard);
            return match delivery {
                batch::Delivery::Finished(result) => {
                    self.count_executed(result.complete);
                    Ok(*result)
                }
                batch::Delivery::DeadlineExpired => {
                    // The window wait (or a neighbour's work) consumed the
                    // whole budget: the refusal is typed exactly like an
                    // impossible deadline at admission.
                    let rejection = Rejection::DeadlineExceeded;
                    self.count_rejection(&rejection);
                    Err(ServeError::Rejected(rejection))
                }
                batch::Delivery::Engine(e) => {
                    self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Engine(e))
                }
            };
        }
        let opts = lusail_endpoint::ExecOptions::default()
            .with_threads(self.config.threads_per_query)
            .with_deadline(deadline)
            .with_health_hook(self.hook.clone());
        let result = self.engine.execute_with(&self.fed, query, &opts);
        drop(guard);
        match result {
            Ok(result) => {
                self.count_executed(result.complete);
                Ok(result)
            }
            Err(e) => {
                self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Engine(e))
            }
        }
    }

    /// Counts an admitted query that reached the engine and produced a
    /// result (shared by the direct and batched paths).
    fn count_executed(&self, complete: bool) {
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        if complete {
            self.counters
                .complete_results
                .fetch_add(1, Ordering::Relaxed);
            // A complete query is proof of life: whatever the health
            // model believed, the federation answered.
            self.unhealthy.lock().unwrap().clear();
        } else {
            self.counters
                .incomplete_results
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The admission decision: draining, impossible deadline, federation
    /// health, global capacity, then tenant quota — all under one lock
    /// so concurrent admissions can never overshoot a bound.
    fn admit(
        &self,
        tenant: &str,
        policy: &TenantPolicy,
        deadline: Duration,
    ) -> Result<u64, Rejection> {
        if deadline.is_zero() {
            return Err(Rejection::DeadlineExceeded);
        }
        if self.config.shed_when_unhealthy {
            let down = self.unhealthy.lock().unwrap();
            let ids = self.fed.all_ids();
            if !ids.is_empty() && ids.iter().all(|id| down.contains(id)) {
                return Err(Rejection::Shed {
                    reason: "no healthy endpoints (all circuits open)".into(),
                });
            }
        }
        let mut state = self.state.lock().unwrap();
        if state.draining {
            return Err(Rejection::Draining);
        }
        if state.in_flight >= self.config.max_in_flight {
            return Err(Rejection::Shed {
                reason: format!("server at capacity ({} queries in flight)", state.in_flight),
            });
        }
        let tenant_load = state.per_tenant.get(tenant).copied().unwrap_or(0);
        if tenant_load >= policy.max_in_flight {
            return Err(Rejection::Shed {
                reason: format!("tenant {tenant:?} at quota ({tenant_load} queries in flight)"),
            });
        }
        state.in_flight += 1;
        *state.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        let session = state.next_session;
        state.next_session += 1;
        state.deadlines.insert(session, Instant::now() + deadline);
        Ok(session)
    }

    fn count_rejection(&self, rejection: &Rejection) {
        let counter = match rejection {
            Rejection::Shed { .. } => &self.counters.shed,
            Rejection::DeadlineExceeded => &self.counters.deadline_rejected,
            Rejection::Draining => &self.counters.draining_rejected,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Graceful drain: refuses new admissions and waits for every
    /// in-flight query, bounded by the longest outstanding deadline plus
    /// a small processing margin (admission guarantees every session has
    /// a finite deadline, so the bound always exists).
    pub fn drain(&self) -> DrainReport {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap();
        state.draining = true;
        let bound = state
            .deadlines
            .values()
            .max()
            .map(|d| d.saturating_duration_since(started))
            .unwrap_or(Duration::ZERO)
            + Duration::from_millis(500);
        while state.in_flight > 0 {
            let elapsed = started.elapsed();
            if elapsed >= bound {
                break;
            }
            let (next, _) = self.drained.wait_timeout(state, bound - elapsed).unwrap();
            state = next;
        }
        DrainReport {
            waited: started.elapsed(),
            abandoned: state.in_flight,
        }
    }

    /// A snapshot of the serving counters.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            complete_results: self.counters.complete_results.load(Ordering::Relaxed),
            incomplete_results: self.counters.incomplete_results.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            deadline_rejected: self.counters.deadline_rejected.load(Ordering::Relaxed),
            draining_rejected: self.counters.draining_rejected.load(Ordering::Relaxed),
            health_invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// The federation's wire counters with the server's shed decisions
    /// overlaid into `queries_shed` (the same overlay pattern the stores
    /// use for `rows_scanned`).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.fed.stats_snapshot();
        snap.queries_shed = self.counters().total_rejected();
        snap
    }
}

/// Decrements in-flight accounting (and wakes drain) even if the engine
/// panics.
struct SessionGuard<'a> {
    server: &'a QueryServer,
    tenant: String,
    session: u64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.server.state.lock().unwrap();
        state.in_flight -= 1;
        if let Some(n) = state.per_tenant.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
        }
        state.deadlines.remove(&self.session);
        self.server.drained.notify_all();
    }
}

/// Builds the standard shared-cache invalidation hook: on **every**
/// circuit transition the endpoint's memoized probe answers and offline
/// statistics are dropped (conservative — an endpoint coming back may
/// have diverged just as much as one going away), and the unhealthy set
/// feeding health-driven shedding is updated.
pub fn make_invalidation_hook(
    engine: Arc<Lusail>,
    fed: Federation,
    unhealthy: Arc<Mutex<HashSet<EndpointId>>>,
    invalidations: Arc<AtomicU64>,
) -> HealthHook {
    Arc::new(move |ep, _from, to| {
        engine.invalidate_endpoint_probes(ep);
        fed.invalidate_stats(ep);
        invalidations.fetch_add(1, Ordering::Relaxed);
        let mut down = unhealthy.lock().unwrap();
        match to {
            HealthState::Open => {
                down.insert(ep);
            }
            HealthState::Closed => {
                down.remove(&ep);
            }
            HealthState::HalfOpen => {}
        }
    })
}

#[cfg(test)]
mod tests;
