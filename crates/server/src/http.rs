//! Dependency-free SPARQL-over-HTTP front end.
//!
//! An **evented** HTTP/1.1 loop over `std::net::TcpListener`: one thread
//! — the readiness loop — owns every socket and multiplexes them through
//! raw `poll(2)` (no external crates, the same libc-FFI pattern as
//! [`install_shutdown_flag`]). Connections are keep-alive by default, and
//! an *idle* connection costs a poll slot, not a worker thread, so
//! capacity applies to in-flight queries rather than open sockets: a
//! thread is spawned per **active** `/sparql` request (queries block in
//! admission, batching windows, and the engine) and dies when its
//! response is written. `/healthz`, `/stats`, parse errors, and unknown
//! routes are answered inline on the loop. Workers hand their connection
//! back through a completion channel plus a self-pipe wakeup.
//!
//! Routes:
//!
//! * `GET /sparql?query=<pct-encoded>` or `POST /sparql` (query text in
//!   the body) — execute a query. Headers: `X-Tenant` names the tenant
//!   (default `default`), `X-Deadline-Ms` requests a per-query deadline
//!   in milliseconds (clamped to the tenant's budget).
//! * `GET /healthz` — `200 ok` while serving, `503 draining` during
//!   drain.
//! * `GET /stats` — the serving counters, wire totals, and `batch.*`
//!   scheduler counters as text.
//!
//! A successful query returns `200` with the same tab-separated table
//! the CLI prints ([`render_solutions`] is shared with `lusail-cli
//! query`, so the bodies diff byte-for-byte). A refused query returns
//! `503` (shed / draining) or `504` (impossible deadline) with a
//! machine-greppable body:
//!
//! ```text
//! error: query rejected
//! code: shed
//! reason: server at capacity (8 queries in flight)
//! ```

use crate::{QueryServer, Rejection, ServeError};
use lusail_rdf::Dictionary;
use lusail_sparql::{parse_query, SolutionSet};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Renders a solution set exactly like the CLI's result table: header
/// row, up to 100 tab-separated rows (`UNDEF` for unbound), and a
/// truncation marker — one line each, `\n`-terminated.
pub fn render_solutions(sols: &SolutionSet, dict: &Dictionary) -> String {
    let mut out = String::new();
    if sols.vars.is_empty() {
        out.push_str("(no variables)\n");
        return out;
    }
    out.push_str(&sols.vars.join("\t"));
    out.push('\n');
    for row in sols.rows.iter().take(100) {
        let cells: Vec<String> = row
            .iter()
            .map(|c| match c {
                Some(id) => dict.decode(*id).to_string(),
                None => "UNDEF".to_string(),
            })
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    if sols.rows.len() > 100 {
        out.push_str(&format!("… ({} more rows)\n", sols.rows.len() - 100));
    }
    out
}

/// Decodes `%XX` escapes and `+` (space) in a URL query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One parsed HTTP request.
struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// The raw query string (no leading `?`), possibly empty.
    query_string: String,
    /// Header names lowercased.
    headers: Vec<(String, String)>,
    body: String,
    /// False only for an explicit `HTTP/1.0` request line.
    http11: bool,
}

impl Request {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of one `key=` parameter in the query string, decoded.
    fn query_param(&self, key: &str) -> Option<String> {
        self.query_string.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then(|| percent_decode(v))
        })
    }

    /// HTTP/1.1 defaults to keep-alive; `Connection: close` (or an
    /// HTTP/1.0 request line) opts out.
    fn keep_alive(&self) -> bool {
        self.http11
            && self
                .header("connection")
                .is_none_or(|v| !v.eq_ignore_ascii_case("close"))
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Tries to parse one complete request from the front of `buf`.
/// `Ok(None)` means more bytes are needed; `Err` is a protocol violation
/// the connection cannot recover from.
fn try_parse(buf: &[u8]) -> Result<Option<(Request, usize)>, String> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > 1 << 20 {
            return Err("request headers too large".into());
        }
        return Ok(None);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let http11 = parts.next().unwrap_or("HTTP/1.1") != "HTTP/1.0";
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if content_length > 8 << 20 {
        return Err("request body too large".into());
    }
    let total = header_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[header_end + 4..total]).into_owned();
    Ok(Some((
        Request {
            method,
            path,
            query_string,
            headers,
            body,
            http11,
        },
        total,
    )))
}

/// Serializes a full response. `keep_alive` picks the `Connection`
/// header; bodies are always `Content-Length`-delimited (no chunking).
fn render_response(status: u16, reason: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes the whole buffer on a socket that may be in nonblocking mode
/// (`O_NONBLOCK` is a property of the file description, shared with the
/// readiness loop's duped fd), spinning briefly on `WouldBlock`. The
/// peer may already be gone; a failed write only loses the response to
/// a client that stopped listening.
fn write_all_spinning(stream: &mut TcpStream, mut data: &[u8]) {
    let give_up = Instant::now() + Duration::from_secs(30);
    while !data.is_empty() {
        match stream.write(data) {
            Ok(0) => return,
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= give_up {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let _ = stream.flush();
}

fn rejection_response(r: &Rejection) -> (u16, &'static str, String) {
    let (status, reason_phrase) = match r {
        Rejection::Shed { .. } | Rejection::Draining => (503, "Service Unavailable"),
        Rejection::DeadlineExceeded => (504, "Gateway Timeout"),
    };
    let detail = match r {
        Rejection::Shed { reason } => reason.clone(),
        Rejection::DeadlineExceeded => "effective deadline is zero".to_string(),
        Rejection::Draining => "server is shutting down".to_string(),
    };
    let body = format!(
        "error: query rejected\ncode: {}\nreason: {detail}\n",
        r.code()
    );
    (status, reason_phrase, body)
}

/// The `/stats` body: serving counters, wire totals, probe-cache
/// counters, and the batching scheduler's `batch.*` lines.
fn stats_body(server: &QueryServer) -> String {
    let c = server.counters();
    let wire = server.stats_snapshot();
    let cache = server.engine().probe_cache_stats();
    let batch = server.batch_stats();
    format!(
        "admitted: {}\ncomplete_results: {}\nincomplete_results: {}\n\
         shed: {}\ndeadline_rejected: {}\ndraining_rejected: {}\n\
         health_invalidations: {}\nqueries_shed: {}\n\
         wire_requests: {}\ncache_hits: {}\ncache_misses: {}\n\
         cache_evictions: {}\nbatch.windows: {}\nbatch.batched_queries: {}\n\
         batch.max_window: {}\nbatch.shared_hits: {}\n\
         batch.wire_requests_saved: {}\n",
        c.admitted,
        c.complete_results,
        c.incomplete_results,
        c.shed,
        c.deadline_rejected,
        c.draining_rejected,
        c.health_invalidations,
        wire.queries_shed,
        wire.total_requests(),
        cache.hits,
        cache.misses,
        cache.evictions,
        batch.windows,
        batch.batched_queries,
        batch.max_window,
        batch.shared_hits,
        batch.wire_requests_saved,
    )
}

/// Executes a `/sparql` request to a response triple. Runs on a worker
/// thread — admission, batching windows, and the engine may all block.
fn handle_sparql(server: &QueryServer, request: &Request) -> (u16, &'static str, String) {
    let text = if request.method == "GET" {
        request.query_param("query")
    } else {
        (!request.body.is_empty()).then(|| request.body.clone())
    };
    let Some(text) = text else {
        return (
            400,
            "Bad Request",
            "error: bad request\ncode: parse\nreason: missing query\n".to_string(),
        );
    };
    let tenant = request.header("x-tenant").unwrap_or("default").to_string();
    let deadline = request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);
    let dict = Arc::clone(server.federation().dict());
    let query = match parse_query(&text, &dict) {
        Ok(q) => q,
        Err(e) => {
            return (
                400,
                "Bad Request",
                format!("error: bad request\ncode: parse\nreason: {e:?}\n"),
            )
        }
    };
    match server.execute_with_deadline(&tenant, &query, deadline) {
        Ok(result) => {
            let body = render_solutions(&result.solutions, &dict);
            if result.complete {
                (200, "OK", body)
            } else {
                // Partial results are still results, but the degradation
                // must be visible to the client.
                (206, "Partial Content", body)
            }
        }
        Err(ServeError::Rejected(r)) => rejection_response(&r),
        Err(ServeError::Engine(e)) => (
            500,
            "Internal Server Error",
            format!("error: engine\ncode: engine\nreason: {e:?}\n"),
        ),
    }
}

// ---- the readiness loop ---------------------------------------------

/// `poll(2)` via the C runtime — the readiness primitive of the evented
/// loop, with no external crates (same pattern as the raw `signal(2)`
/// in [`install_shutdown_flag`]).
#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Polls with a timeout in milliseconds. A signal interruption reports
/// as an empty readiness set so the caller re-checks its shutdown flag.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<()> {
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if n < 0 {
        let e = std::io::Error::last_os_error();
        if e.kind() != ErrorKind::Interrupted {
            return Err(e);
        }
        for fd in fds.iter_mut() {
            fd.revents = 0;
        }
    }
    Ok(())
}

/// One client connection owned by the readiness loop.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// True while a worker thread owns this connection's current
    /// request; the loop stops polling it until the worker hands it
    /// back.
    busy: bool,
}

/// Drains readable bytes into the connection buffer. Returns false when
/// the peer closed or the socket failed (the connection is done).
fn read_into(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Runs the evented readiness loop until `shutdown` becomes true, then
/// drains the server (in-flight queries finish or hit their deadlines)
/// and joins the remaining request workers. Returns the drain report.
///
/// Keep-alive connections are parked in the poll set between requests —
/// 64 idle clients hold 64 fds and zero threads, and admission capacity
/// is only consumed by queries actually submitted. Worker threads exist
/// per in-flight `/sparql` request and hand the connection back through
/// the completion channel + self-pipe when the response is written.
pub fn run_http_loop(
    server: &Arc<QueryServer>,
    listener: TcpListener,
    shutdown: &AtomicBool,
) -> std::io::Result<crate::DrainReport> {
    listener.set_nonblocking(true)?;
    // Self-pipe: workers nudge the poll loop when a connection is handed
    // back, so an idle server still reacts to completions immediately.
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let (done_tx, done_rx) = mpsc::channel::<(u64, bool)>();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut fds = vec![
            PollFd {
                fd: listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            },
            PollFd {
                fd: wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            },
        ];
        let mut polled: Vec<u64> = Vec::new();
        for (token, conn) in conns.iter() {
            if !conn.busy {
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events: POLLIN,
                    revents: 0,
                });
                polled.push(*token);
            }
        }
        // The 50ms timeout doubles as the shutdown-flag check cadence
        // and a fallback sweep for lost wakeup bytes.
        poll_fds(&mut fds, 50)?;
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if fds[0].revents != 0 {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stream.set_nonblocking(true)?;
                        conns.insert(
                            next_token,
                            Conn {
                                stream,
                                buf: Vec::new(),
                                busy: false,
                            },
                        );
                        next_token += 1;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        if fds[1].revents != 0 {
            let mut sink = [0u8; 64];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        // Connections to (re)examine: workers done with their request,
        // plus idle connections that became readable.
        let mut ready: Vec<u64> = Vec::new();
        while let Ok((token, keep)) = done_rx.try_recv() {
            if !keep {
                conns.remove(&token);
            } else if let Some(conn) = conns.get_mut(&token) {
                conn.busy = false;
                // A pipelined request may already sit in the buffer.
                ready.push(token);
            }
        }
        for (i, token) in polled.iter().enumerate() {
            if fds[2 + i].revents == 0 {
                continue;
            }
            if let Some(conn) = conns.get_mut(token) {
                if read_into(conn) {
                    ready.push(*token);
                } else {
                    conns.remove(token);
                }
            }
        }
        for token in ready {
            dispatch_buffered(server, &mut conns, token, &done_tx, &wake_tx, &mut workers);
        }
        workers.retain(|h| !h.is_finished());
    }
    let report = server.drain();
    for handle in workers {
        let _ = handle.join();
    }
    Ok(report)
}

/// Parses and routes every complete request buffered on one connection.
/// `/healthz`, `/stats`, parse errors, and unknown routes are answered
/// inline; a `/sparql` request marks the connection busy and moves to a
/// worker thread (no pipelining past an in-flight query).
fn dispatch_buffered(
    server: &Arc<QueryServer>,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    done_tx: &mpsc::Sender<(u64, bool)>,
    wake_tx: &UnixStream,
    workers: &mut Vec<std::thread::JoinHandle<()>>,
) {
    loop {
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };
        if conn.busy {
            return;
        }
        let (request, consumed) = match try_parse(&conn.buf) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => return,
            Err(reason) => {
                let body = format!("error: bad request\ncode: parse\nreason: {reason}\n");
                let response = render_response(400, "Bad Request", &body, false);
                write_all_spinning(&mut conn.stream, &response);
                conns.remove(&token);
                return;
            }
        };
        conn.buf.drain(..consumed);
        let keep = request.keep_alive();
        let inline: Option<(u16, &'static str, String)> =
            match (request.method.as_str(), request.path.as_str()) {
                ("GET", "/healthz") => Some(if server.is_draining() {
                    (503, "Service Unavailable", "draining\n".to_string())
                } else {
                    (200, "OK", "ok\n".to_string())
                }),
                ("GET", "/stats") => Some((200, "OK", stats_body(server))),
                (m, "/sparql") if m == "GET" || m == "POST" => None,
                _ => Some((
                    404,
                    "Not Found",
                    "error: not found\ncode: route\nreason: unknown path\n".to_string(),
                )),
            };
        match inline {
            Some((status, phrase, body)) => {
                let response = render_response(status, phrase, &body, keep);
                write_all_spinning(&mut conn.stream, &response);
                if !keep {
                    conns.remove(&token);
                    return;
                }
                // Loop: another pipelined request may be buffered.
            }
            None => {
                let Ok(stream) = conn.stream.try_clone() else {
                    conns.remove(&token);
                    return;
                };
                conn.busy = true;
                let server = Arc::clone(server);
                let done = done_tx.clone();
                let wake = wake_tx.try_clone().ok();
                workers.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let (status, phrase, body) = handle_sparql(&server, &request);
                    let response = render_response(status, phrase, &body, keep);
                    write_all_spinning(&mut stream, &response);
                    // Hand the connection back; the wake byte is
                    // best-effort (the poll timeout sweeps up losses).
                    let _ = done.send((token, keep));
                    if let Some(mut w) = wake {
                        let _ = w.write(&[1u8]);
                    }
                }));
                return;
            }
        }
    }
}

/// Installs a process-wide SIGTERM/SIGINT handler that flips the
/// returned flag (idempotent; the same flag is returned every time).
/// Raw `signal(2)` via the C runtime — no external crates.
pub fn install_shutdown_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
    &FLAG
}
