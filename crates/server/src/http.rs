//! Dependency-free SPARQL-over-HTTP front end.
//!
//! A deliberately minimal HTTP/1.1 loop over `std::net::TcpListener`:
//! one thread per connection, `Connection: close` on every response, no
//! keep-alive, no chunked encoding. Routes:
//!
//! * `GET /sparql?query=<pct-encoded>` or `POST /sparql` (query text in
//!   the body) — execute a query. Headers: `X-Tenant` names the tenant
//!   (default `default`), `X-Deadline-Ms` requests a per-query deadline
//!   in milliseconds (clamped to the tenant's budget).
//! * `GET /healthz` — `200 ok` while serving, `503 draining` during
//!   drain.
//! * `GET /stats` — the serving counters and wire totals as text.
//!
//! A successful query returns `200` with the same tab-separated table
//! the CLI prints ([`render_solutions`] is shared with `lusail-cli
//! query`, so the bodies diff byte-for-byte). A refused query returns
//! `503` (shed / draining) or `504` (impossible deadline) with a
//! machine-greppable body:
//!
//! ```text
//! error: query rejected
//! code: shed
//! reason: server at capacity (8 queries in flight)
//! ```

use crate::{QueryServer, Rejection, ServeError};
use lusail_rdf::Dictionary;
use lusail_sparql::{parse_query, SolutionSet};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Renders a solution set exactly like the CLI's result table: header
/// row, up to 100 tab-separated rows (`UNDEF` for unbound), and a
/// truncation marker — one line each, `\n`-terminated.
pub fn render_solutions(sols: &SolutionSet, dict: &Dictionary) -> String {
    let mut out = String::new();
    if sols.vars.is_empty() {
        out.push_str("(no variables)\n");
        return out;
    }
    out.push_str(&sols.vars.join("\t"));
    out.push('\n');
    for row in sols.rows.iter().take(100) {
        let cells: Vec<String> = row
            .iter()
            .map(|c| match c {
                Some(id) => dict.decode(*id).to_string(),
                None => "UNDEF".to_string(),
            })
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    if sols.rows.len() > 100 {
        out.push_str(&format!("… ({} more rows)\n", sols.rows.len() - 100));
    }
    out
}

/// Decodes `%XX` escapes and `+` (space) in a URL query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One parsed HTTP request.
struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// The raw query string (no leading `?`), possibly empty.
    query_string: String,
    /// Header names lowercased.
    headers: Vec<(String, String)>,
    body: String,
}

impl Request {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of one `key=` parameter in the query string, decoded.
    fn query_param(&self, key: &str) -> Option<String> {
        self.query_string.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then(|| percent_decode(v))
        })
    }
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 1 << 20 {
            return Err(std::io::Error::other("request headers too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body_bytes = buf[header_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    body_bytes.truncate(content_length);
    Ok(Request {
        method,
        path,
        query_string,
        headers,
        body: String::from_utf8_lossy(&body_bytes).into_owned(),
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    // The peer may already be gone; a failed write only loses the
    // response to a client that stopped listening.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn rejection_response(r: &Rejection) -> (u16, &'static str, String) {
    let (status, reason_phrase) = match r {
        Rejection::Shed { .. } | Rejection::Draining => (503, "Service Unavailable"),
        Rejection::DeadlineExceeded => (504, "Gateway Timeout"),
    };
    let detail = match r {
        Rejection::Shed { reason } => reason.clone(),
        Rejection::DeadlineExceeded => "effective deadline is zero".to_string(),
        Rejection::Draining => "server is shutting down".to_string(),
    };
    let body = format!(
        "error: query rejected\ncode: {}\nreason: {detail}\n",
        r.code()
    );
    (status, reason_phrase, body)
}

fn handle_connection(server: &QueryServer, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            write_response(
                &mut stream,
                400,
                "Bad Request",
                &format!("error: bad request\ncode: parse\nreason: {e}\n"),
            );
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            if server.is_draining() {
                write_response(&mut stream, 503, "Service Unavailable", "draining\n");
            } else {
                write_response(&mut stream, 200, "OK", "ok\n");
            }
        }
        ("GET", "/stats") => {
            let c = server.counters();
            let wire = server.stats_snapshot();
            let cache = server.engine().probe_cache_stats();
            let body = format!(
                "admitted: {}\ncomplete_results: {}\nincomplete_results: {}\n\
                 shed: {}\ndeadline_rejected: {}\ndraining_rejected: {}\n\
                 health_invalidations: {}\nqueries_shed: {}\n\
                 wire_requests: {}\ncache_hits: {}\ncache_misses: {}\n\
                 cache_evictions: {}\n",
                c.admitted,
                c.complete_results,
                c.incomplete_results,
                c.shed,
                c.deadline_rejected,
                c.draining_rejected,
                c.health_invalidations,
                wire.queries_shed,
                wire.total_requests(),
                cache.hits,
                cache.misses,
                cache.evictions,
            );
            write_response(&mut stream, 200, "OK", &body);
        }
        (method, "/sparql") if method == "GET" || method == "POST" => {
            let text = if method == "GET" {
                request.query_param("query")
            } else {
                (!request.body.is_empty()).then(|| request.body.clone())
            };
            let Some(text) = text else {
                write_response(
                    &mut stream,
                    400,
                    "Bad Request",
                    "error: bad request\ncode: parse\nreason: missing query\n",
                );
                return;
            };
            let tenant = request.header("x-tenant").unwrap_or("default").to_string();
            let deadline = request
                .header("x-deadline-ms")
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis);
            let dict = Arc::clone(server.federation().dict());
            let query = match parse_query(&text, &dict) {
                Ok(q) => q,
                Err(e) => {
                    write_response(
                        &mut stream,
                        400,
                        "Bad Request",
                        &format!("error: bad request\ncode: parse\nreason: {e:?}\n"),
                    );
                    return;
                }
            };
            match server.execute_with_deadline(&tenant, &query, deadline) {
                Ok(result) => {
                    let body = render_solutions(&result.solutions, &dict);
                    if result.complete {
                        write_response(&mut stream, 200, "OK", &body);
                    } else {
                        // Partial results are still results, but the
                        // degradation must be visible to the client.
                        write_response(&mut stream, 206, "Partial Content", &body);
                    }
                }
                Err(ServeError::Rejected(r)) => {
                    let (status, phrase, body) = rejection_response(&r);
                    write_response(&mut stream, status, phrase, &body);
                }
                Err(ServeError::Engine(e)) => {
                    write_response(
                        &mut stream,
                        500,
                        "Internal Server Error",
                        &format!("error: engine\ncode: engine\nreason: {e:?}\n"),
                    );
                }
            }
        }
        _ => {
            write_response(
                &mut stream,
                404,
                "Not Found",
                "error: not found\ncode: route\nreason: unknown path\n",
            );
        }
    }
}

/// Runs the accept loop until `shutdown` becomes true, then drains the
/// server (in-flight queries finish or hit their deadlines) and joins
/// every connection thread. Returns the drain report.
pub fn run_http_loop(
    server: &Arc<QueryServer>,
    listener: TcpListener,
    shutdown: &AtomicBool,
) -> std::io::Result<crate::DrainReport> {
    listener.set_nonblocking(true)?;
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                let server = Arc::clone(server);
                workers.push(std::thread::spawn(move || {
                    handle_connection(&server, stream);
                }));
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    let report = server.drain();
    for handle in workers {
        let _ = handle.join();
    }
    Ok(report)
}

/// Installs a process-wide SIGTERM/SIGINT handler that flips the
/// returned flag (idempotent; the same flag is returned every time).
/// Raw `signal(2)` via the C runtime — no external crates.
pub fn install_shutdown_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
    &FLAG
}
