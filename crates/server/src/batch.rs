//! Cross-tenant batching: admitted queries accumulate in a bounded
//! window and execute together through the engine's multi-query
//! optimizer, so identical subqueries from different tenants hit the
//! wire once.
//!
//! The scheduler is leader/follower: the query that *opens* a window
//! becomes its leader, waits until the window closes — a count trigger
//! (`max_batch` pending), the window duration elapsing, or the nearest
//! pending deadline coming due, whichever is first — then drains the
//! queue and runs the batch. Followers park on a per-query slot until
//! the leader delivers their outcome. All waiting is measured on the
//! server's injectable [`Clock`] so tests drive the window
//! deterministically; the real-time elapsed wait is used as a fallback
//! bound so a frozen `ManualClock` can never wedge a leader.
//!
//! Isolation contracts (enforced by the engine's
//! [`execute_batch_with`](lusail_core::Lusail::execute_batch_with) and
//! pinned by the deadline-isolation regression test):
//!
//! * a tenant's deadline is fixed at admission and charged across both
//!   the window wait and every earlier item in its batch — waiting on
//!   another tenant's work can only *shorten* the budget, never extend
//!   it, and an expired item is refused with the typed deadline
//!   rejection instead of executing late;
//! * a failed shared subquery degrades every dependent tenant honestly
//!   (incomplete result plus inherited failure attribution), never
//!   silently.

use crate::QueryServer;
use lusail_core::{BatchItem, BatchOutcome, QueryResult};
use lusail_endpoint::{ExecOptions, FederationError};
use lusail_sparql::Query;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batching-window configuration (see [`crate::ServerConfig::batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Route admitted queries through the batching scheduler. Off by
    /// default: a query then executes immediately on its own thread.
    pub enabled: bool,
    /// How long an open window collects queries, measured on the server
    /// clock (real elapsed time is a fallback bound under a frozen test
    /// clock).
    pub window: Duration,
    /// Count trigger: the window closes as soon as this many queries are
    /// pending.
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            enabled: false,
            window: Duration::from_millis(2),
            max_batch: 8,
        }
    }
}

/// Monotonic counters describing the batching scheduler's work, exposed
/// through `/stats` as the `batch.*` lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Windows executed.
    pub windows: u64,
    /// Queries that went through a window (including singleton windows).
    pub batched_queries: u64,
    /// Largest window observed.
    pub max_window: u64,
    /// Subquery evaluations answered from a batch memo instead of the
    /// wire.
    pub shared_hits: u64,
    /// Wire requests those memo hits avoided.
    pub wire_requests_saved: u64,
}

/// What the leader delivers to a parked query.
pub(crate) enum Delivery {
    Finished(Box<QueryResult>),
    DeadlineExpired,
    Engine(FederationError),
}

/// A parked query's mailbox.
#[derive(Default)]
struct Slot {
    outcome: Mutex<Option<Delivery>>,
    ready: Condvar,
}

impl Slot {
    fn deliver(&self, delivery: Delivery) {
        *self.outcome.lock().unwrap() = Some(delivery);
        self.ready.notify_all();
    }

    fn wait(&self) -> Delivery {
        let mut guard = self.outcome.lock().unwrap();
        loop {
            match guard.take() {
                Some(delivery) => return delivery,
                None => guard = self.ready.wait(guard).unwrap(),
            }
        }
    }
}

struct Entry {
    query: Query,
    /// Absolute deadline on the server clock, fixed at submission —
    /// window waits and neighbours' work are charged against it.
    deadline_at: Duration,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct BatchQueue {
    pending: Vec<Entry>,
    /// True while some submitter is leading an open window.
    window_open: bool,
}

/// The shared scheduler state hanging off [`QueryServer`].
#[derive(Default)]
pub(crate) struct Batcher {
    state: Mutex<BatchQueue>,
    arrived: Condvar,
    stats: Mutex<BatchStats>,
}

impl QueryServer {
    /// Submits an admitted query to the batching scheduler and blocks
    /// until its outcome is delivered. The caller still holds its
    /// admission session (so capacity applies to queries waiting in a
    /// window) and does its own counter accounting on the returned
    /// delivery.
    pub(crate) fn batch_submit(&self, query: &Query, deadline: Duration) -> Delivery {
        let slot = Arc::new(Slot::default());
        let deadline_at = self.clock.now() + deadline;
        let leader = {
            let mut queue = self.batcher.state.lock().unwrap();
            queue.pending.push(Entry {
                query: query.clone(),
                deadline_at,
                slot: Arc::clone(&slot),
            });
            self.batcher.arrived.notify_all();
            let lead = !queue.window_open;
            queue.window_open = true;
            lead
        };
        if leader {
            self.lead_window();
        }
        slot.wait()
    }

    /// Collects the open window until it closes, then runs the batch.
    fn lead_window(&self) {
        let cfg = self.config.batch;
        let opened_real = Instant::now();
        let opened_clock = self.clock.now();
        let mut queue = self.batcher.state.lock().unwrap();
        loop {
            if queue.pending.len() >= cfg.max_batch {
                break;
            }
            let clock_now = self.clock.now();
            let clock_left = cfg
                .window
                .saturating_sub(clock_now.saturating_sub(opened_clock));
            let real_left = cfg.window.saturating_sub(opened_real.elapsed());
            // Never queue past a pending deadline: the window closes when
            // the nearest one comes due, so a tight-deadline tenant is
            // executed (or typed-refused) on time instead of waiting out
            // a generous window.
            let nearest_deadline = queue
                .pending
                .iter()
                .map(|e| e.deadline_at.saturating_sub(clock_now))
                .min()
                .unwrap_or(Duration::ZERO);
            let wait = clock_left.min(real_left).min(nearest_deadline);
            if wait.is_zero() {
                break;
            }
            let (next, timeout) = self.batcher.arrived.wait_timeout(queue, wait).unwrap();
            queue = next;
            if timeout.timed_out() {
                // The window (or a deadline) elapsed in real time; under a
                // frozen test clock this is the fallback that keeps the
                // leader from wedging.
                break;
            }
        }
        let batch: Vec<Entry> = std::mem::take(&mut queue.pending);
        queue.window_open = false;
        drop(queue);
        self.run_batch(batch);
    }

    /// Executes one closed window through the engine's multi-query
    /// optimizer and delivers every entry's outcome.
    fn run_batch(&self, batch: Vec<Entry>) {
        let items: Vec<BatchItem> = batch
            .iter()
            .map(|entry| {
                // Remaining budget after the window wait; zero means the
                // wait itself consumed the deadline and the engine will
                // refuse the item without touching the wire. The engine
                // further charges earlier items' work against it.
                let remaining = entry.deadline_at.saturating_sub(self.clock.now());
                BatchItem {
                    query: entry.query.clone(),
                    opts: ExecOptions::default()
                        .with_threads(self.config.threads_per_query)
                        .with_deadline(remaining)
                        .with_health_hook(self.hook.clone()),
                }
            })
            .collect();
        let (outcomes, report) = self.engine.execute_batch_with(&self.fed, &items);
        {
            let mut stats = self.batcher.stats.lock().unwrap();
            stats.windows += 1;
            stats.batched_queries += batch.len() as u64;
            stats.max_window = stats.max_window.max(batch.len() as u64);
            stats.shared_hits += report.shared_hits;
            stats.wire_requests_saved += report.wire_requests_saved;
        }
        for (entry, outcome) in batch.into_iter().zip(outcomes) {
            entry.slot.deliver(match outcome {
                BatchOutcome::Finished(result) => Delivery::Finished(result),
                BatchOutcome::DeadlineExpired => Delivery::DeadlineExpired,
                BatchOutcome::Error(e) => Delivery::Engine(e),
            });
        }
    }

    /// A snapshot of the batching counters.
    pub fn batch_stats(&self) -> BatchStats {
        *self.batcher.stats.lock().unwrap()
    }
}
