//! Global join evaluation: DP-ordered, partitioned hash joins (§V-B "Join
//! Evaluation").
//!
//! Each subquery result is a relation whose *true* cardinality is known
//! and whose rows arrived in per-endpoint partitions. Join order within a
//! connected component (relations sharing variables) is chosen by the
//! dynamic-programming enumeration of bushy trees without cross products
//! (Moerkotte & Neumann), with the paper's cost function
//!
//! ```text
//! JoinCost(S, R) = |S| / S.threads  +  |R| / R.threads
//! ```
//!
//! (hash + probe, each parallel over its partitions). Probing is
//! parallelized across row chunks when a side is large.

use lusail_endpoint::{TraceEvent, TraceSink};
use lusail_rdf::{FxHashMap, TermId};
use lusail_sparql::solution::{Row, SolutionSet};

/// A subquery result at the global level.
#[derive(Debug, Clone)]
pub struct Relation {
    /// The rows.
    pub sols: SolutionSet,
    /// How many partitions (endpoint result streams / worker threads)
    /// back the relation — the `threads` term of the cost model.
    pub partitions: usize,
}

impl Relation {
    /// The paper's per-relation parallel-work term `|R| / R.threads`.
    fn work(&self) -> f64 {
        self.sols.len() as f64 / self.partitions.max(1) as f64
    }

    fn shares_var(&self, other: &Relation) -> bool {
        self.sols.vars.iter().any(|v| other.sols.col(v).is_some())
    }
}

/// Joins every *connected component* of the relation graph (edges =
/// shared variables) down to a single relation, using DP join ordering
/// inside each component. Disconnected components are returned separately
/// — the caller decides whether a cross product is actually needed.
/// `threads` is the worker budget for parallel probing (`1` = fully
/// sequential joins). Each executed hash join emits one
/// [`TraceEvent::JoinStep`] into `trace` with its input/output
/// cardinalities and the `JoinCost` that ordered it.
pub fn join_components(
    relations: Vec<Relation>,
    parallel_threshold: usize,
    threads: usize,
    trace: &TraceSink,
) -> Vec<Relation> {
    let n = relations.len();
    if n <= 1 {
        return relations;
    }
    // Union-find over shared-variable edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            if relations[i].shares_var(&relations[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut components: Vec<Vec<Relation>> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();
    let rels: Vec<Relation> = relations;
    for (i, rel) in rels.into_iter().enumerate() {
        let root = find(&mut parent, i);
        let idx = match roots.iter().position(|&r| r == root) {
            Some(idx) => idx,
            None => {
                roots.push(root);
                components.push(Vec::new());
                components.len() - 1
            }
        };
        components[idx].push(rel);
    }
    components
        .into_iter()
        .map(|c| join_connected(c, parallel_threshold, threads, trace))
        .collect()
}

/// Joins a connected set of relations into one, ordering by DP when small
/// enough and by greedy smallest-pair otherwise.
fn join_connected(
    mut relations: Vec<Relation>,
    parallel_threshold: usize,
    threads: usize,
    trace: &TraceSink,
) -> Relation {
    if relations.len() == 1 {
        return relations.pop().unwrap();
    }
    if relations.len() <= 12 {
        dp_join(relations, parallel_threshold, threads, trace)
    } else {
        greedy_join(relations, parallel_threshold, threads, trace)
    }
}

/// Bushy DP over subsets: `best[mask]` is the cheapest plan joining the
/// relations in `mask`, considering only connected splits (no cross
/// products within a component).
fn dp_join(
    relations: Vec<Relation>,
    parallel_threshold: usize,
    threads: usize,
    trace: &TraceSink,
) -> Relation {
    #[derive(Clone)]
    struct Plan {
        cost: f64,
        // (left mask, right mask); single relations have no split.
        split: Option<(u32, u32)>,
        rows: f64,
        partitions: usize,
    }
    let n = relations.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut plans: FxHashMap<u32, Plan> = FxHashMap::default();
    for (i, r) in relations.iter().enumerate() {
        plans.insert(
            1 << i,
            Plan {
                cost: 0.0,
                split: None,
                rows: r.sols.len() as f64,
                partitions: r.partitions,
            },
        );
    }
    // Precomputed adjacency bitmasks: neighbors[i] has bit j set when
    // relation i shares a variable with relation j. Mask connectivity is
    // then a couple of bit operations instead of repeated string compares.
    let neighbors: Vec<u32> = (0..n)
        .map(|i| {
            let mut mask = 0u32;
            for j in 0..n {
                if i != j && relations[i].shares_var(&relations[j]) {
                    mask |= 1 << j;
                }
            }
            mask
        })
        .collect();
    let connected =
        |a: u32, b: u32| -> bool { (0..n).any(|i| a & (1 << i) != 0 && neighbors[i] & b != 0) };

    // Enumerate masks in increasing popcount order.
    let mut masks: Vec<u32> = (1..=full).collect();
    masks.sort_by_key(|m| m.count_ones());
    for &mask in &masks {
        if mask.count_ones() < 2 {
            continue;
        }
        let mut best: Option<Plan> = None;
        // Enumerate proper sub-splits (left < right to halve the work).
        let mut left = (mask - 1) & mask;
        while left > 0 {
            let right = mask & !left;
            if left < right {
                if let (Some(pl), Some(pr)) = (plans.get(&left), plans.get(&right)) {
                    if connected(left, right) {
                        // JoinCost: hash the smaller side, probe the other.
                        let (s_rows, s_parts, r_rows, r_parts) = if pl.rows <= pr.rows {
                            (pl.rows, pl.partitions, pr.rows, pr.partitions)
                        } else {
                            (pr.rows, pr.partitions, pl.rows, pl.partitions)
                        };
                        let step = s_rows / s_parts.max(1) as f64 + r_rows / r_parts.max(1) as f64;
                        let cost = pl.cost + pr.cost + step;
                        // Optimistic output estimate: the smaller input (a
                        // key join usually reduces); exact sizes are only
                        // known after execution.
                        let rows = s_rows.min(r_rows).max(1.0);
                        let partitions = s_parts.max(r_parts);
                        if best.as_ref().is_none_or(|b| cost < b.cost) {
                            best = Some(Plan {
                                cost,
                                split: Some((left, right)),
                                rows,
                                partitions,
                            });
                        }
                    }
                }
            }
            left = (left - 1) & mask;
        }
        if let Some(plan) = best {
            plans.insert(mask, plan);
        }
    }

    // Execute the chosen plan bottom-up. If DP never connected the full
    // mask (shouldn't happen for a connected component), fall back to
    // greedy.
    if !plans.contains_key(&full) {
        return greedy_join(relations, parallel_threshold, threads, trace);
    }

    fn execute(
        mask: u32,
        plans: &FxHashMap<u32, Plan>,
        relations: &mut [Option<Relation>],
        threshold: usize,
        threads: usize,
        trace: &TraceSink,
    ) -> Relation {
        let plan = &plans[&mask];
        match plan.split {
            None => {
                // Each leaf participates in exactly one place of the plan
                // tree: take ownership instead of cloning its rows.
                let i = mask.trailing_zeros() as usize;
                relations[i].take().expect("leaf used once")
            }
            Some((l, r)) => {
                let left = execute(l, plans, relations, threshold, threads, trace);
                let right = execute(r, plans, relations, threshold, threads, trace);
                let partitions = left.partitions.max(right.partitions);
                let sols = par_hash_join(&left.sols, &right.sols, partitions, threads, threshold);
                trace.emit(|| TraceEvent::JoinStep {
                    left_rows: left.sols.len(),
                    right_rows: right.sols.len(),
                    output_rows: sols.len(),
                    // The marginal DP step cost that ordered this join.
                    cost: plan.cost - plans[&l].cost - plans[&r].cost,
                });
                Relation { sols, partitions }
            }
        }
    }
    let mut slots: Vec<Option<Relation>> = relations.into_iter().map(Some).collect();
    execute(full, &plans, &mut slots, parallel_threshold, threads, trace)
}

/// Greedy fallback: repeatedly join the connected pair with the smallest
/// combined work.
fn greedy_join(
    mut relations: Vec<Relation>,
    parallel_threshold: usize,
    threads: usize,
    trace: &TraceSink,
) -> Relation {
    while relations.len() > 1 {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..relations.len() {
            for j in i + 1..relations.len() {
                if !relations[i].shares_var(&relations[j]) {
                    continue;
                }
                let cost = relations[i].work() + relations[j].work();
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((i, j, cost));
                }
            }
        }
        let Some((i, j, _)) = best else {
            // Not connected after all: cross-join the first two.
            let b = relations.remove(1);
            let a = relations.remove(0);
            let cost = a.work() + b.work();
            let partitions = a.partitions.max(b.partitions);
            let sols = par_hash_join(&a.sols, &b.sols, partitions, threads, parallel_threshold);
            trace.emit(|| TraceEvent::JoinStep {
                left_rows: a.sols.len(),
                right_rows: b.sols.len(),
                output_rows: sols.len(),
                cost,
            });
            relations.insert(0, Relation { sols, partitions });
            continue;
        };
        let b = relations.remove(j);
        let a = relations.remove(i);
        let cost = a.work() + b.work();
        let partitions = a.partitions.max(b.partitions);
        let sols = par_hash_join(&a.sols, &b.sols, partitions, threads, parallel_threshold);
        trace.emit(|| TraceEvent::JoinStep {
            left_rows: a.sols.len(),
            right_rows: b.sols.len(),
            output_rows: sols.len(),
            cost,
        });
        relations.push(Relation { sols, partitions });
    }
    relations.pop().unwrap_or(Relation {
        sols: SolutionSet {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        },
        partitions: 1,
    })
}

/// Hash join with parallel probing: the probe side is split into chunks
/// processed by scoped threads against a shared build table. `threads` is
/// the worker budget; the effective worker count is
/// `partitions.min(threads)`, so a budget of `1` is always the sequential
/// path. Output rows are concatenated in chunk order, which is exactly the
/// probe-row order the sequential [`SolutionSet::hash_join`] produces —
/// the result bytes are identical at every budget. Falls back to the
/// sequential join when the inputs are small or any join-key cell is
/// unbound (the rare OPTIONAL-produced case, which needs the
/// compatibility fallback).
pub fn par_hash_join(
    a: &SolutionSet,
    b: &SolutionSet,
    partitions: usize,
    threads: usize,
    threshold: usize,
) -> SolutionSet {
    let shared: Vec<String> = a
        .vars
        .iter()
        .filter(|v| b.col(v).is_some())
        .cloned()
        .collect();
    let threads = partitions.max(1).min(threads.max(1));
    if shared.is_empty() || threads == 1 || a.len().max(b.len()) < threshold {
        return a.hash_join(b);
    }

    let (build, probe, build_is_a) = if a.len() <= b.len() {
        (a, b, true)
    } else {
        (b, a, false)
    };
    let build_cols: Vec<usize> = shared.iter().map(|v| build.col(v).unwrap()).collect();
    let probe_cols: Vec<usize> = shared.iter().map(|v| probe.col(v).unwrap()).collect();

    // Unbound key cells require the compatibility fallback.
    let any_unbound = build
        .rows
        .iter()
        .any(|r| build_cols.iter().any(|&c| r[c].is_none()))
        || probe
            .rows
            .iter()
            .any(|r| probe_cols.iter().any(|&c| r[c].is_none()));
    if any_unbound {
        return a.hash_join(b);
    }

    let mut table: FxHashMap<Vec<TermId>, Vec<usize>> = FxHashMap::default();
    for (i, row) in build.rows.iter().enumerate() {
        let key: Vec<TermId> = build_cols.iter().map(|&c| row[c].unwrap()).collect();
        table.entry(key).or_default().push(i);
    }

    let out_vars: Vec<String> = a
        .vars
        .iter()
        .cloned()
        .chain(b.vars.iter().filter(|v| a.col(v).is_none()).cloned())
        .collect();
    // Precompute output column sources: (from_a, col).
    let col_src: Vec<(bool, usize)> = out_vars
        .iter()
        .map(|v| match a.col(v) {
            Some(c) => (true, c),
            None => (false, b.col(v).unwrap()),
        })
        .collect();

    let chunk = probe.rows.len().div_ceil(threads);
    let mut rows: Vec<Row> = Vec::new();
    std::thread::scope(|scope| {
        let table = &table;
        let col_src = &col_src;
        let probe_cols = &probe_cols;
        let handles: Vec<_> = probe
            .rows
            .chunks(chunk.max(1))
            .map(|chunk_rows| {
                scope.spawn(move || {
                    let mut out: Vec<Row> = Vec::new();
                    for prow in chunk_rows {
                        let key: Vec<TermId> =
                            probe_cols.iter().map(|&c| prow[c].unwrap()).collect();
                        if let Some(matches) = table.get(&key) {
                            for &bi in matches {
                                let brow = &build.rows[bi];
                                let (arow, brow2): (&Row, &Row) = if build_is_a {
                                    (brow, prow)
                                } else {
                                    (prow, brow)
                                };
                                let row: Row = col_src
                                    .iter()
                                    .map(|&(from_a, c)| if from_a { arow[c] } else { brow2[c] })
                                    .collect();
                                out.push(row);
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            rows.extend(h.join().expect("join worker panicked"));
        }
    });
    SolutionSet {
        vars: out_vars,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(vars: &[&str], rows: Vec<Vec<u32>>, partitions: usize) -> Relation {
        Relation {
            sols: SolutionSet {
                vars: vars.iter().map(|s| s.to_string()).collect(),
                rows: rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|x| Some(TermId(x))).collect())
                    .collect(),
            },
            partitions,
        }
    }

    #[test]
    fn chain_join_produces_expected_rows() {
        let a = rel(&["x", "y"], vec![vec![1, 10], vec![2, 20]], 1);
        let b = rel(&["y", "z"], vec![vec![10, 100], vec![20, 200]], 1);
        let c = rel(&["z", "w"], vec![vec![100, 7]], 1);
        let out = join_components(vec![a, b, c], usize::MAX, 4, &TraceSink::disabled());
        assert_eq!(out.len(), 1);
        let sols = &out[0].sols;
        assert_eq!(sols.len(), 1);
        let canon = sols.canonicalize();
        assert_eq!(canon.vars, ["w", "x", "y", "z"]);
        assert_eq!(
            canon.rows[0],
            vec![
                Some(TermId(7)),
                Some(TermId(1)),
                Some(TermId(10)),
                Some(TermId(100))
            ]
        );
    }

    #[test]
    fn disconnected_components_stay_apart() {
        let a = rel(&["x"], vec![vec![1]], 1);
        let b = rel(&["y"], vec![vec![2]], 1);
        let out = join_components(vec![a, b], usize::MAX, 4, &TraceSink::disabled());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn star_join_with_many_relations() {
        // A center relation joined with 5 satellites.
        let mut rels = vec![rel(&["c", "a0"], vec![vec![1, 10], vec![2, 20]], 2)];
        for i in 0..5 {
            rels.push(rel(
                &["c", &format!("s{i}")],
                vec![vec![1, 100 + i], vec![2, 200 + i]],
                1,
            ));
        }
        let out = join_components(rels, usize::MAX, 4, &TraceSink::disabled());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sols.len(), 2);
        assert_eq!(out[0].sols.vars.len(), 7);
    }

    #[test]
    fn par_join_matches_sequential() {
        let n = 2_000u32;
        let a = rel(&["x", "y"], (0..n).map(|i| vec![i, i * 2]).collect(), 4);
        let b = rel(&["y", "z"], (0..n).map(|i| vec![i, i + 1]).collect(), 4);
        let seq = a.sols.hash_join(&b.sols).canonicalize();
        let par = par_hash_join(&a.sols, &b.sols, 4, 4, 100).canonicalize();
        assert_eq!(seq, par);
        // y values 0..2n step 2 that are < n: n/2 matches.
        assert_eq!(par.len(), (n / 2) as usize);
    }

    #[test]
    fn par_join_falls_back_on_unbound_keys() {
        let a = Relation {
            sols: SolutionSet {
                vars: vec!["x".into(), "y".into()],
                rows: vec![vec![Some(TermId(1)), None]],
            },
            partitions: 2,
        };
        let b = rel(&["y", "z"], vec![vec![10, 100]], 2);
        let out = par_hash_join(&a.sols, &b.sols, 2, 2, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.rows[0],
            vec![Some(TermId(1)), Some(TermId(10)), Some(TermId(100))]
        );
    }

    #[test]
    fn greedy_join_used_for_large_sets() {
        // 14 relations in a chain exceed the DP width.
        let mut rels = Vec::new();
        for i in 0..14 {
            rels.push(rel(
                &[&format!("v{i}"), &format!("v{}", i + 1)],
                vec![vec![1, 1], vec![2, 2]],
                1,
            ));
        }
        let out = join_components(rels, usize::MAX, 4, &TraceSink::disabled());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sols.len(), 2);
    }

    #[test]
    fn join_steps_are_traced_with_cardinalities_and_cost() {
        let a = rel(&["x", "y"], vec![vec![1, 10], vec![2, 20]], 1);
        let b = rel(&["y", "z"], vec![vec![10, 100], vec![20, 200]], 1);
        let c = rel(&["z", "w"], vec![vec![100, 7]], 1);
        let sink = TraceSink::enabled();
        let out = join_components(vec![a, b, c], usize::MAX, 4, &sink);
        assert_eq!(out.len(), 1);
        let events = sink.events();
        // Three relations join in exactly two steps, innermost first.
        assert_eq!(events.len(), 2);
        for ev in &events {
            let TraceEvent::JoinStep {
                left_rows,
                right_rows,
                output_rows,
                cost,
            } = ev
            else {
                panic!("unexpected event {ev:?}");
            };
            assert!(*left_rows >= 1 && *right_rows >= 1);
            assert!(*output_rows <= left_rows * right_rows);
            assert!(*cost > 0.0);
        }
        // The final step produced the component's result cardinality.
        let TraceEvent::JoinStep { output_rows, .. } = events[1] else {
            unreachable!()
        };
        assert_eq!(output_rows, out[0].sols.len());
    }
}
