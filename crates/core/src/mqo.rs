//! Multi-query optimization (§V: "Lusail also supports multi-query
//! optimization", detailed in the paper's extended version).
//!
//! A batch of queries often shares subqueries after decomposition — in
//! the paper's motivating scenario many users ask overlapping analytical
//! queries over the same decentralized graphs. [`Lusail::execute_batch`]
//! decomposes every query first, identifies *identical* subqueries
//! (same normalized patterns, filters, and sources), evaluates each
//! distinct non-delayed subquery **once**, and reuses its relation across
//! all queries in the batch. Delayed subqueries are evaluated per query
//! (their bound `VALUES` blocks depend on the query's other subqueries).
//!
//! [`Lusail::execute_batch_with`] is the options-aware form the query
//! server's cross-tenant batching scheduler drives: every item carries its
//! own [`ExecOptions`] (trace sink, thread budget, deadline, health hook),
//! deadlines are charged from the *batch* start so one tenant's work never
//! extends another tenant's budget, and a shared relation that lost data
//! degrades every dependent item with the producing evaluation's failure
//! attribution merged into its report.

use crate::cache::pattern_key;
use crate::cost::SubqueryCosts;
use crate::engine::{Lusail, QueryResult};
use crate::exec::{evaluate_subqueries, ExecConfig};
use crate::subquery::Subquery;
use lusail_endpoint::{EndpointFailure, ExecOptions, Federation, FederationError, TraceEvent};
use lusail_sparql::ast::Query;
use lusail_sparql::SolutionSet;
use std::collections::HashMap;

/// A normalized signature for subquery sharing: pattern keys (variables
/// canonicalized), sources, pushed filters, and projection. Two subqueries
/// with equal signatures evaluate to multiset-equal relations (pinned by
/// the signature-soundness property test), which is what makes reusing a
/// memoized relation across queries safe.
pub fn subquery_signature(sq: &Subquery) -> String {
    let mut keys: Vec<String> = sq
        .triples
        .iter()
        .map(|tp| format!("{:?}", pattern_key(tp)))
        .collect();
    keys.sort();
    format!("{:?}|{:?}|{:?}|{:?}", keys, sq.sources, sq.filters, {
        let mut p = sq.projection.clone();
        p.sort();
        p
    })
}

/// Statistics from a batch execution.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Subqueries across all queries, after decomposition.
    pub total_subqueries: usize,
    /// Distinct subqueries actually evaluated.
    pub distinct_subqueries: usize,
    /// Subquery evaluations answered from the batch memo instead of the
    /// wire.
    pub shared_hits: u64,
    /// Wire requests avoided by memo hits: each reuse credits the request
    /// count the producing evaluation spent.
    pub wire_requests_saved: u64,
}

/// One query in an options-aware batch ([`Lusail::execute_batch_with`]).
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The query to execute.
    pub query: Query,
    /// Per-item options: trace sink, thread budget, deadline, health hook.
    pub opts: ExecOptions,
}

/// Per-item outcome of [`Lusail::execute_batch_with`]. The batch itself is
/// infallible — one item's failure never poisons its neighbours.
#[derive(Debug, Clone)]
pub enum BatchOutcome {
    /// The query ran (possibly degraded; see `QueryResult::complete`).
    Finished(Box<QueryResult>),
    /// The item's deadline had fully elapsed — burned by earlier items in
    /// the batch — before its turn; nothing was executed for it.
    DeadlineExpired,
    /// Federation-level misuse, reported per item.
    Error(FederationError),
}

/// A memoized shared relation plus everything a *dependent* query must
/// inherit to stay honest: whether the producing evaluation lost data,
/// which endpoints misbehaved while producing it, and what it cost on the
/// wire (the savings each reuse records).
struct SharedEntry {
    relation: SolutionSet,
    lost: bool,
    failures: Vec<EndpointFailure>,
    requests_spent: u64,
}

/// Folds `extra` failure entries into `into`, merging per endpoint:
/// counters add, the dead flag is sticky, and the deduped error kinds stay
/// in taxonomy order. The result is sorted by endpoint id so reports are
/// deterministic regardless of which item evaluated what.
fn merge_failures(into: &mut Vec<EndpointFailure>, extra: &[EndpointFailure]) {
    for e in extra {
        match into.iter_mut().find(|f| f.endpoint == e.endpoint) {
            Some(f) => {
                f.failed_requests += e.failed_requests;
                f.retries += e.retries;
                f.dead |= e.dead;
                if f.last_error.is_none() {
                    f.last_error = e.last_error;
                }
                for err in &e.errors {
                    if !f.errors.contains(err) {
                        f.errors.push(*err);
                    }
                }
                f.errors.sort_by_key(|err| err.index());
            }
            None => into.push(e.clone()),
        }
    }
    into.sort_by_key(|f| f.endpoint);
}

/// The failure growth between two reports from the same client: entries
/// whose failure counters advanced (with the deltas), plus endpoints that
/// newly appeared. This is the attribution a shared relation carries.
fn failure_delta(before: &[EndpointFailure], after: Vec<EndpointFailure>) -> Vec<EndpointFailure> {
    after
        .into_iter()
        .filter_map(|mut f| {
            let Some(b) = before.iter().find(|b| b.endpoint == f.endpoint) else {
                return Some(f);
            };
            let failed = f.failed_requests.saturating_sub(b.failed_requests);
            let retries = f.retries.saturating_sub(b.retries);
            if failed == 0 && retries == 0 && f.dead == b.dead {
                return None;
            }
            f.failed_requests = failed;
            f.retries = retries;
            Some(f)
        })
        .collect()
}

impl Lusail {
    /// Executes a batch of queries, sharing identical subquery results.
    ///
    /// Returns one [`QueryResult`] per query (same order) plus a
    /// [`BatchReport`] describing how much work was shared. Queries with
    /// nested clauses (OPTIONAL/UNION/NOT EXISTS) fall back to the
    /// single-query path for those clauses but still share their
    /// top-level subqueries.
    pub fn execute_batch(
        &self,
        fed: &Federation,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, BatchReport), FederationError> {
        let items: Vec<BatchItem> = queries
            .iter()
            .map(|q| BatchItem {
                query: q.clone(),
                opts: ExecOptions::default(),
            })
            .collect();
        let (outcomes, report) = self.execute_batch_with(fed, &items);
        let mut results = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                BatchOutcome::Finished(result) => results.push(*result),
                BatchOutcome::Error(e) => return Err(e),
                BatchOutcome::DeadlineExpired => {
                    unreachable!("default options carry no deadline")
                }
            }
        }
        Ok((results, report))
    }

    /// Options-aware batch execution: one [`BatchOutcome`] per item (same
    /// order), sharing identical non-delayed subquery relations across
    /// items. The contracts the server's batching scheduler relies on:
    ///
    /// * **Deadlines are absolute.** An item's `opts.deadline` is measured
    ///   from the *batch* start on the engine clock, so time burned by
    ///   earlier items counts against it — sharing can only shorten a
    ///   query, never extend it past what it asked for. An item whose
    ///   deadline elapsed before its turn yields
    ///   [`BatchOutcome::DeadlineExpired`] without touching the wire.
    /// * **Failure attribution is inherited.** A shared relation that lost
    ///   data degrades every dependent item exactly as if the item had
    ///   evaluated the subquery itself: `complete` goes false and the
    ///   producing evaluation's per-endpoint failures merge into the
    ///   item's report.
    /// * **Traces stay per-item.** Each enabled sink sees its own planning
    ///   events, a [`TraceEvent::SubqueryShared`] for every memo hit, and
    ///   the terminal [`TraceEvent::QueryFinished`].
    pub fn execute_batch_with(
        &self,
        fed: &Federation,
        items: &[BatchItem],
    ) -> (Vec<BatchOutcome>, BatchReport) {
        let clock = self.timing_clock();
        let start = clock.now();
        let mut shared: HashMap<String, SharedEntry> = HashMap::new();
        let mut report = BatchReport::default();
        let mut outcomes = Vec::with_capacity(items.len());
        for item in items {
            if fed.is_empty() {
                outcomes.push(BatchOutcome::Error(FederationError::EmptyFederation));
                continue;
            }
            let elapsed = clock.now().saturating_sub(start);
            let opts = match item.opts.deadline {
                Some(d) if elapsed >= d => {
                    outcomes.push(BatchOutcome::DeadlineExpired);
                    continue;
                }
                Some(d) => item.opts.clone().with_deadline(d - elapsed),
                None => item.opts.clone(),
            };
            let outcome =
                match self.execute_with_shared(fed, &item.query, &opts, &mut shared, &mut report) {
                    Ok(result) => BatchOutcome::Finished(Box::new(result)),
                    Err(e) => BatchOutcome::Error(e),
                };
            outcomes.push(outcome);
        }
        report.distinct_subqueries = shared.len();
        (outcomes, report)
    }

    /// Plans the conjunctive core of `query` and returns its decomposed
    /// subqueries — the units [`subquery_signature`] keys the batch memo
    /// by. `None` when the query takes a non-conjunctive path (nested
    /// clauses, aggregates, non-SELECT forms, the disjoint fast path, or
    /// no relevant sources).
    pub fn plan_subqueries(&self, fed: &Federation, query: &Query) -> Option<Vec<Subquery>> {
        if fed.is_empty()
            || self.config().disable_lade
            || query.pattern.triples.is_empty()
            || !query.pattern.optionals.is_empty()
            || !query.pattern.unions.is_empty()
            || !query.pattern.not_exists.is_empty()
            || !query.aggregates.is_empty()
            || !matches!(query.form, lusail_sparql::ast::QueryForm::Select)
        {
            return None;
        }
        let net = self.fresh_net();
        match self.plan_conjunctive(fed, query, &net) {
            crate::engine::ConjunctivePlan::Planned { subqueries, .. } => Some(subqueries),
            _ => None,
        }
    }

    /// Evaluates one subquery standalone (no bindings from neighbours) and
    /// returns its relation — the unit the batch memo shares. Exposed so
    /// the signature-soundness property test can compare relations of
    /// signature-equal subqueries directly.
    pub fn evaluate_subquery(&self, fed: &Federation, sq: &Subquery) -> SolutionSet {
        let net = self.fresh_net();
        let (relation, _) = evaluate_subqueries(
            fed,
            &net,
            std::slice::from_ref(sq),
            &SubqueryCosts {
                cardinality: vec![1],
                delayed: vec![false],
            },
            &ExecConfig::for_engine(self.config(), net.threads),
        );
        relation
    }

    /// Single-query execution that consults/extends the batch memo for
    /// non-delayed subqueries. Implementation: run the normal pipeline but
    /// intercept the subquery-evaluation stage.
    fn execute_with_shared(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
        shared: &mut HashMap<String, SharedEntry>,
        report: &mut BatchReport,
    ) -> Result<QueryResult, FederationError> {
        // Reuse the standard compile-time pipeline via explain-like calls,
        // then execute with memoized relations. To keep one code path, we
        // reuse `Lusail::execute_with` when the query has nested clauses
        // (the memo still helps those through the probe caches).
        let has_nested = !query.pattern.optionals.is_empty()
            || !query.pattern.unions.is_empty()
            || !query.pattern.not_exists.is_empty();
        // Aggregates, non-SELECT forms, empty patterns, and disabled LADE
        // take the full single-query path (mediator-side grouping,
        // CountStar normalization, the §II strawman decomposition). These
        // are structural checks — no wire traffic is spent before the
        // routing decision.
        if has_nested
            || !query.aggregates.is_empty()
            || !matches!(query.form, lusail_sparql::ast::QueryForm::Select)
            || query.pattern.triples.is_empty()
            || self.config().disable_lade
        {
            return self.execute_with(fed, query, opts);
        }

        // From here on, every outcome of planning executes against this
        // one Net. Falling back to `execute_with` after planning would
        // build a second Net and re-issue the probes planning already
        // paid for (failed ASKs are never cached), making a batched run
        // cost *more* wire than solo — the exact regression the
        // batched-vs-solo oracle rejects.
        let net = self.fresh_net_with(opts);
        let (subqueries, costs, global_filters) = match self.plan_conjunctive(fed, query, &net) {
            crate::engine::ConjunctivePlan::Empty => {
                // A required pattern with no source: empty result, same as
                // the solo early return.
                let mut metrics = crate::metrics::QueryMetrics::default();
                let (complete, failures) = self.finish(fed, &net, &mut metrics);
                net.trace
                    .emit(|| TraceEvent::QueryFinished { rows: 0, complete });
                return Ok(QueryResult {
                    solutions: SolutionSet::empty(query.output_vars()),
                    metrics,
                    complete,
                    failures,
                });
            }
            crate::engine::ConjunctivePlan::Disjoint(sources) => {
                let solutions = self.execute_disjoint(fed, query, &sources, &net);
                let mut metrics = crate::metrics::QueryMetrics {
                    subqueries: 1,
                    result_rows: solutions.len(),
                    ..Default::default()
                };
                let (complete, failures) = self.finish(fed, &net, &mut metrics);
                net.trace.emit(|| TraceEvent::QueryFinished {
                    rows: solutions.len(),
                    complete,
                });
                return Ok(QueryResult {
                    solutions,
                    metrics,
                    complete,
                    failures,
                });
            }
            crate::engine::ConjunctivePlan::Planned {
                subqueries,
                costs,
                global_filters,
            } => (subqueries, costs, global_filters),
        };
        report.total_subqueries += subqueries.len();

        // Evaluate with sharing: replace each non-delayed subquery whose
        // signature is memoized by a zero-cost cached relation. We model
        // this by executing only the *missing* subqueries through the
        // normal path, then joining cached relations in.
        let exec_cfg = ExecConfig::for_engine(self.config(), net.threads);

        // One pass: cached relations come from the memo; missing
        // non-delayed subqueries are evaluated alone (concurrently per
        // endpoint) and memoized; delayed subqueries collect for the
        // standard two-phase treatment against the joined bindings.
        let mut relations: Vec<SolutionSet> = Vec::new();
        let mut delayed_subqueries: Vec<Subquery> = Vec::new();
        let mut delayed_cards: Vec<u64> = Vec::new();
        // Failures inherited from shared relations an *earlier* item
        // evaluated — this item never touched those endpoints itself, so
        // its own client report cannot know about them.
        let mut inherited: Vec<EndpointFailure> = Vec::new();
        for (i, sq) in subqueries.iter().enumerate() {
            if costs.delayed[i] {
                delayed_subqueries.push(sq.clone());
                delayed_cards.push(costs.cardinality[i]);
                continue;
            }
            let sig = subquery_signature(sq);
            if let Some(entry) = shared.get(&sig) {
                report.shared_hits += 1;
                report.wire_requests_saved += entry.requests_spent;
                net.trace.emit(|| TraceEvent::SubqueryShared {
                    index: i,
                    saved_requests: entry.requests_spent,
                });
                // A relation with a hole degrades every dependent query
                // honestly: incompleteness and the producing failures are
                // inherited along with the rows.
                if entry.lost {
                    net.degradation.record_data_loss();
                    merge_failures(&mut inherited, &entry.failures);
                }
                relations.push(entry.relation.clone());
                continue;
            }
            let loss_before = net.degradation.data_loss();
            let wire_before = fed.stats_snapshot();
            let fail_before = net.client.report(fed);
            let (rel, _) = evaluate_subqueries(
                fed,
                &net,
                std::slice::from_ref(sq),
                &SubqueryCosts {
                    cardinality: vec![costs.cardinality[i]],
                    delayed: vec![false],
                },
                &exec_cfg,
            );
            let requests_spent = fed.stats_snapshot().since(&wire_before).total_requests();
            let failures = failure_delta(&fail_before, net.client.report(fed));
            // A non-delayed subquery only issues result-bearing SELECTs,
            // so any failure growth in its window is lost data. The sticky
            // per-query flag covers the first transition as well.
            let lost = failures.iter().any(|f| f.failed_requests > 0)
                || (!loss_before && net.degradation.data_loss());
            shared.insert(
                sig,
                SharedEntry {
                    relation: rel.clone(),
                    lost,
                    failures,
                    requests_spent,
                },
            );
            relations.push(rel);
        }

        // Join the shared/non-delayed relations, then run the delayed ones
        // through the standard machinery with the joined bindings
        // available: reuse evaluate_subqueries by handing it the delayed
        // subqueries plus one pseudo-relation seeded via VALUES. Simpler
        // and equivalent: join delayed results with the accumulated
        // relation using the single-query executor on just those
        // subqueries, then merge.
        let mut solutions = relations
            .into_iter()
            .reduce(|a, b| a.hash_join(&b))
            .unwrap_or(SolutionSet {
                vars: Vec::new(),
                rows: vec![Vec::new()],
            });
        // An empty non-delayed join zeroes the query: skip the delayed
        // phase entirely, exactly as the single-query executor's bound
        // `VALUES` blocks degenerate to no requests without bindings.
        let had_nondelayed = !subqueries.is_empty() && subqueries.len() > delayed_subqueries.len();
        let skip_delayed = had_nondelayed && solutions.rows.is_empty();
        if !delayed_subqueries.is_empty() && !skip_delayed {
            let costs = SubqueryCosts {
                cardinality: delayed_cards,
                delayed: vec![true; delayed_subqueries.len()],
            };
            // Delayed-only evaluation promotes the most selective one, so
            // bindings flow as usual; join its output in.
            let (delayed_rel, _) =
                evaluate_subqueries(fed, &net, &delayed_subqueries, &costs, &exec_cfg);
            solutions = solutions.hash_join(&delayed_rel);
        }

        // Query-level clauses: VALUES join, then the filters that could
        // not be pushed into any subquery (mediator-side, exactly where
        // the solo path applies them), then the standard modifier tail.
        if let Some(v) = &query.pattern.values {
            let values_rel = SolutionSet {
                vars: v.vars.clone(),
                rows: v.rows.clone(),
            };
            solutions = solutions.hash_join(&values_rel);
        }
        lusail_store::eval::retain_filtered(&mut solutions, &global_filters, fed.dict());
        let solutions = lusail_store::eval::apply_modifiers(solutions, query, fed.dict());
        let mut metrics = crate::metrics::QueryMetrics {
            result_rows: solutions.len(),
            ..Default::default()
        };
        let (complete, mut failures) = self.finish(fed, &net, &mut metrics);
        merge_failures(&mut failures, &inherited);
        net.trace.emit(|| TraceEvent::QueryFinished {
            rows: solutions.len(),
            complete,
        });
        Ok(QueryResult {
            solutions,
            metrics,
            complete,
            failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::{FaultProfile, FlakyEndpoint, LocalEndpoint, ManualClock, RequestPolicy};
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;
    use std::time::Duration;

    fn fed() -> (Federation, TripleStore) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        for i in 0..30 {
            let s = Term::iri(format!("http://a/s{i}"));
            let v = Term::iri(format!("http://shared/v{}", i % 10));
            let o = Term::iri(format!("http://b/o{i}"));
            a.insert_terms(&s, &Term::iri("http://x/p"), &v);
            oracle.insert_terms(&s, &Term::iri("http://x/p"), &v);
            b.insert_terms(&v, &Term::iri("http://x/q"), &o);
            oracle.insert_terms(&v, &Term::iri("http://x/q"), &o);
            b.insert_terms(&v, &Term::iri("http://x/r"), &Term::int(i));
            oracle.insert_terms(&v, &Term::iri("http://x/r"), &Term::int(i));
        }
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        (fed, oracle)
    }

    #[test]
    fn batch_shares_common_subqueries() {
        let (fed, oracle) = fed();
        let q1 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, report) = engine
            .execute_batch(&fed, &[q1.clone(), q2.clone()])
            .unwrap();
        // Both queries decompose into 2 subqueries; the (?s p ?v) subquery
        // is shared.
        assert_eq!(report.total_subqueries, 4);
        assert!(report.distinct_subqueries < 4, "{report:?}");
        // Results still match the oracle.
        for (r, q) in results.iter().zip([&q1, &q2]) {
            let expected = lusail_store::eval::evaluate(&oracle, q).canonicalize();
            assert_eq!(r.solutions.canonicalize(), expected);
        }
    }

    #[test]
    fn batch_reduces_requests_vs_sequential() {
        let (fed, _) = fed();
        let q1 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            fed.dict(),
        )
        .unwrap();

        // Sequential: two separate engines (cold probe caches each).
        let before = fed.stats_snapshot();
        let e1 = Lusail::default();
        let _ = e1.execute(&fed, &q1);
        let _ = e1.execute(&fed, &q2);
        let sequential = fed.stats_snapshot().since(&before).select_requests;

        let before = fed.stats_snapshot();
        let e2 = Lusail::default();
        let _ = e2.execute_batch(&fed, &[q1, q2]).unwrap();
        let batched = fed.stats_snapshot().since(&before).select_requests;
        assert!(
            batched < sequential,
            "batched {batched} !< sequential {sequential}"
        );
    }

    #[test]
    fn repeating_a_query_shares_all_its_subqueries() {
        let (fed, oracle) = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, report) = engine
            .execute_batch(&fed, &[q.clone(), q.clone(), q.clone()])
            .unwrap();
        // Three copies of a 2-subquery query: only the distinct pair is
        // evaluated (delayed subqueries are per-query and not memoized, so
        // the distinct count stays at most the per-query subquery count).
        assert_eq!(report.total_subqueries, 6);
        assert!(report.distinct_subqueries <= 2, "{report:?}");
        // Repeats hit the memo, and every hit credits the wire requests
        // the first evaluation spent.
        assert!(report.shared_hits >= 1, "{report:?}");
        assert!(report.wire_requests_saved >= 1, "{report:?}");
        let expected = lusail_store::eval::evaluate(&oracle, &q).canonicalize();
        for r in &results {
            assert_eq!(r.solutions.canonicalize(), expected);
        }
    }

    #[test]
    fn batch_results_match_single_query_execution() {
        // Sharing must be invisible in the answers: every query in an
        // overlapping batch returns exactly what a standalone `execute`
        // returns (which the differential suite pins to the oracle).
        let (fed, _) = fed();
        let texts = [
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            "SELECT ?v WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
        ];
        let queries: Vec<Query> = texts
            .iter()
            .map(|t| parse_query(t, fed.dict()).unwrap())
            .collect();
        let batch_engine = Lusail::default();
        let (results, _) = batch_engine.execute_batch(&fed, &queries).unwrap();
        for (r, q) in results.iter().zip(&queries) {
            let solo = Lusail::default().execute(&fed, q).unwrap();
            assert_eq!(
                r.solutions.canonicalize(),
                solo.solutions.canonicalize(),
                "batched answers diverged from standalone execution"
            );
        }
    }

    #[test]
    fn filtered_variant_is_not_served_from_unfiltered_relation() {
        // Two queries over the same patterns where one pushes a FILTER
        // into its subquery: the signatures differ, so the filtered query
        // must not inherit the unfiltered relation (or vice versa).
        let (fed, oracle) = fed();
        let q_all = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            fed.dict(),
        )
        .unwrap();
        let q_filtered = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n . FILTER (?n > 24) }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, _) = engine
            .execute_batch(&fed, &[q_all.clone(), q_filtered.clone()])
            .unwrap();
        let expect_all = lusail_store::eval::evaluate(&oracle, &q_all).canonicalize();
        let expect_filtered = lusail_store::eval::evaluate(&oracle, &q_filtered).canonicalize();
        assert_eq!(results[0].solutions.canonicalize(), expect_all);
        assert_eq!(results[1].solutions.canonicalize(), expect_filtered);
        assert!(results[1].solutions.len() < results[0].solutions.len());
    }

    #[test]
    fn batch_falls_back_for_nested_queries() {
        let (fed, oracle) = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . OPTIONAL { ?v <http://x/r> ?n } }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, _) = engine
            .execute_batch(&fed, std::slice::from_ref(&q))
            .unwrap();
        let expected = lusail_store::eval::evaluate(&oracle, &q).canonicalize();
        assert_eq!(results[0].solutions.canonicalize(), expected);
    }

    /// A federation whose B endpoint (predicates q/r) is wrapped in a
    /// fault profile; A (predicate p) stays healthy.
    fn fed_with_faulty_b(profile: FaultProfile) -> Federation {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        for i in 0..30 {
            let s = Term::iri(format!("http://a/s{i}"));
            let v = Term::iri(format!("http://shared/v{}", i % 10));
            let o = Term::iri(format!("http://b/o{i}"));
            a.insert_terms(&s, &Term::iri("http://x/p"), &v);
            b.insert_terms(&v, &Term::iri("http://x/q"), &o);
        }
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(FlakyEndpoint::new(
            Arc::new(LocalEndpoint::new("B", b)),
            profile,
        )));
        fed
    }

    #[test]
    fn failed_shared_subquery_degrades_every_dependent_item() {
        // The q-subquery lives at the dead endpoint B: whichever item
        // evaluates (and memoizes) it records the hole, and every item
        // that reuses the relation must inherit both the incompleteness
        // and the failure attribution for B.
        let fed = fed_with_faulty_b(FaultProfile::dead());
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let items: Vec<BatchItem> = (0..3)
            .map(|_| BatchItem {
                query: q.clone(),
                opts: ExecOptions::default(),
            })
            .collect();
        let (outcomes, report) = engine.execute_batch_with(&fed, &items);
        assert!(report.shared_hits >= 1, "{report:?}");
        let mut first_rows = None;
        for outcome in &outcomes {
            let BatchOutcome::Finished(result) = outcome else {
                panic!("item did not finish: {outcome:?}");
            };
            assert!(!result.complete, "a shared hole must degrade every item");
            assert!(
                result.failures.iter().any(|f| f.name == "B"),
                "dependent item lost B's attribution: {:?}",
                result.failures
            );
            let rows = result.solutions.canonicalize();
            if let Some(first) = &first_rows {
                assert_eq!(&rows, first, "shared reuse changed the answer");
            } else {
                first_rows = Some(rows);
            }
        }
    }

    #[test]
    fn deadline_burned_by_earlier_items_expires_later_items() {
        // Item 0 burns virtual time in retry backoffs against an
        // always-interrupting endpoint; item 1's deadline is charged from
        // the batch start, so it must expire without touching the wire.
        let clock = ManualClock::new();
        let fed = fed_with_faulty_b(FaultProfile::transient(7, 1.0));
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default()
            .with_policy(RequestPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(100),
                ..RequestPolicy::default()
            })
            .with_clock(clock.clone());
        let items = vec![
            BatchItem {
                query: q.clone(),
                opts: ExecOptions::default(),
            },
            BatchItem {
                query: q.clone(),
                opts: ExecOptions::default().with_deadline(Duration::from_millis(50)),
            },
        ];
        let (outcomes, _) = engine.execute_batch_with(&fed, &items);
        assert!(
            matches!(outcomes[0], BatchOutcome::Finished(_)),
            "{:?}",
            outcomes[0]
        );
        assert!(
            clock.elapsed() >= Duration::from_millis(100),
            "retry backoffs should have advanced the virtual clock"
        );
        assert!(
            matches!(outcomes[1], BatchOutcome::DeadlineExpired),
            "a deadline burned by a neighbour must expire, got {:?}",
            outcomes[1]
        );
    }
}
