//! Multi-query optimization (§V: "Lusail also supports multi-query
//! optimization", detailed in the paper's extended version).
//!
//! A batch of queries often shares subqueries after decomposition — in
//! the paper's motivating scenario many users ask overlapping analytical
//! queries over the same decentralized graphs. [`Lusail::execute_batch`]
//! decomposes every query first, identifies *identical* subqueries
//! (same normalized patterns, filters, and sources), evaluates each
//! distinct non-delayed subquery **once**, and reuses its relation across
//! all queries in the batch. Delayed subqueries are evaluated per query
//! (their bound `VALUES` blocks depend on the query's other subqueries).

use crate::cache::pattern_key;
use crate::cost::SubqueryCosts;
use crate::engine::{Lusail, QueryResult};
use crate::exec::evaluate_subqueries;
use crate::subquery::Subquery;
use lusail_endpoint::{Federation, FederationError};
use lusail_sparql::ast::Query;
use lusail_sparql::SolutionSet;
use std::collections::HashMap;

/// A normalized signature for subquery sharing: pattern keys (variables
/// canonicalized), sources, pushed filters, and projection.
fn subquery_signature(sq: &Subquery) -> String {
    let mut keys: Vec<String> = sq
        .triples
        .iter()
        .map(|tp| format!("{:?}", pattern_key(tp)))
        .collect();
    keys.sort();
    format!("{:?}|{:?}|{:?}|{:?}", keys, sq.sources, sq.filters, {
        let mut p = sq.projection.clone();
        p.sort();
        p
    })
}

/// Statistics from a batch execution.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Subqueries across all queries, after decomposition.
    pub total_subqueries: usize,
    /// Distinct subqueries actually evaluated.
    pub distinct_subqueries: usize,
}

impl Lusail {
    /// Executes a batch of queries, sharing identical subquery results.
    ///
    /// Returns one [`QueryResult`] per query (same order) plus a
    /// [`BatchReport`] describing how much work was shared. Queries with
    /// nested clauses (OPTIONAL/UNION/NOT EXISTS) fall back to the
    /// single-query path for those clauses but still share their
    /// top-level subqueries.
    pub fn execute_batch(
        &self,
        fed: &Federation,
        queries: &[Query],
    ) -> Result<(Vec<QueryResult>, BatchReport), FederationError> {
        if fed.is_empty() {
            return Err(FederationError::EmptyFederation);
        }
        // The shared-relation memo for this batch. Batch execution is
        // sequential (each query may reuse the previous ones' relations),
        // so a plain map suffices.
        let mut shared: HashMap<String, SolutionSet> = HashMap::new();
        let mut report = BatchReport::default();
        let mut results = Vec::with_capacity(queries.len());
        for q in queries {
            let result = self.execute_with_shared(fed, q, &mut shared, &mut report)?;
            results.push(result);
        }
        report.distinct_subqueries = shared.len();
        Ok((results, report))
    }

    /// Single-query execution that consults/extends the batch memo for
    /// non-delayed subqueries. Implementation: run the normal pipeline but
    /// intercept the subquery-evaluation stage.
    fn execute_with_shared(
        &self,
        fed: &Federation,
        query: &Query,
        shared: &mut HashMap<String, SolutionSet>,
        report: &mut BatchReport,
    ) -> Result<QueryResult, FederationError> {
        // Reuse the standard compile-time pipeline via explain-like calls,
        // then execute with memoized relations. To keep one code path, we
        // reuse `Lusail::execute` when the query has nested clauses (the
        // memo still helps those through the probe caches).
        let has_nested = !query.pattern.optionals.is_empty()
            || !query.pattern.unions.is_empty()
            || !query.pattern.not_exists.is_empty();
        // Aggregates and non-SELECT forms take the full single-query path
        // (mediator-side grouping, CountStar normalization).
        if has_nested
            || !query.aggregates.is_empty()
            || !matches!(query.form, lusail_sparql::ast::QueryForm::Select)
        {
            return self.execute(fed, query);
        }

        let net = self.fresh_net();
        let plan = self.plan_conjunctive(fed, query, &net);
        let (subqueries, costs, sources) = match plan {
            Some(parts) => parts,
            None => return self.execute(fed, query), // disjoint or empty
        };
        let _ = sources;
        report.total_subqueries += subqueries.len();

        // Evaluate with sharing: replace each non-delayed subquery whose
        // signature is memoized by a zero-cost cached relation. We model
        // this by executing only the *missing* subqueries through the
        // normal path, then joining cached relations in.
        let exec_cfg = crate::exec::ExecConfig {
            block_size: self.config().block_size,
            parallel_join_threshold: self.config().parallel_join_threshold,
            adaptive_values: self.config().adaptive_values,
            ..crate::exec::ExecConfig::default()
        };

        // One pass: cached relations come from the memo; missing
        // non-delayed subqueries are evaluated alone (concurrently per
        // endpoint) and memoized; delayed subqueries collect for the
        // standard two-phase treatment against the joined bindings.
        let mut relations: Vec<SolutionSet> = Vec::new();
        let mut delayed_subqueries: Vec<Subquery> = Vec::new();
        let mut delayed_cards: Vec<u64> = Vec::new();
        for (i, sq) in subqueries.iter().enumerate() {
            if costs.delayed[i] {
                delayed_subqueries.push(sq.clone());
                delayed_cards.push(costs.cardinality[i]);
                continue;
            }
            let sig = subquery_signature(sq);
            if let Some(rel) = shared.get(&sig) {
                relations.push(rel.clone());
                continue;
            }
            let loss_before = net.degradation.data_loss();
            let (rel, _) = evaluate_subqueries(
                fed,
                &net,
                std::slice::from_ref(sq),
                &SubqueryCosts {
                    cardinality: vec![costs.cardinality[i]],
                    delayed: vec![false],
                },
                &exec_cfg,
            );
            // Never memoize a relation that lost data to endpoint
            // failures — later queries must not inherit the hole.
            if net.degradation.data_loss() == loss_before {
                shared.insert(sig, rel.clone());
            }
            relations.push(rel);
        }

        // Join the shared/non-delayed relations, then run the delayed ones
        // through the standard machinery with the joined bindings
        // available: reuse evaluate_subqueries by handing it the delayed
        // subqueries plus one pseudo-relation seeded via VALUES. Simpler
        // and equivalent: join delayed results with the accumulated
        // relation using the single-query executor on just those
        // subqueries, then merge.
        let mut solutions = relations
            .into_iter()
            .reduce(|a, b| a.hash_join(&b))
            .unwrap_or(SolutionSet {
                vars: Vec::new(),
                rows: vec![Vec::new()],
            });
        if !delayed_subqueries.is_empty() {
            let costs = SubqueryCosts {
                cardinality: delayed_cards,
                delayed: vec![true; delayed_subqueries.len()],
            };
            // Delayed-only evaluation promotes the most selective one, so
            // bindings flow as usual; join its output in.
            let (delayed_rel, _) =
                evaluate_subqueries(fed, &net, &delayed_subqueries, &costs, &exec_cfg);
            solutions = solutions.hash_join(&delayed_rel);
        }

        // Query-level clauses (filters already pushed in plan; VALUES +
        // the standard modifier tail).
        if let Some(v) = &query.pattern.values {
            let values_rel = SolutionSet {
                vars: v.vars.clone(),
                rows: v.rows.clone(),
            };
            solutions = solutions.hash_join(&values_rel);
        }
        let solutions = lusail_store::eval::apply_modifiers(solutions, query, fed.dict());
        let metrics = crate::metrics::QueryMetrics {
            result_rows: solutions.len(),
            ..Default::default()
        };
        Ok(QueryResult {
            solutions,
            metrics,
            complete: !net.degradation.data_loss(),
            failures: net.client.report(fed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn fed() -> (Federation, TripleStore) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        for i in 0..30 {
            let s = Term::iri(format!("http://a/s{i}"));
            let v = Term::iri(format!("http://shared/v{}", i % 10));
            let o = Term::iri(format!("http://b/o{i}"));
            a.insert_terms(&s, &Term::iri("http://x/p"), &v);
            oracle.insert_terms(&s, &Term::iri("http://x/p"), &v);
            b.insert_terms(&v, &Term::iri("http://x/q"), &o);
            oracle.insert_terms(&v, &Term::iri("http://x/q"), &o);
            b.insert_terms(&v, &Term::iri("http://x/r"), &Term::int(i));
            oracle.insert_terms(&v, &Term::iri("http://x/r"), &Term::int(i));
        }
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        (fed, oracle)
    }

    #[test]
    fn batch_shares_common_subqueries() {
        let (fed, oracle) = fed();
        let q1 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, report) = engine
            .execute_batch(&fed, &[q1.clone(), q2.clone()])
            .unwrap();
        // Both queries decompose into 2 subqueries; the (?s p ?v) subquery
        // is shared.
        assert_eq!(report.total_subqueries, 4);
        assert!(report.distinct_subqueries < 4, "{report:?}");
        // Results still match the oracle.
        for (r, q) in results.iter().zip([&q1, &q2]) {
            let expected = lusail_store::eval::evaluate(&oracle, q).canonicalize();
            assert_eq!(r.solutions.canonicalize(), expected);
        }
    }

    #[test]
    fn batch_reduces_requests_vs_sequential() {
        let (fed, _) = fed();
        let q1 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let q2 = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            fed.dict(),
        )
        .unwrap();

        // Sequential: two separate engines (cold probe caches each).
        let before = fed.stats_snapshot();
        let e1 = Lusail::default();
        let _ = e1.execute(&fed, &q1);
        let _ = e1.execute(&fed, &q2);
        let sequential = fed.stats_snapshot().since(&before).select_requests;

        let before = fed.stats_snapshot();
        let e2 = Lusail::default();
        let _ = e2.execute_batch(&fed, &[q1, q2]).unwrap();
        let batched = fed.stats_snapshot().since(&before).select_requests;
        assert!(
            batched < sequential,
            "batched {batched} !< sequential {sequential}"
        );
    }

    #[test]
    fn repeating_a_query_shares_all_its_subqueries() {
        let (fed, oracle) = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, report) = engine
            .execute_batch(&fed, &[q.clone(), q.clone(), q.clone()])
            .unwrap();
        // Three copies of a 2-subquery query: only the distinct pair is
        // evaluated (delayed subqueries are per-query and not memoized, so
        // the distinct count stays at most the per-query subquery count).
        assert_eq!(report.total_subqueries, 6);
        assert!(report.distinct_subqueries <= 2, "{report:?}");
        let expected = lusail_store::eval::evaluate(&oracle, &q).canonicalize();
        for r in &results {
            assert_eq!(r.solutions.canonicalize(), expected);
        }
    }

    #[test]
    fn batch_results_match_single_query_execution() {
        // Sharing must be invisible in the answers: every query in an
        // overlapping batch returns exactly what a standalone `execute`
        // returns (which the differential suite pins to the oracle).
        let (fed, _) = fed();
        let texts = [
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            "SELECT ?v WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
        ];
        let queries: Vec<Query> = texts
            .iter()
            .map(|t| parse_query(t, fed.dict()).unwrap())
            .collect();
        let batch_engine = Lusail::default();
        let (results, _) = batch_engine.execute_batch(&fed, &queries).unwrap();
        for (r, q) in results.iter().zip(&queries) {
            let solo = Lusail::default().execute(&fed, q).unwrap();
            assert_eq!(
                r.solutions.canonicalize(),
                solo.solutions.canonicalize(),
                "batched answers diverged from standalone execution"
            );
        }
    }

    #[test]
    fn filtered_variant_is_not_served_from_unfiltered_relation() {
        // Two queries over the same patterns where one pushes a FILTER
        // into its subquery: the signatures differ, so the filtered query
        // must not inherit the unfiltered relation (or vice versa).
        let (fed, oracle) = fed();
        let q_all = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n }",
            fed.dict(),
        )
        .unwrap();
        let q_filtered = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/r> ?n . FILTER (?n > 24) }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, _) = engine
            .execute_batch(&fed, &[q_all.clone(), q_filtered.clone()])
            .unwrap();
        let expect_all = lusail_store::eval::evaluate(&oracle, &q_all).canonicalize();
        let expect_filtered = lusail_store::eval::evaluate(&oracle, &q_filtered).canonicalize();
        assert_eq!(results[0].solutions.canonicalize(), expect_all);
        assert_eq!(results[1].solutions.canonicalize(), expect_filtered);
        assert!(results[1].solutions.len() < results[0].solutions.len());
    }

    #[test]
    fn batch_falls_back_for_nested_queries() {
        let (fed, oracle) = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . OPTIONAL { ?v <http://x/r> ?n } }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let (results, _) = engine
            .execute_batch(&fed, std::slice::from_ref(&q))
            .unwrap();
        let expected = lusail_store::eval::evaluate(&oracle, &q).canonicalize();
        assert_eq!(results[0].solutions.canonicalize(), expected);
    }
}
