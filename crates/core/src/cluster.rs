//! Multi-machine execution (§V: "Lusail also supports … multi-machine
//! execution", detailed in the paper's extended version).
//!
//! A [`LusailCluster`] models several mediator machines, each running its
//! own [`Lusail`] instance (own probe caches, own request handler worker
//! threads), sharing nothing but the remote endpoints. A query *workload*
//! is distributed across the machines round-robin and executed in
//! parallel — the extended version's throughput experiment: adding
//! mediator machines scales queries/second because the mediator's local
//! work (joins, planning) parallelizes while the endpoints serve
//! independent connections.

use crate::engine::{Lusail, LusailConfig, QueryResult};
use lusail_endpoint::{Federation, FederationError};
use lusail_sparql::Query;

/// A set of Lusail mediator machines executing workloads in parallel.
pub struct LusailCluster {
    machines: Vec<Lusail>,
}

impl LusailCluster {
    /// Creates a cluster of `machines` mediators with identical
    /// configuration. Each machine has independent caches.
    pub fn new(machines: usize, config: LusailConfig) -> Self {
        assert!(machines >= 1, "a cluster needs at least one machine");
        LusailCluster {
            machines: (0..machines).map(|_| Lusail::new(config.clone())).collect(),
        }
    }

    /// Number of mediator machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True if the cluster has no machines (never: construction asserts).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Executes a workload, assigning query `i` to machine `i % M`, all
    /// machines running concurrently. Results come back in input order.
    pub fn execute_workload(
        &self,
        fed: &Federation,
        queries: &[Query],
    ) -> Result<Vec<QueryResult>, FederationError> {
        if fed.is_empty() {
            return Err(FederationError::EmptyFederation);
        }
        let m = self.machines.len();
        if m == 1 || queries.len() <= 1 {
            return queries
                .iter()
                .map(|q| self.machines[0].execute(fed, q))
                .collect();
        }
        let mut slots: Vec<Option<QueryResult>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(m);
            for (mi, machine) in self.machines.iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let mut out: Vec<(usize, Result<QueryResult, FederationError>)> = Vec::new();
                    for (qi, q) in queries.iter().enumerate() {
                        if qi % m == mi {
                            out.push((qi, machine.execute(fed, q)));
                        }
                    }
                    out
                }));
            }
            for h in handles {
                for (qi, r) in h.join().expect("mediator machine panicked") {
                    // A non-empty federation was checked above, so execute
                    // cannot fail; unwrap keeps the slot type simple.
                    slots[qi] = Some(r.expect("execute on non-empty federation"));
                }
            }
        });
        Ok(slots
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect())
    }

    /// Drops every machine's caches (between benchmark repetitions).
    pub fn clear_caches(&self) {
        for m in &self.machines {
            m.clear_caches();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn fed() -> (Federation, Vec<Query>) {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        for i in 0..40 {
            let s = Term::iri(format!("http://a/s{i}"));
            let v = Term::iri(format!("http://shared/v{}", i % 8));
            a.insert_terms(&s, &Term::iri("http://x/p"), &v);
            b.insert_terms(&v, &Term::iri("http://x/q"), &Term::int(i));
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        let queries: Vec<Query> = (0..8)
            .map(|i| {
                parse_query(
                    &format!(
                        "SELECT * WHERE {{ ?s <http://x/p> ?v . ?v <http://x/q> ?n . \
                         FILTER (?n > {i}) }}"
                    ),
                    &dict,
                )
                .unwrap()
            })
            .collect();
        (fed, queries)
    }

    #[test]
    fn cluster_matches_single_machine() {
        let (fed, queries) = fed();
        let single = LusailCluster::new(1, LusailConfig::default());
        let quad = LusailCluster::new(4, LusailConfig::default());
        let a = single.execute_workload(&fed, &queries).unwrap();
        let b = quad.execute_workload(&fed, &queries).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.solutions.canonicalize(), y.solutions.canonicalize());
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let (fed, queries) = fed();
        let cluster = LusailCluster::new(3, LusailConfig::default());
        let results = cluster.execute_workload(&fed, &queries).unwrap();
        // FILTER (?n > i) — result sizes strictly decrease with i.
        let sizes: Vec<usize> = results.iter().map(|r| r.solutions.len()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "results out of order: {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let _ = LusailCluster::new(0, LusailConfig::default());
    }
}
