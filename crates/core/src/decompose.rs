//! Locality-aware query decomposition (Algorithm 2 in the paper).
//!
//! Given the GJV analysis, the conjunctive triple patterns are grouped
//! into subqueries such that within one subquery:
//!
//! * every pattern has exactly the same relevant sources,
//! * no two patterns form a conflicting pair (one that made a variable
//!   global), and
//! * the patterns are connected through shared variables (so a subquery
//!   never forces an endpoint into a local cross product).
//!
//! The grouping is a greedy pass followed by the paper's `mergeSubQ`
//! fixpoint: two subqueries merge when they share a variable, have the
//! same sources, and no pattern of one conflicts with a pattern of the
//! other. The paper notes that different traversal orders give different
//! (equally correct) decompositions; SAPE orders whatever comes out.

use crate::gjv::GjvAnalysis;
use crate::source_selection::SourceMap;
use crate::subquery::Subquery;
use lusail_endpoint::{EndpointId, TraceEvent, TraceSink};
use lusail_sparql::ast::TriplePattern;

/// Decomposes `triples` into subqueries. Returns groups of *indices* into
/// `triples` (callers materialize [`Subquery`] values with sources).
pub fn decompose_indices(
    triples: &[TriplePattern],
    sources: &SourceMap,
    analysis: &GjvAnalysis,
) -> Vec<Vec<usize>> {
    let n = triples.len();
    if n == 0 {
        return Vec::new();
    }

    let shares_var =
        |i: usize, j: usize| -> bool { triples[i].vars().any(|v| triples[j].mentions(v)) };
    let same_sources = |i: usize, j: usize| -> bool {
        sources.sources(&triples[i]) == sources.sources(&triples[j])
    };

    // Greedy assignment in document order.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    'next: for i in 0..n {
        for g in &mut groups {
            let compatible = g
                .iter()
                .all(|&j| same_sources(i, j) && !analysis.conflicting(i, j));
            let connected = g.iter().any(|&j| shares_var(i, j));
            if compatible && connected {
                g.push(i);
                continue 'next;
            }
        }
        groups.push(vec![i]);
    }

    // mergeSubQ: merge pairs until fixpoint.
    loop {
        let mut merged = false;
        'outer: for a in 0..groups.len() {
            for b in a + 1..groups.len() {
                let connected = groups[a]
                    .iter()
                    .any(|&i| groups[b].iter().any(|&j| shares_var(i, j)));
                let compatible = groups[a].iter().all(|&i| {
                    groups[b]
                        .iter()
                        .all(|&j| same_sources(i, j) && !analysis.conflicting(i, j))
                });
                if connected && compatible {
                    let moved = groups.remove(b);
                    groups[a].extend(moved);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            break;
        }
    }
    groups
}

/// Materializes subqueries from index groups: each subquery's sources are
/// the (identical) sources of its member patterns.
pub fn decompose(
    triples: &[TriplePattern],
    sources: &SourceMap,
    analysis: &GjvAnalysis,
) -> Vec<Subquery> {
    decompose_indices(triples, sources, analysis)
        .into_iter()
        .map(|group| {
            let tps: Vec<TriplePattern> = group.iter().map(|&i| triples[i].clone()).collect();
            let srcs: Vec<EndpointId> = sources.sources(&tps[0]).to_vec();
            Subquery::new(tps, srcs)
        })
        .collect()
}

/// [`decompose`] with one [`TraceEvent::Decomposed`] recording the shape
/// of the result (subquery count and the GJVs that forced the split).
pub fn decompose_traced(
    triples: &[TriplePattern],
    sources: &SourceMap,
    analysis: &GjvAnalysis,
    trace: &TraceSink,
) -> Vec<Subquery> {
    let subqueries = decompose(triples, sources, analysis);
    trace.emit(|| TraceEvent::Decomposed {
        subqueries: subqueries.len(),
        gjvs: analysis.gjvs.len(),
    });
    subqueries
}

/// True when the whole conjunctive block can run as **one** subquery at
/// every relevant endpoint (the paper's "disjoint query" case, Algorithm 3
/// line 2): no conflicts, identical sources throughout, and the patterns
/// connected through shared variables. A disconnected BGP is a Cartesian
/// product; concatenating per-endpoint local products would drop the
/// cross-endpoint combinations, so disconnected blocks take the fast path
/// only when a single endpoint holds everything.
pub fn is_disjoint(triples: &[TriplePattern], sources: &SourceMap, analysis: &GjvAnalysis) -> bool {
    if triples.is_empty() {
        return true;
    }
    if !analysis.conflicts.is_empty() {
        return false;
    }
    let first = sources.sources(&triples[0]);
    if !triples.iter().all(|tp| sources.sources(tp) == first) {
        return false;
    }
    first.len() == 1 || is_connected(triples)
}

/// True when the join graph (patterns as nodes, shared variables as edges)
/// has a single connected component.
fn is_connected(triples: &[TriplePattern]) -> bool {
    let n = triples.len();
    if n <= 1 {
        return true;
    }
    let shares_var =
        |i: usize, j: usize| -> bool { triples[i].vars().any(|v| triples[j].mentions(v)) };
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for (j, seen_j) in seen.iter_mut().enumerate() {
            if !*seen_j && shares_var(i, j) {
                *seen_j = true;
                stack.push(j);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::{FxHashSet, TermId};
    use lusail_sparql::ast::PatternTerm;

    fn v(name: &str) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    fn c(id: u32) -> PatternTerm {
        PatternTerm::Const(TermId(id))
    }

    /// Source map stub: same sources `[0, 1]` for all patterns unless
    /// overridden.
    fn sources_for(triples: &[TriplePattern], overrides: &[(usize, Vec<usize>)]) -> SourceMap {
        let mut sm = SourceMap::default();
        // SourceMap has no public constructor for tests; emulate through
        // its intended builder path.
        for (i, tp) in triples.iter().enumerate() {
            let src = overrides
                .iter()
                .find(|(j, _)| *j == i)
                .map(|(_, s)| s.clone())
                .unwrap_or_else(|| vec![0, 1]);
            sm.push_entry(tp.clone(), src);
        }
        sm
    }

    fn analysis(conflicts: &[(usize, usize)]) -> GjvAnalysis {
        let mut set = FxHashSet::default();
        for &(i, j) in conflicts {
            set.insert(if i < j { (i, j) } else { (j, i) });
        }
        GjvAnalysis {
            gjvs: Vec::new(),
            conflicts: set,
            check_queries: 0,
        }
    }

    /// Qa's shape: S-advisor-P, S-takesCourse-C, P-phd-U, U-address-A,
    /// with (2,3) conflicting on ?U (paper Fig. 7).
    fn qa_triples() -> Vec<TriplePattern> {
        vec![
            TriplePattern::new(v("S"), c(10), v("P")),
            TriplePattern::new(v("S"), c(11), v("C")),
            TriplePattern::new(v("P"), c(12), v("U")),
            TriplePattern::new(v("U"), c(13), v("A")),
        ]
    }

    #[test]
    fn conflict_splits_exactly_there() {
        let triples = qa_triples();
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[(2, 3)]);
        let groups = decompose_indices(&triples, &sm, &a);
        assert_eq!(groups.len(), 2);
        // (0,1,2) merge; 3 is alone — one of the paper's two valid
        // decompositions of Qa.
        let mut sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, [1, 3]);
        assert!(!is_disjoint(&triples, &sm, &a));
    }

    #[test]
    fn two_conflicts_paper_fig7() {
        // GJVs ?U and ?P: conflicts (0,2) on P and (2,3) on U.
        let triples = qa_triples();
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[(0, 2), (2, 3)]);
        let groups = decompose_indices(&triples, &sm, &a);
        // {advisor, takesCourse}, {phd}, {address} — paper Fig. 7 (left).
        assert_eq!(groups.len(), 3);
        let with_0 = groups.iter().find(|g| g.contains(&0)).unwrap();
        assert!(with_0.contains(&1));
        assert!(!with_0.contains(&2));
    }

    #[test]
    fn no_conflicts_same_sources_is_disjoint_single_group() {
        let triples = qa_triples();
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[]);
        let groups = decompose_indices(&triples, &sm, &a);
        assert_eq!(groups.len(), 1);
        assert!(is_disjoint(&triples, &sm, &a));
    }

    #[test]
    fn different_sources_split_even_without_conflicts() {
        let triples = vec![
            TriplePattern::new(v("a"), c(1), v("b")),
            TriplePattern::new(v("b"), c(2), v("d")),
        ];
        let sm = sources_for(&triples, &[(1, vec![0])]);
        // Differing sources on a shared variable would normally have been a
        // conflict already, but decomposition must hold on its own.
        let a = analysis(&[]);
        let groups = decompose_indices(&triples, &sm, &a);
        assert_eq!(groups.len(), 2);
        assert!(!is_disjoint(&triples, &sm, &a));
    }

    #[test]
    fn disconnected_patterns_stay_separate() {
        let triples = vec![
            TriplePattern::new(v("a"), c(1), v("b")),
            TriplePattern::new(v("x"), c(2), v("y")),
        ];
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[]);
        let groups = decompose_indices(&triples, &sm, &a);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn disconnected_patterns_are_not_disjoint_across_endpoints() {
        // Found by the differential fuzzer (seed 0xa60589ebc76d7f10): a
        // Cartesian product whose factors both match at two endpoints.
        // Concatenating local products yields 2 rows where the oracle has
        // 4 — the block must go through decomposition + global join.
        let triples = vec![
            TriplePattern::new(v("a"), c(1), v("b")),
            TriplePattern::new(v("x"), c(2), v("x")),
        ];
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[]);
        assert!(!is_disjoint(&triples, &sm, &a));
        // At a single endpoint the local product *is* the global product.
        let sm1 = sources_for(&triples, &[(0, vec![0]), (1, vec![0])]);
        assert!(is_disjoint(&triples, &sm1, &a));
    }

    #[test]
    fn merge_phase_joins_transitively_compatible_groups() {
        // 0 and 2 don't share a var, but both share with 1; greedy starts
        // {0,1} and then 2 joins via 1's variable.
        let triples = vec![
            TriplePattern::new(v("a"), c(1), v("b")),
            TriplePattern::new(v("b"), c(2), v("d")),
            TriplePattern::new(v("d"), c(3), v("e")),
        ];
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[]);
        let groups = decompose_indices(&triples, &sm, &a);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn transitive_conflict_via_middleman_splits() {
        // 0–1 compatible, 1–2 compatible, but 0–2 conflict: the group with
        // 0 and 1 cannot absorb 2.
        let triples = vec![
            TriplePattern::new(v("a"), c(1), v("b")),
            TriplePattern::new(v("b"), c(2), v("cc")),
            TriplePattern::new(v("b"), c(3), v("a")),
        ];
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[(0, 2)]);
        let groups = decompose_indices(&triples, &sm, &a);
        assert_eq!(groups.len(), 2);
        let g0 = groups.iter().find(|g| g.contains(&0)).unwrap();
        assert!(!g0.contains(&2));
    }

    #[test]
    fn materialized_subqueries_carry_sources() {
        let triples = qa_triples();
        let sm = sources_for(&triples, &[]);
        let a = analysis(&[(2, 3)]);
        let sqs = decompose(&triples, &sm, &a);
        assert_eq!(sqs.len(), 2);
        for sq in &sqs {
            assert_eq!(sq.sources, vec![0, 1]);
        }
    }

    #[test]
    fn traced_decomposition_records_its_shape() {
        let triples = qa_triples();
        let sm = sources_for(&triples, &[]);
        let mut a = analysis(&[(2, 3)]);
        a.gjvs.push("U".into());
        let sink = TraceSink::enabled();
        let sqs = decompose_traced(&triples, &sm, &a, &sink);
        assert_eq!(sqs.len(), 2);
        assert_eq!(
            sink.events(),
            vec![TraceEvent::Decomposed {
                subqueries: 2,
                gjvs: 1,
            }]
        );
    }
}
