//! Query-trace aggregation: the finalized view of a [`TraceSink`]'s
//! event log, with the summaries the EXPLAIN ANALYZE renderer and the
//! trace-invariant checks in `lusail-testkit` are built on.
//!
//! The event types themselves live in `lusail-endpoint` (the
//! [`ResilientClient`](lusail_endpoint::ResilientClient) emits
//! [`TraceEvent::Request`] directly); this module re-exports them and
//! adds [`QueryTrace`].

pub use lusail_endpoint::{RequestKind, TraceEvent, TraceSink};

/// Aggregate of the [`TraceEvent::Request`] events of one kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestSummary {
    /// Logical requests (one event each).
    pub requests: u64,
    /// Wire attempts across those requests (retries count per attempt;
    /// circuit-broken requests contribute zero).
    pub attempts: u64,
    /// Requests that ultimately failed.
    pub failures: u64,
}

/// A finalized query trace: the events a [`TraceSink`] collected during
/// one engine run, snapshotted for inspection.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// Snapshots the sink's current event log.
    pub fn from_sink(sink: &TraceSink) -> QueryTrace {
        QueryTrace {
            events: sink.events(),
        }
    }

    /// Aggregates the request events of one kind.
    pub fn requests(&self, kind: RequestKind) -> RequestSummary {
        let mut summary = RequestSummary::default();
        for ev in &self.events {
            if let TraceEvent::Request {
                kind: k,
                attempts,
                ok,
                ..
            } = ev
            {
                if *k == kind {
                    summary.requests += 1;
                    summary.attempts += attempts;
                    summary.failures += u64::from(!ok);
                }
            }
        }
        summary
    }

    /// Sum of wire attempts over every request kind whose wire form is a
    /// SELECT (data selects *and* LADE check queries) — the number that
    /// must equal the federation's `select_requests` counter.
    pub fn select_wire_attempts(&self) -> u64 {
        self.requests(RequestKind::Select).attempts + self.requests(RequestKind::Check).attempts
    }

    /// Indices of subqueries recorded as delayed *without* a delay
    /// reason — always empty for a well-formed trace.
    pub fn delayed_without_reason(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::SubqueryPlanned {
                    index,
                    delayed: true,
                    delay_reason: None,
                    ..
                } => Some(*index),
                _ => None,
            })
            .collect()
    }

    /// Position of the [`TraceEvent::QueryFinished`] event, if any.
    pub fn finish_index(&self) -> Option<usize> {
        self.events
            .iter()
            .position(|ev| matches!(ev, TraceEvent::QueryFinished { .. }))
    }

    /// Number of events recorded *after* the query-finished event —
    /// nonzero only for a malformed trace.
    pub fn events_after_finish(&self) -> usize {
        match self.finish_index() {
            Some(i) => self.events.len() - i - 1,
            None => 0,
        }
    }

    /// All recorded join steps, in execution order.
    pub fn join_steps(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::JoinStep { .. }))
            .collect()
    }

    /// All recorded failover hops, in emission order.
    pub fn failovers(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::FailedOver { .. }))
            .collect()
    }

    /// All recorded hedged requests, in emission order.
    pub fn hedges(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::Hedged { .. }))
            .collect()
    }

    /// All recorded circuit-health transitions, in emission order.
    pub fn health_transitions(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::HealthTransition { .. }))
            .collect()
    }

    /// True when the trace records any resilience activity (failover,
    /// hedging, or a circuit transition) worth rendering.
    pub fn has_resilience_events(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev,
                TraceEvent::FailedOver { .. }
                    | TraceEvent::Hedged { .. }
                    | TraceEvent::HealthTransition { .. }
            )
        })
    }

    /// Number of probes of one kind answered locally from offline
    /// statistics (each elided exactly one wire request of that kind).
    pub fn stats_answered(&self, kind: RequestKind) -> u64 {
        self.events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::StatsAnswered { kind: k, .. } if *k == kind))
            .count() as u64
    }

    /// The statistics the engine found loaded at query start:
    /// `(endpoints with stats, total characteristic sets)`. `None` when
    /// the run had no statistics attached.
    pub fn stats_loaded(&self) -> Option<(usize, usize)> {
        self.events.iter().find_map(|ev| match ev {
            TraceEvent::StatsLoaded { endpoints, sets } => Some((*endpoints, *sets)),
            _ => None,
        })
    }

    /// True when the trace records any statistics activity worth
    /// rendering.
    pub fn has_stats_events(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev,
                TraceEvent::StatsLoaded { .. } | TraceEvent::StatsAnswered { .. }
            )
        })
    }

    /// Total rows driven through hash-table probes across all join steps.
    /// Each hash join builds on its smaller input and probes with the
    /// larger one, so the probe side of a step is `max(left, right)` —
    /// a deterministic work counter for the bench harness.
    pub fn join_probe_rows(&self) -> u64 {
        self.events
            .iter()
            .map(|ev| match ev {
                TraceEvent::JoinStep {
                    left_rows,
                    right_rows,
                    ..
                } => (*left_rows).max(*right_rows) as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total VALUES blocks and bindings shipped for delayed subqueries.
    pub fn values_batch_totals(&self) -> (usize, usize) {
        let mut blocks = 0;
        let mut bindings = 0;
        for ev in &self.events {
            if let TraceEvent::ValuesBatch {
                bindings: b_count, ..
            } = ev
            {
                blocks += 1;
                bindings += b_count;
            }
        }
        (blocks, bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(kind: RequestKind, attempts: u64, ok: bool) -> TraceEvent {
        TraceEvent::Request {
            endpoint: 0,
            kind,
            attempts,
            ok,
            error: if ok { None } else { Some("x".into()) },
        }
    }

    #[test]
    fn request_summary_sums_attempts_and_failures() {
        let trace = QueryTrace {
            events: vec![
                request(RequestKind::Ask, 1, true),
                request(RequestKind::Ask, 3, false),
                request(RequestKind::Select, 2, true),
                request(RequestKind::Check, 1, true),
            ],
        };
        assert_eq!(
            trace.requests(RequestKind::Ask),
            RequestSummary {
                requests: 2,
                attempts: 4,
                failures: 1,
            }
        );
        assert_eq!(trace.select_wire_attempts(), 3);
        assert_eq!(
            trace.requests(RequestKind::Count),
            RequestSummary::default()
        );
    }

    #[test]
    fn finish_position_and_trailing_events() {
        let finished = TraceEvent::QueryFinished {
            rows: 1,
            complete: true,
        };
        let trace = QueryTrace {
            events: vec![
                request(RequestKind::Select, 1, true),
                finished.clone(),
                request(RequestKind::Select, 1, true),
            ],
        };
        assert_eq!(trace.finish_index(), Some(1));
        assert_eq!(trace.events_after_finish(), 1);
        let ok = QueryTrace {
            events: vec![request(RequestKind::Select, 1, true), finished],
        };
        assert_eq!(ok.events_after_finish(), 0);
        assert_eq!(QueryTrace::default().finish_index(), None);
    }

    #[test]
    fn delayed_without_reason_flags_only_malformed_entries() {
        let planned = |index, delayed, reason: Option<&str>| TraceEvent::SubqueryPlanned {
            index,
            patterns: Vec::new(),
            sources: 1,
            cardinality: 10,
            fanout: 1,
            delayed,
            delay_reason: reason.map(str::to_string),
        };
        let trace = QueryTrace {
            events: vec![
                planned(0, false, None),
                planned(1, true, Some("cardinality 100 > threshold 10")),
                planned(2, true, None),
            ],
        };
        assert_eq!(trace.delayed_without_reason(), vec![2]);
    }

    #[test]
    fn join_probe_rows_sums_the_larger_side_per_step() {
        let step = |l: usize, r: usize| TraceEvent::JoinStep {
            left_rows: l,
            right_rows: r,
            output_rows: l.min(r),
            cost: 1.0,
        };
        let trace = QueryTrace {
            events: vec![
                step(10, 3),
                step(4, 40),
                request(RequestKind::Select, 1, true),
            ],
        };
        assert_eq!(trace.join_probe_rows(), 50);
        assert_eq!(QueryTrace::default().join_probe_rows(), 0);
    }

    #[test]
    fn stats_events_are_aggregated() {
        let plain = QueryTrace {
            events: vec![request(RequestKind::Select, 1, true)],
        };
        assert!(!plain.has_stats_events());
        assert_eq!(plain.stats_loaded(), None);
        assert_eq!(plain.stats_answered(RequestKind::Ask), 0);
        let trace = QueryTrace {
            events: vec![
                TraceEvent::StatsLoaded {
                    endpoints: 2,
                    sets: 5,
                },
                TraceEvent::StatsAnswered {
                    endpoint: 0,
                    kind: RequestKind::Ask,
                },
                TraceEvent::StatsAnswered {
                    endpoint: 1,
                    kind: RequestKind::Ask,
                },
                TraceEvent::StatsAnswered {
                    endpoint: 0,
                    kind: RequestKind::Count,
                },
                request(RequestKind::Select, 1, true),
            ],
        };
        assert!(trace.has_stats_events());
        assert_eq!(trace.stats_loaded(), Some((2, 5)));
        assert_eq!(trace.stats_answered(RequestKind::Ask), 2);
        assert_eq!(trace.stats_answered(RequestKind::Count), 1);
        assert_eq!(trace.stats_answered(RequestKind::Check), 0);
    }

    #[test]
    fn resilience_events_are_extracted() {
        use lusail_endpoint::HealthState;
        let plain = QueryTrace {
            events: vec![request(RequestKind::Select, 1, true)],
        };
        assert!(!plain.has_resilience_events());
        let trace = QueryTrace {
            events: vec![
                TraceEvent::HealthTransition {
                    endpoint: 0,
                    from: HealthState::Closed,
                    to: HealthState::Open,
                },
                TraceEvent::FailedOver {
                    from: 0,
                    to: 1,
                    kind: RequestKind::Select,
                    error: "Unavailable".into(),
                },
                TraceEvent::Hedged {
                    primary: 0,
                    replica: 1,
                },
                request(RequestKind::Select, 1, true),
            ],
        };
        assert!(trace.has_resilience_events());
        assert_eq!(trace.failovers().len(), 1);
        assert_eq!(trace.hedges().len(), 1);
        assert_eq!(trace.health_transitions().len(), 1);
    }
}
