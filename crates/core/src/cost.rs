//! SAPE's cost model (§V-A): per-subquery cardinality estimation and the
//! delayed-subquery decision.
//!
//! Cardinalities come from lightweight `SELECT (COUNT(*) …)` probes, one
//! per triple pattern per relevant endpoint, memoized like ASK results.
//! Pushed single-variable filters ride along with the probe for better
//! estimates, as in the paper.
//!
//! For a subquery `sq` and variable `v`:
//!
//! ```text
//! C(sq, v, ep) = min over patterns TP of sq containing v of C(TP, ep)
//! C(sq, v)     = Σ over relevant endpoints ep of C(sq, v, ep)
//! C(sq)        = max over projected variables v of C(sq, v)
//! ```
//!
//! A subquery is **delayed** when its estimated cardinality (or its number
//! of relevant endpoints) exceeds `μ + kσ` computed over all subqueries
//! *after Chauvenet outlier rejection* — outliers would otherwise inflate
//! `σ` and mask themselves. `μ+σ` (the paper's choice, validated in its
//! Fig. 9) is the default; the other thresholds are kept for the Fig. 9
//! reproduction.

use crate::cache::{pattern_key, ProbeCache};
use crate::exec::Net;
use crate::subquery::Subquery;
use lusail_endpoint::{EndpointId, Federation, RequestKind};
use lusail_sparql::ast::{Expression, GroupPattern, Query, TriplePattern};
use std::sync::atomic::Ordering;

/// The delay-threshold policy (Fig. 9 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayPolicy {
    /// Delay when the estimate exceeds `μ`.
    Mu,
    /// Delay when the estimate exceeds `μ + σ` (the paper's default).
    #[default]
    MuSigma,
    /// Delay when the estimate exceeds `μ + 2σ`.
    Mu2Sigma,
    /// Delay only Chauvenet-rejected outliers.
    OutliersOnly,
}

/// Per-subquery cost-model outputs.
#[derive(Debug, Clone, Default)]
pub struct SubqueryCosts {
    /// Estimated cardinality `C(sq)` per subquery.
    pub cardinality: Vec<u64>,
    /// Whether each subquery is delayed.
    pub delayed: Vec<bool>,
}

/// Estimates `C(sq)` for every subquery using COUNT probes. A probe whose
/// endpoint fails (after retries) degrades gracefully: the endpoint's
/// total triple count stands in as a conservative upper bound — erring
/// toward delaying the subquery — and the fallback is not cached.
pub fn estimate_cardinalities(
    fed: &Federation,
    net: &Net,
    subqueries: &[Subquery],
    cache: &ProbeCache<u64>,
) -> Vec<u64> {
    // Gather the distinct (pattern, endpoint) probes needed, reusing the
    // cache. Pushed filters are attached per-subquery, so the probe key is
    // the bare pattern; subqueries with filters probe slightly high, which
    // only errs toward delaying them.
    let mut needed: Vec<(EndpointId, TriplePattern)> = Vec::new();
    let mut known: lusail_rdf::FxHashMap<(crate::cache::PatternKey, EndpointId), u64> =
        lusail_rdf::FxHashMap::default();
    let mut requested: lusail_rdf::FxHashSet<(crate::cache::PatternKey, EndpointId)> =
        lusail_rdf::FxHashSet::default();
    for sq in subqueries {
        for tp in &sq.triples {
            let key = pattern_key(tp);
            for &ep in &sq.sources {
                if let Some(c) = cache.get(&key, ep) {
                    known.insert((key.clone(), ep), c);
                } else if let Some(c) = fed.stats_for(ep).and_then(|s| s.count_pattern(tp)) {
                    // Offline statistics carry the pattern's *exact*
                    // count (see `EndpointStats::count_pattern`), so the
                    // downstream delay decision is unchanged and the
                    // wire probe can be elided outright. Like the ASK
                    // path, the answer is not written into the cache.
                    if known.insert((key.clone(), ep), c).is_none() {
                        net.trace
                            .emit(|| lusail_endpoint::TraceEvent::StatsAnswered {
                                endpoint: ep,
                                kind: RequestKind::Count,
                            });
                    }
                } else if requested.insert((key.clone(), ep)) {
                    needed.push((ep, tp.clone()));
                }
            }
        }
    }
    let probed = net
        .handler
        .run(fed, needed, |ep_id, ep, tp: &TriplePattern| {
            net.client.request_kind(ep_id, RequestKind::Count, || {
                ep.count(&Query::count(GroupPattern::bgp(vec![tp.clone()])))
            })
        });
    for (ep, tp, c) in probed {
        let key = pattern_key(&tp);
        match c {
            Ok(c) => {
                cache.put(key.clone(), ep, c);
                known.insert((key, ep), c);
            }
            Err(_) => {
                net.degradation
                    .counts_defaulted
                    .fetch_add(1, Ordering::Relaxed);
                known.insert((key, ep), fed.endpoint(ep).triple_count() as u64);
            }
        }
    }
    let count_of = |tp: &TriplePattern, ep: EndpointId| -> u64 {
        known.get(&(pattern_key(tp), ep)).copied().unwrap_or(0)
    };

    subqueries
        .iter()
        .map(|sq| {
            let vars = sq.vars();
            let projected: Vec<&String> =
                vars.iter().filter(|v| sq.projection.contains(v)).collect();
            let mut c_sq = 0u64;
            for v in projected {
                // C(sq, v) = Σ_ep min over patterns containing v.
                let mut c_v = 0u64;
                for &ep in &sq.sources {
                    let c_v_ep = sq
                        .triples
                        .iter()
                        .filter(|tp| tp.mentions(v))
                        .map(|tp| count_of(tp, ep))
                        .min()
                        .unwrap_or(0);
                    c_v += c_v_ep;
                }
                c_sq = c_sq.max(c_v);
            }
            if c_sq == 0 {
                // A subquery with no projected variables (all constants) or
                // no statistics: fall back to the max pattern count.
                c_sq = sq
                    .triples
                    .iter()
                    .flat_map(|tp| sq.sources.iter().map(move |&ep| count_of(tp, ep)))
                    .max()
                    .unwrap_or(0);
            }
            c_sq
        })
        .collect()
}

/// The full delay decision, with the per-channel thresholds that caused
/// it — the payload behind trace delay-reason events.
#[derive(Debug, Clone, Default)]
pub struct DelayDecision {
    /// Whether each subquery is delayed (either channel).
    pub delayed: Vec<bool>,
    /// Whether the *cardinality* channel flagged each subquery.
    pub by_cardinality: Vec<bool>,
    /// Whether the *fan-out* channel flagged each subquery.
    pub by_fanout: Vec<bool>,
    /// The `μ + kσ` threshold of the cardinality channel (`None` for
    /// [`DelayPolicy::OutliersOnly`], where Chauvenet rejection itself is
    /// the criterion, and for trivially small inputs).
    pub cardinality_threshold: Option<f64>,
    /// The `μ + kσ` threshold of the fan-out channel.
    pub fanout_threshold: Option<f64>,
}

impl DelayDecision {
    /// A human-readable reason for subquery `i`'s delay, naming the
    /// channel and the threshold that flagged it. `None` when `i` is not
    /// delayed.
    pub fn reason(&self, i: usize, cardinality: u64, fanout: usize) -> Option<String> {
        if self.by_cardinality.get(i).copied().unwrap_or(false) {
            return Some(match self.cardinality_threshold {
                Some(t) => format!("cardinality {cardinality} > μ+kσ threshold {t:.1}"),
                None => format!("cardinality {cardinality} is a Chauvenet outlier"),
            });
        }
        if self.by_fanout.get(i).copied().unwrap_or(false) {
            return Some(match self.fanout_threshold {
                Some(t) => format!("fan-out {fanout} > μ+kσ threshold {t:.1}"),
                None => format!("fan-out {fanout} is a Chauvenet outlier"),
            });
        }
        None
    }
}

/// Decides which subqueries to delay given cardinalities and endpoint
/// fan-outs.
pub fn decide_delays(cardinalities: &[u64], fanouts: &[usize], policy: DelayPolicy) -> Vec<bool> {
    decide_delays_detailed(cardinalities, fanouts, policy).delayed
}

/// [`decide_delays`] plus the per-channel verdicts and thresholds.
pub fn decide_delays_detailed(
    cardinalities: &[u64],
    fanouts: &[usize],
    policy: DelayPolicy,
) -> DelayDecision {
    assert_eq!(cardinalities.len(), fanouts.len());
    let n = cardinalities.len();
    if n <= 1 {
        return DelayDecision {
            delayed: vec![false; n],
            by_cardinality: vec![false; n],
            by_fanout: vec![false; n],
            cardinality_threshold: None,
            fanout_threshold: None,
        };
    }
    let cards: Vec<f64> = cardinalities.iter().map(|&c| c as f64).collect();
    let fans: Vec<f64> = fanouts.iter().map(|&f| f as f64).collect();
    let (by_cardinality, cardinality_threshold) = threshold_exceeders(&cards, policy);
    let (by_fanout, fanout_threshold) = threshold_exceeders(&fans, policy);
    DelayDecision {
        delayed: (0..n).map(|i| by_cardinality[i] || by_fanout[i]).collect(),
        by_cardinality,
        by_fanout,
        cardinality_threshold,
        fanout_threshold,
    }
}

/// Marks the values exceeding the policy threshold computed over the
/// Chauvenet inliers, returning the threshold itself alongside (`None`
/// for the outliers-only policy, which has no numeric threshold).
fn threshold_exceeders(xs: &[f64], policy: DelayPolicy) -> (Vec<bool>, Option<f64>) {
    let inliers = chauvenet_inliers(xs);
    if let DelayPolicy::OutliersOnly = policy {
        return (inliers.iter().map(|&keep| !keep).collect(), None);
    }
    let kept: Vec<f64> = xs
        .iter()
        .zip(&inliers)
        .filter(|(_, &keep)| keep)
        .map(|(&x, _)| x)
        .collect();
    let (mu, sigma) = mean_std(&kept);
    let k = match policy {
        DelayPolicy::Mu => 0.0,
        DelayPolicy::MuSigma => 1.0,
        DelayPolicy::Mu2Sigma => 2.0,
        DelayPolicy::OutliersOnly => unreachable!(),
    };
    let threshold = mu + k * sigma;
    (xs.iter().map(|&x| x > threshold).collect(), Some(threshold))
}

/// Chauvenet's criterion: a sample is rejected when the expected number of
/// samples as extreme as it, `N · erfc(|x−μ|/(σ√2))`, falls below 1/2.
pub fn chauvenet_inliers(xs: &[f64]) -> Vec<bool> {
    let n = xs.len();
    if n == 2 {
        // Chauvenet cannot reject anything from a two-point sample (both
        // points always sit exactly 1σ from the mean), yet the paper's
        // two-subquery queries (LUBM Q3/Q4) do delay their dominant
        // subquery. Treat a clearly dominant point (>2× the other) as the
        // outlier so the μ+kσ threshold is computed from the small one.
        let (a, b) = (xs[0], xs[1]);
        if a > 2.0 * b {
            return vec![false, true];
        }
        if b > 2.0 * a {
            return vec![true, false];
        }
        return vec![true, true];
    }
    if n < 3 {
        return vec![true; n];
    }
    let (mu, sigma) = mean_std(xs);
    if sigma == 0.0 {
        return vec![true; n];
    }
    xs.iter()
        .map(|&x| {
            let z = (x - mu).abs() / sigma;
            (n as f64) * erfc(z / std::f64::consts::SQRT_2) >= 0.5
        })
        .collect()
}

/// Mean and *sample* standard deviation (Bessel's correction).
fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mu = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mu, 0.0);
    }
    let var = xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (n - 1.0);
    (mu, var.sqrt())
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e−7).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

/// Restricts a set of filters to those whose variables all occur in `tp`
/// (usable for sharpening a COUNT probe).
pub fn filters_for_pattern<'a>(
    filters: &'a [Expression],
    tp: &TriplePattern,
) -> Vec<&'a Expression> {
    filters
        .iter()
        .filter(|f| f.vars().iter().all(|v| tp.mentions(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004678).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
    }

    #[test]
    fn chauvenet_rejects_extreme_outlier() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 1_000_000.0];
        let inliers = chauvenet_inliers(&xs);
        assert_eq!(inliers, [true, true, true, true, true, false]);
    }

    #[test]
    fn chauvenet_keeps_uniform_data() {
        let xs = [5.0, 5.0, 5.0, 5.0];
        assert!(chauvenet_inliers(&xs).iter().all(|&b| b));
        let xs = [4.0, 5.0, 6.0, 5.0];
        assert!(chauvenet_inliers(&xs).iter().all(|&b| b));
    }

    #[test]
    fn mu_sigma_delays_only_large() {
        // One subquery returns far more than the rest.
        let cards = [100, 100, 100, 100, 100_000];
        let fans = [2, 2, 2, 2, 2];
        let delayed = decide_delays(&cards, &fans, DelayPolicy::MuSigma);
        assert_eq!(delayed, [false, false, false, false, true]);
    }

    #[test]
    fn mu_policy_delays_more_than_mu2sigma() {
        let cards = [10, 50, 100, 150, 500];
        let fans = [1, 1, 1, 1, 1];
        let mu = decide_delays(&cards, &fans, DelayPolicy::Mu);
        let mu2 = decide_delays(&cards, &fans, DelayPolicy::Mu2Sigma);
        let count = |v: &[bool]| v.iter().filter(|&&b| b).count();
        assert!(count(&mu) >= count(&mu2));
        assert!(count(&mu) >= 1);
    }

    #[test]
    fn fanout_alone_can_delay() {
        // Similar cardinalities, but one subquery touches every endpoint.
        let cards = [100, 100, 100, 100, 110];
        let fans = [2, 2, 2, 2, 200];
        let delayed = decide_delays(&cards, &fans, DelayPolicy::MuSigma);
        assert_eq!(delayed, [false, false, false, false, true]);
    }

    #[test]
    fn outliers_only_is_most_permissive() {
        let cards = [100, 150, 200, 250, 800];
        let fans = [1, 1, 1, 1, 1];
        let outliers = decide_delays(&cards, &fans, DelayPolicy::OutliersOnly);
        let musigma = decide_delays(&cards, &fans, DelayPolicy::MuSigma);
        let count = |v: &[bool]| v.iter().filter(|&&b| b).count();
        assert!(count(&outliers) <= count(&musigma));
    }

    #[test]
    fn single_subquery_never_delayed() {
        assert_eq!(decide_delays(&[1_000_000], &[50], DelayPolicy::Mu), [false]);
        assert!(decide_delays(&[], &[], DelayPolicy::MuSigma).is_empty());
    }

    #[test]
    fn chauvenet_tiny_samples_keep_everything() {
        assert!(chauvenet_inliers(&[]).is_empty());
        assert_eq!(chauvenet_inliers(&[7.0]), [true]);
        // Two points within the dominance factor: both kept.
        assert_eq!(chauvenet_inliers(&[10.0, 15.0]), [true, true]);
        assert_eq!(chauvenet_inliers(&[15.0, 10.0]), [true, true]);
    }

    #[test]
    fn two_point_dominance_rejects_the_large_one() {
        // A two-point sample always sits exactly 1σ from its mean, so
        // plain Chauvenet can never reject; the >2× dominance rule stands
        // in (the paper's two-subquery LUBM Q3/Q4 shape).
        assert_eq!(chauvenet_inliers(&[10.0, 100.0]), [true, false]);
        assert_eq!(chauvenet_inliers(&[100.0, 10.0]), [false, true]);
        // The dominant subquery is then delayed under every threshold.
        for policy in [DelayPolicy::Mu, DelayPolicy::MuSigma, DelayPolicy::Mu2Sigma] {
            assert_eq!(
                decide_delays(&[10, 100], &[1, 1], policy),
                [false, true],
                "{policy:?}"
            );
        }
        // Exactly 2× is *not* dominant: threshold math over both points.
        assert_eq!(chauvenet_inliers(&[10.0, 20.0]), [true, true]);
    }

    #[test]
    fn detailed_decision_surfaces_threshold_and_reason() {
        let cards = [100, 100, 100, 100, 100_000];
        let fans = [2, 2, 2, 2, 2];
        let d = decide_delays_detailed(&cards, &fans, DelayPolicy::MuSigma);
        assert_eq!(d.delayed, [false, false, false, false, true]);
        assert_eq!(d.by_cardinality, d.delayed);
        assert!(d.by_fanout.iter().all(|&b| !b));
        // Chauvenet rejects the outlier, so the threshold is computed over
        // the four identical inliers: μ = 100, σ = 0.
        assert_eq!(d.cardinality_threshold, Some(100.0));
        let reason = d.reason(4, cards[4], fans[4]).unwrap();
        assert!(
            reason.contains("cardinality 100000") && reason.contains("100.0"),
            "unexpected reason: {reason}"
        );
        assert_eq!(d.reason(0, cards[0], fans[0]), None);
        // Every delayed index must have a reason, under every policy.
        for policy in [
            DelayPolicy::Mu,
            DelayPolicy::MuSigma,
            DelayPolicy::Mu2Sigma,
            DelayPolicy::OutliersOnly,
        ] {
            let d = decide_delays_detailed(&cards, &fans, policy);
            for (i, &delayed) in d.delayed.iter().enumerate() {
                assert_eq!(
                    d.reason(i, cards[i], fans[i]).is_some(),
                    delayed,
                    "{policy:?} index {i}"
                );
            }
        }
    }

    #[test]
    fn zero_variance_delays_nothing() {
        // Identical estimates: σ = 0, threshold = μ, and no value exceeds
        // its own mean — nothing may be delayed, under any policy.
        let cards = [42, 42, 42, 42];
        let fans = [3, 3, 3, 3];
        for policy in [
            DelayPolicy::Mu,
            DelayPolicy::MuSigma,
            DelayPolicy::Mu2Sigma,
            DelayPolicy::OutliersOnly,
        ] {
            assert_eq!(
                decide_delays(&cards, &fans, policy),
                [false; 4],
                "{policy:?}"
            );
        }
        // Same for a zero-variance two-point sample.
        assert_eq!(
            decide_delays(&[7, 7], &[2, 2], DelayPolicy::MuSigma),
            [false, false]
        );
    }

    #[test]
    fn uniform_single_endpoint_fanouts_never_delay() {
        // Every subquery resolved by one endpoint: the fan-out channel is
        // all-ones (zero variance) and must not trigger delays on its own.
        assert_eq!(
            decide_delays(&[10, 10, 10, 10], &[1, 1, 1, 1], DelayPolicy::MuSigma),
            [false; 4]
        );
        // With varying cardinalities the decision comes from the
        // cardinality channel alone: any uniform fan-out vector gives the
        // same answer as all-ones.
        let cards = [10, 12, 11, 9];
        assert_eq!(
            decide_delays(&cards, &[1, 1, 1, 1], DelayPolicy::MuSigma),
            decide_delays(&cards, &[5, 5, 5, 5], DelayPolicy::MuSigma)
        );
    }
}
