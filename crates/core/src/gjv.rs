//! Detecting global join variables (Algorithm 1 in the paper).
//!
//! A *global join variable* (GJV) is a variable shared by two triple
//! patterns that cannot be solved together by a single endpoint: either
//! the two patterns have different relevant sources, or the data instances
//! matching the variable in the two patterns are not co-located at some
//! endpoint.
//!
//! Co-location is established by *check queries* — lightweight
//! `SELECT … FILTER NOT EXISTS { … } LIMIT 1` probes computing the set
//! difference of the variable's instances under the two patterns (Fig. 6
//! in the paper). For a variable appearing as object in `TPᵢ` and subject
//! in `TPⱼ`, one difference (`vᵢ − vⱼ`, evaluated at every relevant
//! endpoint) suffices; for subject-only or object-only variables both
//! differences are checked. Constants in the inner pattern are replaced
//! with fresh variables; a known `rdf:type` constraint on the variable is
//! added to narrow the probe.
//!
//! Object–object joins additionally run a *home check* (`?v` matching the
//! pattern with no local subject triple): object instances are references
//! that may occur at several endpoints, so empty mutual differences alone
//! do not rule out a cross-endpoint join. See [`home_check_query`].
//!
//! False positives (a variable flagged global although grouping would have
//! been safe) cost extra remote joins but never correctness — exactly the
//! trade-off the paper describes.
//!
//! Two paper-inherited caveats, both documented in DESIGN.md: (1) the
//! probes establish co-location only under entity-partitioned data (each
//! subject's triples at its authority's endpoint — the setting of Fig. 1);
//! (2) adding the `rdf:type` constraint to the outer pattern makes checks
//! *against the type pattern itself* vacuous by construction. Both follow
//! the paper's Fig. 6 exactly — dropping the type constraint would flag
//! every remote-referenced entity and destroy the disjointness of LUBM
//! Q1/Q2 that §VI-C reports.

use crate::cache::KeyedCache;
use crate::exec::Net;
use crate::source_selection::SourceMap;
use lusail_endpoint::{EndpointId, Federation, RequestKind};
use lusail_rdf::{vocab, FxHashSet, TermId};
use lusail_sparql::ast::{GroupPattern, PatternTerm, Query, TriplePattern};
use std::sync::atomic::Ordering;

/// The result of GJV analysis over one basic graph pattern.
#[derive(Debug, Clone, Default)]
pub struct GjvAnalysis {
    /// The global join variables, in detection order.
    pub gjvs: Vec<String>,
    /// Unordered index pairs (into the analyzed pattern slice) that caused
    /// some variable to be global. Patterns in a conflicting pair must not
    /// share a subquery.
    pub conflicts: FxHashSet<(usize, usize)>,
    /// Check-query wire attempts at endpoints — one per select that
    /// actually reached an endpoint, so retried checks count per attempt
    /// (diagnostics; the paper bounds the probe count by `O(|V|·|T|²)`
    /// and it is small in practice).
    pub check_queries: u64,
}

impl GjvAnalysis {
    /// True if the pair `(i, j)` conflicts (order-insensitive).
    pub fn conflicting(&self, i: usize, j: usize) -> bool {
        self.conflicts.contains(&key(i, j))
    }
}

fn key(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

/// How a variable occurs in a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Subject,
    Object,
    Predicate,
}

/// Runs Algorithm 1 over the triple patterns of one conjunctive block.
/// A check query whose endpoint fails (after retries) degrades gracefully:
/// the pair is *assumed conflicting* — a false positive costs extra remote
/// joins, never answers — and the assumption is not cached.
pub fn detect_gjvs(
    fed: &Federation,
    triples: &[TriplePattern],
    sources: &SourceMap,
    cache: &KeyedCache<bool>,
    net: &Net,
) -> GjvAnalysis {
    let mut analysis = GjvAnalysis::default();
    let rdf_type = fed.dict().encode_iri(vocab::RDF_TYPE);

    // Map var -> (pattern index, role) occurrences.
    let mut vars: Vec<(String, Vec<(usize, Role)>)> = Vec::new();
    for (i, tp) in triples.iter().enumerate() {
        let add = |name: &str, role: Role, vars: &mut Vec<(String, Vec<(usize, Role)>)>| match vars
            .iter_mut()
            .find(|(v, _)| v == name)
        {
            Some((_, occ)) => occ.push((i, role)),
            None => vars.push((name.to_string(), vec![(i, role)])),
        };
        if let PatternTerm::Var(v) = &tp.s {
            add(v, Role::Subject, &mut vars);
        }
        if let PatternTerm::Var(v) = &tp.p {
            add(v, Role::Predicate, &mut vars);
        }
        if let PatternTerm::Var(v) = &tp.o {
            add(v, Role::Object, &mut vars);
        }
    }

    // A known type constraint per variable: (?v rdf:type <T>) with T const.
    let type_of = |v: &str| -> Option<(usize, TermId)> {
        triples.iter().enumerate().find_map(|(i, tp)| {
            if tp.s.as_var() == Some(v) && tp.p.as_const() == Some(rdf_type) && !tp.o.is_var() {
                Some((i, tp.o.as_const().unwrap()))
            } else {
                None
            }
        })
    };

    for (var, occurrences) in &vars {
        // Occurrences in distinct patterns only (a repeated variable inside
        // one pattern is a local constraint, not a join).
        let patterns: Vec<(usize, Role)> = occurrences.clone();
        let distinct: FxHashSet<usize> = patterns.iter().map(|(i, _)| *i).collect();
        if distinct.len() < 2 {
            continue;
        }

        let mut is_gjv = false;

        // Pairs of distinct patterns sharing the variable.
        let idxs: Vec<usize> = {
            let mut v: Vec<usize> = distinct.into_iter().collect();
            v.sort_unstable();
            v
        };

        // Case 1 (lines 8–11): differing relevant sources ⇒ GJV, no check
        // queries needed for those pairs. Unlike the paper's Algorithm 1
        // (which skips all remaining checks once the variable is known
        // global), same-source pairs of the variable are still checked
        // below — otherwise an unchecked pair could be grouped although
        // its instances straddle endpoints.
        for (a, &i) in idxs.iter().enumerate() {
            for &j in &idxs[a + 1..] {
                if sources.sources(&triples[i]) != sources.sources(&triples[j]) {
                    analysis.conflicts.insert(key(i, j));
                    is_gjv = true;
                }
            }
        }
        {
            // Case 2: same sources everywhere — formulate check queries.
            // Predicate-position joins cannot be checked with the paper's
            // probe shapes; treat them conservatively as global.
            let has_predicate_role = patterns.iter().any(|(_, r)| *r == Role::Predicate);
            if has_predicate_role {
                for (a, &i) in idxs.iter().enumerate() {
                    for &j in &idxs[a + 1..] {
                        analysis.conflicts.insert(key(i, j));
                    }
                }
                is_gjv = true;
            } else {
                let type_info = type_of(var);
                let mut checks: Vec<(usize, usize, Query, String)> = Vec::new();
                let push_check =
                    |i: usize,
                     j: usize,
                     keep: usize,
                     probe: usize,
                     checks: &mut Vec<(usize, usize, Query, String)>| {
                        let (q, sig) =
                            check_query(var, &triples[keep], &triples[probe], type_info, triples);
                        if !checks
                            .iter()
                            .any(|(a, b, _, s)| (*a, *b) == (i, j) && *s == sig)
                        {
                            checks.push((i, j, q, sig));
                        }
                    };
                let push_home_check =
                    |i: usize,
                     j: usize,
                     keep: usize,
                     checks: &mut Vec<(usize, usize, Query, String)>| {
                        let (q, sig) = home_check_query(var, &triples[keep], type_info, triples);
                        if !checks
                            .iter()
                            .any(|(a, b, _, s)| (*a, *b) == (i, j) && *s == sig)
                        {
                            checks.push((i, j, q, sig));
                        }
                    };
                // Enumerate occurrence pairs. For an (object TPᵢ, subject
                // TPⱼ) pair the paper's single difference vᵢ − vⱼ suffices
                // (the probe runs at every relevant endpoint). For
                // same-role pairs both differences are checked. The paper
                // skips same-role pairs when the variable also has a
                // mixed-role pair; checking them too is a strict superset
                // — it can only add (safe) conflicts.
                //
                // Object–object pairs need one probe beyond the paper's
                // differences: an object instance is a *reference* and may
                // occur at several endpoints, so empty mutual differences
                // do not rule out a cross-endpoint join (both endpoints
                // bind the same value with different subjects). Under
                // entity partitioning a value that is a local subject
                // everywhere it matches is homed at a single endpoint and
                // thus cannot match at two; the home check asks for an
                // instance with **no** local subject triple and flags the
                // pair when one exists.
                for a in 0..patterns.len() {
                    for b in a + 1..patterns.len() {
                        let (i, ri) = patterns[a];
                        let (j, rj) = patterns[b];
                        if i == j || analysis.conflicting(i, j) {
                            // Same pattern, or already conflicting via the
                            // source-mismatch case: no check query needed.
                            continue;
                        }
                        match (ri, rj) {
                            (Role::Object, Role::Subject) => {
                                push_check(i, j, i, j, &mut checks);
                            }
                            (Role::Subject, Role::Object) => {
                                push_check(i, j, j, i, &mut checks);
                            }
                            (Role::Object, Role::Object) => {
                                push_check(i, j, i, j, &mut checks);
                                push_check(i, j, j, i, &mut checks);
                                push_home_check(i, j, i, &mut checks);
                                push_home_check(i, j, j, &mut checks);
                            }
                            _ => {
                                push_check(i, j, i, j, &mut checks);
                                push_check(i, j, j, i, &mut checks);
                            }
                        }
                    }
                }

                // Evaluate check queries at all relevant endpoints
                // (identical source lists for both patterns of a pair).
                let mut tasks: Vec<(EndpointId, usize)> = Vec::new();
                let mut outcomes: Vec<bool> = vec![false; checks.len()];
                for (ci, (i, _, q, sig)) in checks.iter().enumerate() {
                    for &ep in sources.sources(&triples[*i]) {
                        match cache.get(sig, ep) {
                            Some(nonempty) => outcomes[ci] |= nonempty,
                            // Cache miss: offline statistics answer next
                            // when conclusive for the probe's shape (see
                            // `stats_check_answer`), eliding the wire
                            // select; the answer is not cached.
                            None => match fed.stats_for(ep).and_then(|s| stats_check_answer(&s, q))
                            {
                                Some(nonempty) => {
                                    net.trace
                                        .emit(|| lusail_endpoint::TraceEvent::StatsAnswered {
                                            endpoint: ep,
                                            kind: RequestKind::Check,
                                        });
                                    outcomes[ci] |= nonempty;
                                }
                                None => tasks.push((ep, ci)),
                            },
                        }
                    }
                }
                let attempts_before = net.client.wire_attempts(RequestKind::Check);
                let results = net.handler.run(fed, tasks, |ep_id, ep, &ci| {
                    net.client
                        .request_kind(ep_id, RequestKind::Check, || ep.select(&checks[ci].2))
                        .map(|sols| !sols.is_empty())
                });
                // `check_queries` counts wire attempts, exactly like the
                // endpoint-side select counter it is documented as a part
                // of: a retried check counts once per attempt and a
                // circuit-broken one not at all.
                analysis.check_queries +=
                    net.client.wire_attempts(RequestKind::Check) - attempts_before;
                for (ep, ci, nonempty) in results {
                    match nonempty {
                        Ok(nonempty) => {
                            cache.put(checks[ci].3.clone(), ep, nonempty);
                            outcomes[ci] |= nonempty;
                        }
                        Err(_) => {
                            net.degradation
                                .checks_assumed_conflict
                                .fetch_add(1, Ordering::Relaxed);
                            outcomes[ci] = true;
                        }
                    }
                }
                for (ci, (i, j, _, _)) in checks.iter().enumerate() {
                    if outcomes[ci] {
                        analysis.conflicts.insert(key(*i, *j));
                        is_gjv = true;
                    }
                }
            }
        }

        if is_gjv {
            analysis.gjvs.push(var.clone());
        }
    }
    analysis
}

/// Builds the paper's check query (Fig. 6): instances of `var` matching
/// `keep` that have **no** local match in `probe`. Constants (other than
/// the predicate) inside the probe pattern are replaced with fresh
/// variables; a known type constraint is added. Returns the query and a
/// stable signature for caching.
fn check_query(
    var: &str,
    keep: &TriplePattern,
    probe: &TriplePattern,
    type_info: Option<(usize, TermId)>,
    triples: &[TriplePattern],
) -> (Query, String) {
    let mut outer = vec![keep.clone()];
    if let Some((ti, ty)) = type_info {
        let type_tp = &triples[ti];
        // Add the type constraint unless it *is* the kept pattern.
        if type_tp != keep {
            outer.insert(
                0,
                TriplePattern::new(
                    PatternTerm::Var(var.to_string()),
                    type_tp.p.clone(),
                    PatternTerm::Const(ty),
                ),
            );
        }
    }
    // Probe pattern: keep the analyzed variable, the predicate, and any
    // variable shared with the kept pattern (preserving multi-variable
    // join correlation makes the NOT EXISTS stricter, i.e. strictly more
    // conservative); generalize constants and unrelated variables to
    // fresh names so the check is about *locality*, not specific values.
    let fresh = |tag: &str, t: &PatternTerm| -> PatternTerm {
        match t {
            PatternTerm::Var(v) if v == var || keep.mentions(v) => PatternTerm::Var(v.clone()),
            _ => PatternTerm::Var(format!("__chk_{tag}")),
        }
    };
    let inner = TriplePattern::new(fresh("s", &probe.s), probe.p.clone(), fresh("o", &probe.o));
    let mut pattern = GroupPattern::bgp(outer);
    pattern.not_exists.push(GroupPattern::bgp(vec![inner]));
    let q = Query {
        form: lusail_sparql::ast::QueryForm::Select,
        distinct: false,
        projection: vec![var.to_string()],
        pattern,
        aggregates: Vec::new(),
        group_by: Vec::new(),
        having: Vec::new(),
        order_by: Vec::new(),
        limit: Some(1),
    };
    // Signature: the serialized text is stable and canonical enough for
    // memoization (term ids are stable within a dictionary).
    let sig = write_query_for_sig(&q);
    (q, sig)
}

/// Builds the home-check probe used for object–object joins: instances of
/// `var` matching `keep` that are **not** the subject of any local triple.
/// A non-empty result means some instance is a remote reference whose home
/// endpoint may contribute further matches — the pair must not be grouped.
fn home_check_query(
    var: &str,
    keep: &TriplePattern,
    type_info: Option<(usize, TermId)>,
    triples: &[TriplePattern],
) -> (Query, String) {
    let mut outer = vec![keep.clone()];
    if let Some((ti, ty)) = type_info {
        let type_tp = &triples[ti];
        if type_tp != keep {
            outer.insert(
                0,
                TriplePattern::new(
                    PatternTerm::Var(var.to_string()),
                    type_tp.p.clone(),
                    PatternTerm::Const(ty),
                ),
            );
        }
    }
    let inner = TriplePattern::new(
        PatternTerm::Var(var.to_string()),
        PatternTerm::Var("__chk_hp".to_string()),
        PatternTerm::Var("__chk_ho".to_string()),
    );
    let mut pattern = GroupPattern::bgp(outer);
    pattern.not_exists.push(GroupPattern::bgp(vec![inner]));
    let q = Query {
        form: lusail_sparql::ast::QueryForm::Select,
        distinct: false,
        projection: vec![var.to_string()],
        pattern,
        aggregates: Vec::new(),
        group_by: Vec::new(),
        having: Vec::new(),
        order_by: Vec::new(),
        limit: Some(1),
    };
    let sig = write_query_for_sig(&q);
    (q, sig)
}

/// A dictionary-free signature: serialize structure with raw term ids.
fn write_query_for_sig(q: &Query) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let tp = |t: &TriplePattern, s: &mut String| {
        for x in [&t.s, &t.p, &t.o] {
            match x {
                PatternTerm::Var(v) => {
                    let _ = write!(s, "?{v} ");
                }
                PatternTerm::Const(id) => {
                    let _ = write!(s, "#{} ", id.0);
                }
            }
        }
        s.push('|');
    };
    for t in &q.pattern.triples {
        tp(t, &mut s);
    }
    s.push_str("^^");
    for g in &q.pattern.not_exists {
        for t in &g.triples {
            tp(t, &mut s);
        }
    }
    s
}

/// Answers a check/home-check probe from offline statistics when the
/// probe's shape makes the summary *conclusive* — i.e. provably equal to
/// what evaluating the probe at the endpoint would return. `None` sends
/// the probe to the wire.
///
/// Both probe shapes built above are
/// `SELECT ?v { outer… FILTER NOT EXISTS { inner } } LIMIT 1` with a
/// single-triple NOT EXISTS group and plain BGPs throughout — any other
/// shape returns `None` unseen. The conclusive cases are:
///
/// 1. Some outer pattern is locally empty (its [`ask_pattern`] is
///    conclusively false) ⇒ the probe is empty, answer `false`.
/// 2. Home check (inner is `?v ?p ?o` where `?p`/`?o` are *fresh*:
///    distinct from `?v`, from each other, and unmentioned in the outer
///    patterns) with `?v` in subject position of some outer pattern ⇒
///    every binding of `?v` *is* a local subject, the NOT EXISTS
///    excludes all of them, answer `false`. (The type constraint has
///    this shape, so typed home checks are vacuous — a direct
///    consequence of the paper's Fig. 6 construction.) Freshness is
///    load-bearing: `check_query` preserves variables shared with the
///    kept pattern, so a repeated join variable reappears as the inner
///    object (`?v ?x ?v`), which only excludes self-referencing
///    subjects — not every local subject.
/// 3. Home check (same freshness requirement) with a single outer
///    `?a <p> ?v` ⇒ nonempty iff `p` has a *foreign* object (one that
///    is no local subject): [`objects_foreign`]`(p) > 0`.
/// 4. Set-difference check with a single outer `?v <pk> ?b` and an
///    uncorrelated inner `?v <pp> ?fresh` ⇒ nonempty iff some
///    characteristic set contains `pk` but not `pp` — exact because the
///    sets partition the endpoint's subjects:
///    [`any_signature_with_without`]`(pk, pp)`.
///
/// [`ask_pattern`]: lusail_store::EndpointStats::ask_pattern
/// [`objects_foreign`]: lusail_store::EndpointStats::objects_foreign
/// [`any_signature_with_without`]: lusail_store::EndpointStats::any_signature_with_without
fn stats_check_answer(stats: &lusail_store::EndpointStats, q: &Query) -> Option<bool> {
    let var = q.projection.first()?.as_str();
    // The reasoning below assumes the exact probe shape the builders
    // above produce; answer only that shape, never a partial view of a
    // richer pattern.
    let pat = &q.pattern;
    if !pat.filters.is_empty()
        || !pat.optionals.is_empty()
        || !pat.unions.is_empty()
        || pat.values.is_some()
    {
        return None;
    }
    let [group] = pat.not_exists.as_slice() else {
        return None;
    };
    let [inner] = group.triples.as_slice() else {
        return None;
    };
    if !group.filters.is_empty()
        || !group.optionals.is_empty()
        || !group.unions.is_empty()
        || !group.not_exists.is_empty()
        || group.values.is_some()
    {
        return None;
    }
    for tp in &pat.triples {
        if stats.ask_pattern(tp) == Some(false) {
            return Some(false);
        }
    }
    let outer_mentions = |name: &str| pat.triples.iter().any(|tp| tp.mentions(name));
    let home = inner.s.as_var() == Some(var)
        && match (inner.p.as_var(), inner.o.as_var()) {
            (Some(ip), Some(io)) => {
                ip != var && io != var && ip != io && !outer_mentions(ip) && !outer_mentions(io)
            }
            _ => false,
        };
    if home {
        if pat.triples.iter().any(|tp| tp.s.as_var() == Some(var)) {
            return Some(false);
        }
        if let [keep] = pat.triples.as_slice() {
            if keep.o.as_var() == Some(var) && keep.s.as_var().is_some() {
                if let Some(p) = keep.p.as_const() {
                    return Some(stats.objects_foreign(p) > 0);
                }
            }
        }
        return None;
    }
    let [keep] = pat.triples.as_slice() else {
        return None;
    };
    let (Some(ks), Some(pk), Some(kb)) = (keep.s.as_var(), keep.p.as_const(), keep.o.as_var())
    else {
        return None;
    };
    if ks != var || kb == var {
        return None;
    }
    let (Some(is_), Some(pp), Some(io)) = (inner.s.as_var(), inner.p.as_const(), inner.o.as_var())
    else {
        return None;
    };
    if is_ != var || io == var || io == kb {
        return None;
    }
    Some(stats.any_signature_with_without(pk, pp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ProbeCache;
    use crate::source_selection::select_sources;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    /// Builds the paper's running example (Fig. 1): two universities.
    /// EP1 (MIT-like): all professors got their PhD locally; EP2 has Tim,
    /// whose PhD university (incl. its address) lives at EP1.
    fn universities() -> Federation {
        let dict = Dictionary::shared();
        let ub = |l: &str| Term::iri(format!("http://ub/{l}"));
        let e1 = |l: &str| Term::iri(format!("http://ep1/{l}"));
        let e2 = |l: &str| Term::iri(format!("http://ep2/{l}"));

        let mut ep1 = TripleStore::new(Arc::clone(&dict));
        // EP1: professor Joy advises Kim; Joy's PhD from CMU (local entity
        // with address); university MIT with address (referenced by EP2).
        ep1.insert_terms(&e1("Kim"), &ub("advisor"), &e1("Joy"));
        ep1.insert_terms(&e1("Kim"), &ub("takesCourse"), &e1("c1"));
        ep1.insert_terms(&e1("Joy"), &ub("teacherOf"), &e1("c1"));
        ep1.insert_terms(&e1("Joy"), &ub("type"), &ub("Professor"));
        ep1.insert_terms(&e1("Joy"), &ub("PhDDegreeFrom"), &e1("CMU"));
        ep1.insert_terms(&e1("CMU"), &ub("address"), &Term::lit("CCCC"));
        ep1.insert_terms(&e1("MIT"), &ub("address"), &Term::lit("XXX"));
        // Ann advises nobody yet but has joined; causes the ?P false
        // positive in the paper (advisor without teacherOf).
        ep1.insert_terms(&e1("Bob"), &ub("advisor"), &e1("Ann"));
        ep1.insert_terms(&e1("Bob"), &ub("takesCourse"), &e1("c2"));
        ep1.insert_terms(&e1("Ann"), &ub("type"), &ub("Professor"));
        ep1.insert_terms(&e1("Ann"), &ub("PhDDegreeFrom"), &e1("CMU"));

        let mut ep2 = TripleStore::new(Arc::clone(&dict));
        // EP2: Tim's PhD is from MIT — which lives at EP1 (the interlink).
        ep2.insert_terms(&e2("Lee"), &ub("advisor"), &e2("Tim"));
        ep2.insert_terms(&e2("Lee"), &ub("takesCourse"), &e2("c3"));
        ep2.insert_terms(&e2("Tim"), &ub("teacherOf"), &e2("c3"));
        ep2.insert_terms(&e2("Tim"), &ub("type"), &ub("Professor"));
        ep2.insert_terms(&e2("Tim"), &ub("PhDDegreeFrom"), &e1("MIT"));
        ep2.insert_terms(&e2("UoQ"), &ub("address"), &Term::lit("QQQ"));

        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("EP1", ep1)));
        fed.add(Arc::new(LocalEndpoint::new("EP2", ep2)));
        fed
    }

    fn qa(fed: &Federation) -> lusail_sparql::Query {
        parse_query(
            "PREFIX ub: <http://ub/> \
             SELECT ?S ?P ?U ?A WHERE { \
               ?S ub:advisor ?P . \
               ?S ub:takesCourse ?C . \
               ?P ub:PhDDegreeFrom ?U . \
               ?U ub:address ?A }",
            fed.dict(),
        )
        .unwrap()
    }

    fn analyze(fed: &Federation, q: &lusail_sparql::Query) -> GjvAnalysis {
        let net = Net::default();
        let ask_cache = ProbeCache::new(true);
        let sources = select_sources(fed, &q.pattern, &ask_cache, &net);
        let check_cache = KeyedCache::new(true);
        detect_gjvs(fed, &q.pattern.triples, &sources, &check_cache, &net)
    }

    #[test]
    fn paper_example_detects_u_as_gjv_but_not_s() {
        let fed = universities();
        let q = qa(&fed);
        let analysis = analyze(&fed, &q);
        // ?U straddles EP1/EP2 (Tim's MIT) → global.
        assert!(analysis.gjvs.contains(&"U".to_string()), "{analysis:?}");
        // ?S is local everywhere (every advisee takes a course and vice
        // versa at the same endpoint) → not global.
        assert!(!analysis.gjvs.contains(&"S".to_string()), "{analysis:?}");
        // The conflicting pair is (PhDDegreeFrom, address) = indices 2,3.
        assert!(analysis.conflicting(2, 3));
        assert!(!analysis.conflicting(0, 1));
    }

    #[test]
    fn false_positive_on_p_is_allowed() {
        // The paper's ?P example: Ann advises but teaches nothing, so the
        // subject-only check for ?P over (advisor, teacherOf) reports a
        // difference although grouping would have been safe. Lusail accepts
        // this as a false positive.
        let fed = universities();
        let q = parse_query(
            "PREFIX ub: <http://ub/> \
             SELECT ?S ?P ?C WHERE { ?S ub:advisor ?P . ?P ub:teacherOf ?C }",
            fed.dict(),
        )
        .unwrap();
        let analysis = analyze(&fed, &q);
        assert!(analysis.gjvs.contains(&"P".to_string()));
    }

    #[test]
    fn colocated_subject_join_is_not_global() {
        let fed = universities();
        let q = parse_query(
            "PREFIX ub: <http://ub/> \
             SELECT * WHERE { ?S ub:advisor ?P . ?S ub:takesCourse ?C }",
            fed.dict(),
        )
        .unwrap();
        let analysis = analyze(&fed, &q);
        assert!(analysis.gjvs.is_empty(), "{analysis:?}");
        assert!(analysis.conflicts.is_empty());
    }

    #[test]
    fn source_mismatch_is_gjv_without_check_queries() {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        a.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://x/p1"),
            &Term::iri("http://a/v"),
        );
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://a/v"),
            &Term::iri("http://x/p2"),
            &Term::iri("http://b/o"),
        );
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p1> ?v . ?v <http://x/p2> ?o }",
            fed.dict(),
        )
        .unwrap();
        let analysis = analyze(&fed, &q);
        assert_eq!(analysis.gjvs, ["v"]);
        assert!(analysis.conflicting(0, 1));
        assert_eq!(analysis.check_queries, 0);
    }

    #[test]
    fn object_object_join_straddling_endpoints_is_global() {
        // Found by the differential fuzzer (seed 0x990cd70b12c5d084):
        // ep0 holds (e11 p0 e12), ep1 holds (e12 p0 e12). Both endpoints
        // bind ?v0 = e12, with empty mutual set differences — yet the
        // cross-endpoint combinations (?v2 at ep0 × ?v3 at ep1) exist, so
        // ?v0 must be global. The home check catches it: at ep0 the
        // instance e12 has no local subject triple.
        let dict = Dictionary::shared();
        let e = |l: &str| Term::iri(format!("http://fuzz/{l}"));
        let mut ep0 = TripleStore::new(Arc::clone(&dict));
        ep0.insert_terms(&e("e11"), &e("p0"), &e("e12"));
        let mut ep1 = TripleStore::new(Arc::clone(&dict));
        ep1.insert_terms(&e("e12"), &e("p0"), &e("e12"));
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("ep0", ep0)));
        fed.add(Arc::new(LocalEndpoint::new("ep1", ep1)));
        let q = parse_query(
            "SELECT * WHERE { ?v2 <http://fuzz/p0> ?v0 . ?v3 <http://fuzz/p0> ?v0 . }",
            fed.dict(),
        )
        .unwrap();
        let analysis = analyze(&fed, &q);
        assert_eq!(analysis.gjvs, ["v0"], "{analysis:?}");
        assert!(analysis.conflicting(0, 1));
    }

    #[test]
    fn object_object_join_on_homed_instances_stays_local() {
        // Every object instance is a local subject at the only endpoint
        // where it matches, so the home check is empty and the pair may be
        // grouped (each endpoint computes its own complete cross product).
        let dict = Dictionary::shared();
        let e = |l: &str| Term::iri(format!("http://fuzz/{l}"));
        let mut ep0 = TripleStore::new(Arc::clone(&dict));
        ep0.insert_terms(&e("a"), &e("p"), &e("x"));
        ep0.insert_terms(&e("b"), &e("q"), &e("x"));
        ep0.insert_terms(&e("x"), &e("r"), &Term::lit("home"));
        let mut ep1 = TripleStore::new(Arc::clone(&dict));
        ep1.insert_terms(&e("c"), &e("p"), &e("y"));
        ep1.insert_terms(&e("d"), &e("q"), &e("y"));
        ep1.insert_terms(&e("y"), &e("r"), &Term::lit("home"));
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("ep0", ep0)));
        fed.add(Arc::new(LocalEndpoint::new("ep1", ep1)));
        let q = parse_query(
            "SELECT * WHERE { ?s <http://fuzz/p> ?v . ?t <http://fuzz/q> ?v . }",
            fed.dict(),
        )
        .unwrap();
        let analysis = analyze(&fed, &q);
        assert!(analysis.gjvs.is_empty(), "{analysis:?}");
        assert!(analysis.conflicts.is_empty());
    }

    /// Mini-fuzz for [`stats_check_answer`]: across seeded random stores
    /// and every probe shape the detector builds, a conclusive local
    /// answer must equal evaluating the very same probe at the endpoint.
    /// (The public-API property test in `lusail-testkit` covers the
    /// ask/count paths; the check-probe builders are private to this
    /// module, so their soundness is pinned here.)
    #[test]
    fn stats_check_answers_match_wire_evaluation() {
        let mut conclusive = 0u32;
        let mut nonempty_seen = false;
        let mut empty_seen = false;
        for seed in 0..48u64 {
            let dict = Dictionary::shared();
            let e = |l: String| Term::iri(format!("http://fz/{l}"));
            let preds: Vec<Term> = (0..3).map(|i| e(format!("p{i}"))).collect();
            let ty = e("T".into());
            let type_pred = e("type".into());
            let mut st = TripleStore::new(Arc::clone(&dict));
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut rng = move || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 33
            };
            for s in 0..(rng() % 8) {
                let subj = e(format!("s{s}"));
                for (pi, p) in preds.iter().enumerate() {
                    if rng() % 2 == 0 {
                        let o = match rng() % 3 {
                            0 => e(format!("s{}", rng() % 8)),
                            1 => e(format!("o{}", rng() % 4)),
                            _ => Term::lit(format!("l{pi}")),
                        };
                        st.insert_terms(&subj, p, &o);
                    }
                }
                if rng() % 3 == 0 {
                    st.insert_terms(&subj, &type_pred, &ty);
                }
            }
            use lusail_endpoint::SparqlEndpoint;
            let stats = lusail_store::EndpointStats::build(&st);
            let ep = lusail_endpoint::LocalEndpoint::new("E", st);
            let pid: Vec<TermId> = preds.iter().map(|p| dict.encode(p)).collect();
            let ty_id = dict.encode(&ty);
            let v = |n: &str| PatternTerm::Var(n.to_string());
            let c = PatternTerm::Const;
            // The type pattern the detector would attach (index 0 of the
            // `triples` slice handed to the builders).
            let type_tp = TriplePattern::new(v("v"), c(dict.encode(&type_pred)), c(ty_id));
            let triples = [type_tp];
            let keeps = [
                TriplePattern::new(v("v"), c(pid[0]), v("b")),
                TriplePattern::new(v("a"), c(pid[0]), v("v")),
                TriplePattern::new(c(dict.encode(&e("s0".into()))), c(pid[0]), v("v")),
                TriplePattern::new(v("v"), c(pid[0]), v("v")),
                TriplePattern::new(v("v"), v("k"), v("b")),
            ];
            let mut queries: Vec<Query> = Vec::new();
            for keep in &keeps {
                for probe in [
                    TriplePattern::new(v("v"), c(pid[1]), v("x")),
                    TriplePattern::new(v("x"), c(pid[1]), v("v")),
                    TriplePattern::new(v("v"), c(pid[1]), v("b")),
                    // Variable-predicate probes: after `check_query`'s
                    // generalization these produce the home-shaped and
                    // correlated inner triples (`?v ?x ?v` repeats the
                    // join variable; `?b`/`?k` stay shared with the kept
                    // pattern) that route through — or must be rejected
                    // by — the home-detection branch.
                    TriplePattern::new(v("v"), v("x"), v("v")),
                    TriplePattern::new(v("v"), v("x"), v("a")),
                    TriplePattern::new(v("v"), v("x"), v("b")),
                    TriplePattern::new(v("a"), v("x"), v("v")),
                    TriplePattern::new(v("v"), v("b"), v("x")),
                    TriplePattern::new(v("v"), v("k"), v("x")),
                ] {
                    for type_info in [None, Some((0usize, ty_id))] {
                        queries.push(check_query("v", keep, &probe, type_info, &triples).0);
                    }
                }
                for type_info in [None, Some((0usize, ty_id))] {
                    queries.push(home_check_query("v", keep, type_info, &triples).0);
                }
            }
            for q in &queries {
                let Some(local) = stats_check_answer(&stats, q) else {
                    continue;
                };
                conclusive += 1;
                let wire = !ep.select(q).unwrap().is_empty();
                assert_eq!(
                    local, wire,
                    "seed {seed}: conclusive stats answer diverged from \
                     wire evaluation for {q:?}"
                );
                nonempty_seen |= wire;
                empty_seen |= !wire;
            }
        }
        // The sweep must actually exercise the conclusive paths, both ways.
        assert!(conclusive > 100, "only {conclusive} conclusive answers");
        assert!(nonempty_seen && empty_seen);
    }

    #[test]
    fn stats_elide_check_probes_without_changing_the_analysis() {
        let fed = universities();
        let q = qa(&fed);
        let baseline = analyze(&fed, &q);
        let wire = fed.stats_snapshot();
        for id in 0..fed.len() {
            let mut st = TripleStore::new(Arc::clone(fed.dict()));
            rebuild_endpoint_store(&fed, id, &mut st);
            fed.attach_stats(id, Arc::new(lusail_store::EndpointStats::build(&st)));
        }
        let with_stats = analyze(&fed, &q);
        assert_eq!(with_stats.gjvs, baseline.gjvs);
        assert_eq!(with_stats.conflicts, baseline.conflicts);
        // Some check selects were answered locally: strictly fewer wire
        // selects than the baseline run issued.
        let baseline_selects = wire.select_requests;
        let stats_selects = fed.stats_snapshot().select_requests - baseline_selects;
        assert!(
            stats_selects < baseline_selects,
            "stats run issued {stats_selects} selects vs {baseline_selects}"
        );
    }

    /// Re-creates endpoint `id`'s triples (the trait object hides the
    /// store, so tests rebuild it from the same fixture data).
    fn rebuild_endpoint_store(fed: &Federation, id: usize, st: &mut TripleStore) {
        let ub = |l: &str| Term::iri(format!("http://ub/{l}"));
        let e1 = |l: &str| Term::iri(format!("http://ep1/{l}"));
        let e2 = |l: &str| Term::iri(format!("http://ep2/{l}"));
        if fed.endpoint(id).name() == "EP1" {
            st.insert_terms(&e1("Kim"), &ub("advisor"), &e1("Joy"));
            st.insert_terms(&e1("Kim"), &ub("takesCourse"), &e1("c1"));
            st.insert_terms(&e1("Joy"), &ub("teacherOf"), &e1("c1"));
            st.insert_terms(&e1("Joy"), &ub("type"), &ub("Professor"));
            st.insert_terms(&e1("Joy"), &ub("PhDDegreeFrom"), &e1("CMU"));
            st.insert_terms(&e1("CMU"), &ub("address"), &Term::lit("CCCC"));
            st.insert_terms(&e1("MIT"), &ub("address"), &Term::lit("XXX"));
            st.insert_terms(&e1("Bob"), &ub("advisor"), &e1("Ann"));
            st.insert_terms(&e1("Bob"), &ub("takesCourse"), &e1("c2"));
            st.insert_terms(&e1("Ann"), &ub("type"), &ub("Professor"));
            st.insert_terms(&e1("Ann"), &ub("PhDDegreeFrom"), &e1("CMU"));
        } else {
            st.insert_terms(&e2("Lee"), &ub("advisor"), &e2("Tim"));
            st.insert_terms(&e2("Lee"), &ub("takesCourse"), &e2("c3"));
            st.insert_terms(&e2("Tim"), &ub("teacherOf"), &e2("c3"));
            st.insert_terms(&e2("Tim"), &ub("type"), &ub("Professor"));
            st.insert_terms(&e2("Tim"), &ub("PhDDegreeFrom"), &e1("MIT"));
            st.insert_terms(&e2("UoQ"), &ub("address"), &Term::lit("QQQ"));
        }
    }

    #[test]
    fn variable_predicate_join_is_conservatively_global() {
        let fed = universities();
        let q = parse_query(
            "SELECT * WHERE { ?s ?p ?v . ?v <http://ub/address> ?a }",
            fed.dict(),
        )
        .unwrap();
        let analysis = analyze(&fed, &q);
        // ?v occurs with a variable-predicate pattern → conservative GJV
        // (or source-mismatch GJV, depending on data); either way global.
        assert!(analysis.gjvs.contains(&"v".to_string()));
    }
}
