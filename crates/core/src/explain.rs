//! `EXPLAIN`: run Lusail's compile-time pipeline (source selection, LADE,
//! cost model) without executing, and render the resulting plan.
//!
//! `EXPLAIN ANALYZE` goes further: it *executes* the query with an
//! enabled [`TraceSink`] and renders the plan tree annotated with what
//! actually happened — request counts per kind (aggregated, because
//! concurrent request events arrive unordered), actual cardinalities,
//! VALUES-block traffic, each hash-join step with its planned cost, and
//! the phase wall times. All wall times come from the engine's
//! injectable [`Clock`](lusail_endpoint::Clock), so under the test
//! `ManualClock` the render is byte-identical across runs.
//!
//! Used by the CLI's `explain` subcommand and by tests that assert on
//! planning decisions without paying for execution.

use crate::cache::{KeyedCache, ProbeCache};
use crate::cost::{decide_delays, estimate_cardinalities};
use crate::decompose::{decompose, is_disjoint};
use crate::engine::Lusail;
use crate::gjv::detect_gjvs;
use crate::metrics::QueryMetrics;
use crate::source_selection::select_sources;
use crate::trace::{QueryTrace, RequestKind, TraceEvent, TraceSink};
use lusail_endpoint::{Federation, FederationError};
use lusail_rdf::Dictionary;
use lusail_sparql::ast::{PatternTerm, Query, TriplePattern};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One subquery in the plan.
#[derive(Debug, Clone)]
pub struct SubqueryPlan {
    /// The subquery's patterns, rendered as SPARQL.
    pub triples: Vec<String>,
    /// Names of its relevant endpoints.
    pub sources: Vec<String>,
    /// The projected variables.
    pub projection: Vec<String>,
    /// Estimated cardinality `C(sq)`.
    pub cardinality: u64,
    /// Whether SAPE delays it.
    pub delayed: bool,
}

/// The compile-time plan for a query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Per-pattern relevant endpoint names.
    pub sources: Vec<(String, Vec<String>)>,
    /// Detected global join variables.
    pub gjvs: Vec<String>,
    /// True if the whole query ships unchanged to every endpoint.
    pub disjoint: bool,
    /// The subqueries (empty when `disjoint`).
    pub subqueries: Vec<SubqueryPlan>,
    /// Check queries evaluated during analysis.
    pub check_queries: u64,
}

impl QueryPlan {
    /// Renders the plan as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "source selection:");
        for (tp, srcs) in &self.sources {
            let _ = writeln!(out, "  {tp}  @ [{}]", srcs.join(", "));
        }
        let _ = writeln!(
            out,
            "global join variables: [{}]  ({} check queries)",
            self.gjvs.join(", "),
            self.check_queries
        );
        if self.disjoint {
            let _ = writeln!(
                out,
                "plan: DISJOINT — ship the whole query to every relevant \
                 endpoint and concatenate"
            );
            return out;
        }
        let _ = writeln!(out, "plan: {} subqueries", self.subqueries.len());
        for (i, sq) in self.subqueries.iter().enumerate() {
            let _ = writeln!(
                out,
                "  subquery {} {}  est. cardinality {}  @ [{}]",
                i + 1,
                if sq.delayed {
                    "[DELAYED: bound VALUES evaluation]"
                } else {
                    "[concurrent]"
                },
                sq.cardinality,
                sq.sources.join(", ")
            );
            for tp in &sq.triples {
                let _ = writeln!(out, "      {tp}");
            }
            let _ = writeln!(out, "      project: ?{}", sq.projection.join(" ?"));
        }
        out
    }
}

pub(crate) fn render_pattern(tp: &TriplePattern, dict: &Dictionary) -> String {
    let term = |t: &PatternTerm| match t {
        PatternTerm::Var(v) => format!("?{v}"),
        PatternTerm::Const(id) => dict.decode(*id).to_string(),
    };
    format!("{} {} {}", term(&tp.s), term(&tp.p), term(&tp.o))
}

impl Lusail {
    /// Produces the compile-time plan for `query` without executing it.
    /// Probes (ASK / check / COUNT) do run against the endpoints, exactly
    /// as the execution path would issue them, and are cached the same
    /// way.
    pub fn explain(&self, fed: &Federation, query: &Query) -> QueryPlan {
        // Use private-but-crate-visible caches through fresh ones when the
        // engine's are disabled; the engine's caches are reachable via the
        // same execution path, so reuse them by running the same phases.
        let net = self.fresh_net();
        let ask_cache = ProbeCache::new(true);
        let check_cache = KeyedCache::new(true);
        let count_cache = ProbeCache::new(true);

        let dict = fed.dict();
        let sources = select_sources(fed, &query.pattern, &ask_cache, &net);
        let rendered_sources: Vec<(String, Vec<String>)> = sources
            .iter()
            .map(|(tp, srcs)| {
                (
                    render_pattern(tp, dict),
                    srcs.iter()
                        .map(|&id| fed.endpoint(id).name().to_string())
                        .collect(),
                )
            })
            .collect();

        let analysis = detect_gjvs(fed, &query.pattern.triples, &sources, &check_cache, &net);
        let simple_pattern = query.pattern.optionals.is_empty()
            && query.pattern.unions.is_empty()
            && query.pattern.not_exists.is_empty()
            && query.pattern.values.is_none()
            && !query.pattern.triples.is_empty();
        let disjoint = simple_pattern && is_disjoint(&query.pattern.triples, &sources, &analysis);

        let mut plan = QueryPlan {
            sources: rendered_sources,
            gjvs: analysis.gjvs.clone(),
            disjoint,
            subqueries: Vec::new(),
            check_queries: analysis.check_queries,
        };
        if disjoint {
            return plan;
        }

        let subqueries = decompose(&query.pattern.triples, &sources, &analysis);
        let cardinality = if subqueries.len() > 1 {
            estimate_cardinalities(fed, &net, &subqueries, &count_cache)
        } else {
            vec![0; subqueries.len()]
        };
        let fanouts: Vec<usize> = subqueries.iter().map(|sq| sq.sources.len()).collect();
        let delayed = if subqueries.len() > 1 {
            decide_delays(&cardinality, &fanouts, self.config().delay_policy)
        } else {
            vec![false; subqueries.len()]
        };
        plan.subqueries = subqueries
            .iter()
            .enumerate()
            .map(|(i, sq)| SubqueryPlan {
                triples: sq
                    .triples
                    .iter()
                    .map(|tp| render_pattern(tp, dict))
                    .collect(),
                sources: sq
                    .sources
                    .iter()
                    .map(|&id| fed.endpoint(id).name().to_string())
                    .collect(),
                projection: sq.projection.clone(),
                cardinality: cardinality[i],
                delayed: delayed[i],
            })
            .collect();
        plan
    }

    /// `EXPLAIN ANALYZE`: executes `query` with tracing enabled and
    /// renders the annotated plan. The query *does* run in full — results
    /// are discarded, the trace is kept.
    pub fn explain_analyze(
        &self,
        fed: &Federation,
        query: &Query,
    ) -> Result<String, FederationError> {
        self.explain_analyze_with(fed, query, &lusail_endpoint::ExecOptions::default())
    }

    /// [`Lusail::explain_analyze`] under explicit
    /// [`ExecOptions`](lusail_endpoint::ExecOptions): the query runs with
    /// the given worker budget and deadline, with tracing force-enabled
    /// (any sink in `opts.trace` is replaced by the report's own). The
    /// rendered report is byte-identical at every thread budget.
    pub fn explain_analyze_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &lusail_endpoint::ExecOptions,
    ) -> Result<String, FederationError> {
        let sink = TraceSink::enabled();
        let opts = opts.clone().with_trace(sink.clone());
        let result = self.execute_with(fed, query, &opts)?;
        let trace = QueryTrace::from_sink(&sink);
        Ok(render_analyze(&trace, Some(&result.metrics)))
    }
}

/// Renders a finished [`QueryTrace`] as the `EXPLAIN ANALYZE` report.
/// Request events are aggregated per kind (their emission order is not
/// deterministic under concurrency); everything else is rendered in the
/// deterministic order the engine's sequential planning path emitted it.
/// `metrics` adds the phase wall-time line; baseline engines, which trace
/// requests but keep no phase metrics, pass `None`.
pub fn render_analyze(trace: &QueryTrace, metrics: Option<&QueryMetrics>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "EXPLAIN ANALYZE");

    let _ = writeln!(out, "requests:");
    for kind in RequestKind::ALL {
        let s = trace.requests(kind);
        let _ = writeln!(
            out,
            "  {:<6}  {} requests  {} wire attempts  {} failed",
            kind.name(),
            s.requests,
            s.attempts,
            s.failures
        );
    }

    if let Some(TraceEvent::Decomposed { subqueries, gjvs }) = trace
        .events
        .iter()
        .find(|ev| matches!(ev, TraceEvent::Decomposed { .. }))
    {
        let _ = writeln!(
            out,
            "decomposition: {subqueries} subqueries  ({gjvs} global join variables)"
        );
    }

    // Actual per-subquery outcomes, keyed by index. At the top level each
    // subquery is evaluated exactly once (concurrent in phase 1 or bound
    // in phase 2); nested-group re-evaluations overwrite, which keeps the
    // render small rather than exhaustive.
    let mut actual: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let mut promoted: Vec<usize> = Vec::new();
    for ev in &trace.events {
        match ev {
            TraceEvent::SubqueryEvaluated {
                index,
                rows,
                partitions,
            } => {
                actual.insert(*index, (*rows, *partitions));
            }
            TraceEvent::SubqueryPromoted { index } => promoted.push(*index),
            _ => {}
        }
    }

    let mut planned: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|ev| matches!(ev, TraceEvent::SubqueryPlanned { .. }))
        .collect();
    planned.sort_by_key(|ev| match ev {
        TraceEvent::SubqueryPlanned { index, .. } => *index,
        _ => usize::MAX,
    });
    for ev in planned {
        let TraceEvent::SubqueryPlanned {
            index,
            patterns,
            sources,
            cardinality,
            delayed,
            delay_reason,
            ..
        } = ev
        else {
            continue;
        };
        let mode = match delay_reason {
            Some(reason) => format!("[DELAYED: {reason}]"),
            None if *delayed => "[DELAYED]".to_string(),
            None if promoted.contains(index) => "[promoted to concurrent]".to_string(),
            None => "[concurrent]".to_string(),
        };
        let actual_part = match actual.get(index) {
            Some((rows, parts)) => format!("actual rows {rows} in {parts} partition(s)"),
            None => "not evaluated".to_string(),
        };
        let _ = writeln!(
            out,
            "  subquery {} {}  est. cardinality {}  {}  @ {} endpoint(s)",
            index + 1,
            mode,
            cardinality,
            actual_part,
            sources
        );
        for tp in patterns {
            let _ = writeln!(out, "      {tp}");
        }
    }

    let (blocks, bindings) = trace.values_batch_totals();
    if blocks > 0 {
        let _ = writeln!(
            out,
            "values traffic: {blocks} block(s), {bindings} binding(s)"
        );
    }

    let joins = trace.join_steps();
    if !joins.is_empty() {
        let _ = writeln!(out, "joins:");
        for (i, ev) in joins.iter().enumerate() {
            if let TraceEvent::JoinStep {
                left_rows,
                right_rows,
                output_rows,
                cost,
            } = ev
            {
                let _ = writeln!(
                    out,
                    "  step {}: {} x {} -> {} rows  (cost {:.1})",
                    i + 1,
                    left_rows,
                    right_rows,
                    output_rows,
                    cost
                );
            }
        }
    }

    // Resilience activity (circuit transitions, failovers, hedges) is
    // aggregated into sorted counts: the events are emitted by concurrent
    // workers, so their order is not deterministic but their multiset is.
    // The section is omitted entirely on a fault-free run, keeping the
    // fault-free goldens byte-identical.
    if trace.has_resilience_events() {
        let _ = writeln!(out, "resilience:");
        let mut health: BTreeMap<(usize, &str, &str), u64> = BTreeMap::new();
        let mut failovers: BTreeMap<(usize, usize, &str), u64> = BTreeMap::new();
        let mut hedges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for ev in &trace.events {
            match ev {
                TraceEvent::HealthTransition { endpoint, from, to } => {
                    *health
                        .entry((*endpoint, from.name(), to.name()))
                        .or_default() += 1;
                }
                TraceEvent::FailedOver { from, to, kind, .. } => {
                    *failovers.entry((*from, *to, kind.name())).or_default() += 1;
                }
                TraceEvent::Hedged { primary, replica } => {
                    *hedges.entry((*primary, *replica)).or_default() += 1;
                }
                _ => {}
            }
        }
        for ((ep, from, to), n) in &health {
            let _ = writeln!(out, "  health: endpoint {ep} {from} -> {to}  ({n}x)");
        }
        for ((from, to, kind), n) in &failovers {
            let _ = writeln!(out, "  failover: endpoint {from} -> {to} on {kind}  ({n}x)");
        }
        for ((primary, replica), n) in &hedges {
            let _ = writeln!(
                out,
                "  hedged: endpoint {primary} raced replica {replica}  ({n}x)"
            );
        }
    }

    // Statistics activity: what the offline summaries answered locally
    // (each line-item elided exactly one wire probe of that kind). The
    // section is omitted when the run had no statistics attached, keeping
    // the stats-free goldens byte-identical.
    if trace.has_stats_events() {
        let _ = writeln!(out, "statistics:");
        if let Some((endpoints, sets)) = trace.stats_loaded() {
            let _ = writeln!(
                out,
                "  loaded: {endpoints} endpoint(s), {sets} characteristic set(s)"
            );
        }
        let _ = writeln!(
            out,
            "  answered locally: ask {}, count {}, check {}  (probes elided: {})",
            trace.stats_answered(RequestKind::Ask),
            trace.stats_answered(RequestKind::Count),
            trace.stats_answered(RequestKind::Check),
            trace.stats_answered(RequestKind::Ask)
                + trace.stats_answered(RequestKind::Count)
                + trace.stats_answered(RequestKind::Check),
        );
    }

    if let Some(m) = metrics {
        let _ = writeln!(
            out,
            "phases: source selection {:?}, analysis {:?}, execution {:?}, total {:?}",
            m.source_selection, m.analysis, m.execution, m.total
        );
    }

    match trace
        .events
        .iter()
        .find(|ev| matches!(ev, TraceEvent::QueryFinished { .. }))
    {
        Some(TraceEvent::QueryFinished { rows, complete }) => {
            let _ = writeln!(out, "result: {rows} rows  complete: {complete}");
        }
        _ => {
            let _ = writeln!(out, "result: <no query-finished event>");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::Term;
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn fed() -> Federation {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        a.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://x/p"),
            &Term::iri("http://a/v"),
        );
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://a/v"),
            &Term::iri("http://x/q"),
            &Term::iri("http://b/o"),
        );
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        fed
    }

    #[test]
    fn explain_renders_gjvs_and_subqueries() {
        let f = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let plan = engine.explain(&f, &q);
        assert_eq!(plan.gjvs, ["v"]);
        assert!(!plan.disjoint);
        assert_eq!(plan.subqueries.len(), 2);
        let text = plan.render();
        assert!(text.contains("global join variables: [v]"));
        assert!(text.contains("subquery 1"));
        assert!(text.contains("?v <http://x/q> ?o"));
    }

    #[test]
    fn explain_detects_disjoint_plan() {
        let f = fed();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?v }", f.dict()).unwrap();
        let engine = Lusail::default();
        let plan = engine.explain(&f, &q);
        assert!(plan.disjoint);
        assert!(plan.render().contains("DISJOINT"));
    }

    #[test]
    fn golden_render_with_delayed_and_concurrent_phases() {
        // A deterministic plan exercising both execution phases: subquery
        // 1 matches ten triples at A while subquery 2 matches one at B, so
        // the two-point dominance rule delays the big one. The render is
        // pinned verbatim — it is the CLI `explain` output and the
        // differential repro's plan section, so format drift should be a
        // conscious choice.
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        for i in 0..10 {
            a.insert_terms(
                &Term::iri(format!("http://a/s{i}")),
                &Term::iri("http://x/p"),
                &Term::iri("http://b/v"),
            );
        }
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://b/v"),
            &Term::iri("http://x/q"),
            &Term::iri("http://b/o"),
        );
        let mut f = Federation::new(dict);
        f.add(Arc::new(LocalEndpoint::new("A", a)));
        f.add(Arc::new(LocalEndpoint::new("B", b)));
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap();
        let plan = Lusail::default().explain(&f, &q);
        let expected = "\
source selection:
  ?s <http://x/p> ?v  @ [A]
  ?v <http://x/q> ?o  @ [B]
global join variables: [v]  (0 check queries)
plan: 2 subqueries
  subquery 1 [DELAYED: bound VALUES evaluation]  est. cardinality 10  @ [A]
      ?s <http://x/p> ?v
      project: ?s ?v
  subquery 2 [concurrent]  est. cardinality 1  @ [B]
      ?v <http://x/q> ?o
      project: ?v ?o
";
        assert_eq!(plan.render(), expected);
    }

    #[test]
    fn golden_render_disjoint_plan() {
        let f = fed();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?v }", f.dict()).unwrap();
        let plan = Lusail::default().explain(&f, &q);
        let expected = "\
source selection:
  ?s <http://x/p> ?v  @ [A]
global join variables: []  (0 check queries)
plan: DISJOINT — ship the whole query to every relevant endpoint and concatenate
";
        assert_eq!(plan.render(), expected);
    }

    fn delayed_fed() -> Federation {
        // The golden-plan federation: ten matches at A, one at B, so the
        // two-point dominance rule delays subquery 1.
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        for i in 0..10 {
            a.insert_terms(
                &Term::iri(format!("http://a/s{i}")),
                &Term::iri("http://x/p"),
                &Term::iri("http://b/v"),
            );
        }
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://b/v"),
            &Term::iri("http://x/q"),
            &Term::iri("http://b/o"),
        );
        let mut f = Federation::new(dict);
        f.add(Arc::new(LocalEndpoint::new("A", a)));
        f.add(Arc::new(LocalEndpoint::new("B", b)));
        f
    }

    fn delayed_query(f: &Federation) -> Query {
        parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap()
    }

    #[test]
    fn explain_analyze_golden_under_manual_clock() {
        use lusail_endpoint::ManualClock;
        let f = delayed_fed();
        let q = delayed_query(&f);
        // Fresh engine + fresh manual clock per run: the report must be
        // byte-identical, and is pinned verbatim like the plan goldens.
        let run = || {
            Lusail::default()
                .with_clock(ManualClock::new())
                .explain_analyze(&f, &q)
                .unwrap()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "EXPLAIN ANALYZE must be deterministic");
        let expected = "\
EXPLAIN ANALYZE
requests:
  ask     4 requests  4 wire attempts  0 failed
  select  2 requests  2 wire attempts  0 failed
  count   2 requests  2 wire attempts  0 failed
  check   0 requests  0 wire attempts  0 failed
decomposition: 2 subqueries  (1 global join variables)
  subquery 1 [DELAYED: cardinality 10 > μ+kσ threshold 1.0]  \
est. cardinality 10  actual rows 10 in 1 partition(s)  @ 1 endpoint(s)
      ?s <http://x/p> ?v
  subquery 2 [concurrent]  est. cardinality 1  actual rows 1 in 1 partition(s)  @ 1 endpoint(s)
      ?v <http://x/q> ?o
values traffic: 1 block(s), 1 binding(s)
joins:
  step 1: 1 x 10 -> 10 rows  (cost 11.0)
phases: source selection 0ns, analysis 0ns, execution 0ns, total 0ns
result: 10 rows  complete: true
";
        assert_eq!(first, expected);
    }

    #[test]
    fn explain_analyze_golden_with_statistics() {
        use lusail_endpoint::ManualClock;
        use lusail_store::EndpointStats;
        // The delayed-fed golden with offline statistics attached to both
        // endpoints: every ASK (p/q presence at A/B) and both COUNT probes
        // (10 and 1 — exact, so the delay decision and the whole
        // downstream plan are unchanged) are answered locally, leaving
        // only the two data-bearing selects on the wire.
        let f = delayed_fed();
        let q = delayed_query(&f);
        let stats_for = |name: &str| {
            let mut st = TripleStore::new(Arc::clone(f.dict()));
            if name == "A" {
                for i in 0..10 {
                    st.insert_terms(
                        &Term::iri(format!("http://a/s{i}")),
                        &Term::iri("http://x/p"),
                        &Term::iri("http://b/v"),
                    );
                }
            } else {
                st.insert_terms(
                    &Term::iri("http://b/v"),
                    &Term::iri("http://x/q"),
                    &Term::iri("http://b/o"),
                );
            }
            Arc::new(EndpointStats::build(&st))
        };
        for id in 0..f.len() {
            f.attach_stats(id, stats_for(f.endpoint(id).name()));
        }
        let run = || {
            Lusail::default()
                .with_clock(ManualClock::new())
                .explain_analyze(&f, &q)
                .unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "stats EXPLAIN ANALYZE must be deterministic");
        let expected = "\
EXPLAIN ANALYZE
requests:
  ask     0 requests  0 wire attempts  0 failed
  select  2 requests  2 wire attempts  0 failed
  count   0 requests  0 wire attempts  0 failed
  check   0 requests  0 wire attempts  0 failed
decomposition: 2 subqueries  (1 global join variables)
  subquery 1 [DELAYED: cardinality 10 > μ+kσ threshold 1.0]  \
est. cardinality 10  actual rows 10 in 1 partition(s)  @ 1 endpoint(s)
      ?s <http://x/p> ?v
  subquery 2 [concurrent]  est. cardinality 1  actual rows 1 in 1 partition(s)  @ 1 endpoint(s)
      ?v <http://x/q> ?o
values traffic: 1 block(s), 1 binding(s)
joins:
  step 1: 1 x 10 -> 10 rows  (cost 11.0)
statistics:
  loaded: 2 endpoint(s), 2 characteristic set(s)
  answered locally: ask 4, count 2, check 0  (probes elided: 6)
phases: source selection 0ns, analysis 0ns, execution 0ns, total 0ns
result: 10 rows  complete: true
";
        assert_eq!(first, expected);
    }

    #[test]
    fn explain_analyze_golden_with_failover_to_replica() {
        use lusail_endpoint::{FaultProfile, FlakyEndpoint, ManualClock, RequestPolicy};
        use std::time::Duration;
        // A dead primary with a healthy replica: the ASK probe fails
        // terminally and trips the circuit (assumed relevant, degraded),
        // then the SELECT short-circuits on the open breaker, fails over
        // to the replica, and the query still completes. The render is
        // pinned verbatim like the fault-free golden above.
        let dict = Dictionary::shared();
        let triple = |st: &mut TripleStore| {
            st.insert_terms(
                &Term::iri("http://a/s"),
                &Term::iri("http://x/p"),
                &Term::iri("http://a/v"),
            );
        };
        let mut a = TripleStore::new(Arc::clone(&dict));
        triple(&mut a);
        let mut a2 = TripleStore::new(Arc::clone(&dict));
        triple(&mut a2);
        let mut f = Federation::new(dict);
        let primary = f.add(Arc::new(FlakyEndpoint::new(
            Arc::new(LocalEndpoint::new("A", a)),
            FaultProfile::dead(),
        )));
        f.add_replica(primary, Arc::new(LocalEndpoint::new("A-replica", a2)));
        assert_eq!(f.endpoint(primary).name(), "A");

        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?v }", f.dict()).unwrap();
        let policy = RequestPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(10),
            backoff_multiplier: 2.0,
            max_backoff: Duration::from_micros(100),
            jitter: 0.0,
            trip_threshold: 1,
            ..RequestPolicy::default()
        };
        let run = || {
            Lusail::default()
                .with_policy(policy)
                .with_clock(ManualClock::new())
                .explain_analyze(&f, &q)
                .unwrap()
        };
        let first = run();
        assert_eq!(
            first,
            run(),
            "failover EXPLAIN ANALYZE must be deterministic"
        );
        let expected = "\
EXPLAIN ANALYZE
requests:
  ask     1 requests  1 wire attempts  1 failed
  select  2 requests  1 wire attempts  1 failed
  count   0 requests  0 wire attempts  0 failed
  check   0 requests  0 wire attempts  0 failed
decomposition: 1 subqueries  (0 global join variables)
resilience:
  health: endpoint 0 closed -> open  (1x)
  failover: endpoint 0 -> 1 on select  (1x)
phases: source selection 0ns, analysis 0ns, execution 0ns, total 0ns
result: 1 rows  complete: true
";
        assert_eq!(first, expected);
    }

    #[test]
    fn disabled_sink_records_no_events_during_execution() {
        let f = delayed_fed();
        let q = delayed_query(&f);
        let sink = TraceSink::disabled();
        let opts = lusail_endpoint::ExecOptions::default().with_trace(sink.clone());
        let result = Lusail::default().execute_with(&f, &q, &opts).unwrap();
        assert!(!result.solutions.is_empty());
        // The zero-sink path records (and allocates) nothing.
        assert!(!sink.is_enabled());
        assert!(sink.is_empty());
        assert!(sink.events().is_empty());
    }

    #[test]
    fn explain_does_not_fetch_data() {
        let f = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap();
        let before = f.stats_snapshot();
        let _ = Lusail::default().explain(&f, &q);
        let window = f.stats_snapshot().since(&before);
        // Probes only: ASK + check + COUNT, no unbounded SELECT rows.
        assert!(window.rows_returned <= window.total_requests());
    }
}
