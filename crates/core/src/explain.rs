//! `EXPLAIN`: run Lusail's compile-time pipeline (source selection, LADE,
//! cost model) without executing, and render the resulting plan.
//!
//! Used by the CLI's `explain` subcommand and by tests that assert on
//! planning decisions without paying for execution.

use crate::cache::{KeyedCache, ProbeCache};
use crate::cost::{decide_delays, estimate_cardinalities};
use crate::decompose::{decompose, is_disjoint};
use crate::engine::Lusail;
use crate::gjv::detect_gjvs;
use crate::source_selection::select_sources;
use lusail_endpoint::Federation;
use lusail_rdf::Dictionary;
use lusail_sparql::ast::{PatternTerm, Query, TriplePattern};
use std::fmt::Write as _;

/// One subquery in the plan.
#[derive(Debug, Clone)]
pub struct SubqueryPlan {
    /// The subquery's patterns, rendered as SPARQL.
    pub triples: Vec<String>,
    /// Names of its relevant endpoints.
    pub sources: Vec<String>,
    /// The projected variables.
    pub projection: Vec<String>,
    /// Estimated cardinality `C(sq)`.
    pub cardinality: u64,
    /// Whether SAPE delays it.
    pub delayed: bool,
}

/// The compile-time plan for a query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Per-pattern relevant endpoint names.
    pub sources: Vec<(String, Vec<String>)>,
    /// Detected global join variables.
    pub gjvs: Vec<String>,
    /// True if the whole query ships unchanged to every endpoint.
    pub disjoint: bool,
    /// The subqueries (empty when `disjoint`).
    pub subqueries: Vec<SubqueryPlan>,
    /// Check queries evaluated during analysis.
    pub check_queries: u64,
}

impl QueryPlan {
    /// Renders the plan as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "source selection:");
        for (tp, srcs) in &self.sources {
            let _ = writeln!(out, "  {tp}  @ [{}]", srcs.join(", "));
        }
        let _ = writeln!(
            out,
            "global join variables: [{}]  ({} check queries)",
            self.gjvs.join(", "),
            self.check_queries
        );
        if self.disjoint {
            let _ = writeln!(
                out,
                "plan: DISJOINT — ship the whole query to every relevant \
                 endpoint and concatenate"
            );
            return out;
        }
        let _ = writeln!(out, "plan: {} subqueries", self.subqueries.len());
        for (i, sq) in self.subqueries.iter().enumerate() {
            let _ = writeln!(
                out,
                "  subquery {} {}  est. cardinality {}  @ [{}]",
                i + 1,
                if sq.delayed {
                    "[DELAYED: bound VALUES evaluation]"
                } else {
                    "[concurrent]"
                },
                sq.cardinality,
                sq.sources.join(", ")
            );
            for tp in &sq.triples {
                let _ = writeln!(out, "      {tp}");
            }
            let _ = writeln!(out, "      project: ?{}", sq.projection.join(" ?"));
        }
        out
    }
}

fn render_pattern(tp: &TriplePattern, dict: &Dictionary) -> String {
    let term = |t: &PatternTerm| match t {
        PatternTerm::Var(v) => format!("?{v}"),
        PatternTerm::Const(id) => dict.decode(*id).to_string(),
    };
    format!("{} {} {}", term(&tp.s), term(&tp.p), term(&tp.o))
}

impl Lusail {
    /// Produces the compile-time plan for `query` without executing it.
    /// Probes (ASK / check / COUNT) do run against the endpoints, exactly
    /// as the execution path would issue them, and are cached the same
    /// way.
    pub fn explain(&self, fed: &Federation, query: &Query) -> QueryPlan {
        // Use private-but-crate-visible caches through fresh ones when the
        // engine's are disabled; the engine's caches are reachable via the
        // same execution path, so reuse them by running the same phases.
        let net = self.fresh_net();
        let ask_cache = ProbeCache::new(true);
        let check_cache = KeyedCache::new(true);
        let count_cache = ProbeCache::new(true);

        let dict = fed.dict();
        let sources = select_sources(fed, &query.pattern, &ask_cache, &net);
        let rendered_sources: Vec<(String, Vec<String>)> = sources
            .iter()
            .map(|(tp, srcs)| {
                (
                    render_pattern(tp, dict),
                    srcs.iter()
                        .map(|&id| fed.endpoint(id).name().to_string())
                        .collect(),
                )
            })
            .collect();

        let analysis = detect_gjvs(fed, &query.pattern.triples, &sources, &check_cache, &net);
        let simple_pattern = query.pattern.optionals.is_empty()
            && query.pattern.unions.is_empty()
            && query.pattern.not_exists.is_empty()
            && query.pattern.values.is_none()
            && !query.pattern.triples.is_empty();
        let disjoint = simple_pattern && is_disjoint(&query.pattern.triples, &sources, &analysis);

        let mut plan = QueryPlan {
            sources: rendered_sources,
            gjvs: analysis.gjvs.clone(),
            disjoint,
            subqueries: Vec::new(),
            check_queries: analysis.check_queries,
        };
        if disjoint {
            return plan;
        }

        let subqueries = decompose(&query.pattern.triples, &sources, &analysis);
        let cardinality = if subqueries.len() > 1 {
            estimate_cardinalities(fed, &net, &subqueries, &count_cache)
        } else {
            vec![0; subqueries.len()]
        };
        let fanouts: Vec<usize> = subqueries.iter().map(|sq| sq.sources.len()).collect();
        let delayed = if subqueries.len() > 1 {
            decide_delays(&cardinality, &fanouts, self.config().delay_policy)
        } else {
            vec![false; subqueries.len()]
        };
        plan.subqueries = subqueries
            .iter()
            .enumerate()
            .map(|(i, sq)| SubqueryPlan {
                triples: sq
                    .triples
                    .iter()
                    .map(|tp| render_pattern(tp, dict))
                    .collect(),
                sources: sq
                    .sources
                    .iter()
                    .map(|&id| fed.endpoint(id).name().to_string())
                    .collect(),
                projection: sq.projection.clone(),
                cardinality: cardinality[i],
                delayed: delayed[i],
            })
            .collect();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::Term;
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn fed() -> Federation {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        a.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://x/p"),
            &Term::iri("http://a/v"),
        );
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://a/v"),
            &Term::iri("http://x/q"),
            &Term::iri("http://b/o"),
        );
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        fed
    }

    #[test]
    fn explain_renders_gjvs_and_subqueries() {
        let f = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let plan = engine.explain(&f, &q);
        assert_eq!(plan.gjvs, ["v"]);
        assert!(!plan.disjoint);
        assert_eq!(plan.subqueries.len(), 2);
        let text = plan.render();
        assert!(text.contains("global join variables: [v]"));
        assert!(text.contains("subquery 1"));
        assert!(text.contains("?v <http://x/q> ?o"));
    }

    #[test]
    fn explain_detects_disjoint_plan() {
        let f = fed();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?v }", f.dict()).unwrap();
        let engine = Lusail::default();
        let plan = engine.explain(&f, &q);
        assert!(plan.disjoint);
        assert!(plan.render().contains("DISJOINT"));
    }

    #[test]
    fn golden_render_with_delayed_and_concurrent_phases() {
        // A deterministic plan exercising both execution phases: subquery
        // 1 matches ten triples at A while subquery 2 matches one at B, so
        // the two-point dominance rule delays the big one. The render is
        // pinned verbatim — it is the CLI `explain` output and the
        // differential repro's plan section, so format drift should be a
        // conscious choice.
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        for i in 0..10 {
            a.insert_terms(
                &Term::iri(format!("http://a/s{i}")),
                &Term::iri("http://x/p"),
                &Term::iri("http://b/v"),
            );
        }
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://b/v"),
            &Term::iri("http://x/q"),
            &Term::iri("http://b/o"),
        );
        let mut f = Federation::new(dict);
        f.add(Arc::new(LocalEndpoint::new("A", a)));
        f.add(Arc::new(LocalEndpoint::new("B", b)));
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap();
        let plan = Lusail::default().explain(&f, &q);
        let expected = "\
source selection:
  ?s <http://x/p> ?v  @ [A]
  ?v <http://x/q> ?o  @ [B]
global join variables: [v]  (0 check queries)
plan: 2 subqueries
  subquery 1 [DELAYED: bound VALUES evaluation]  est. cardinality 10  @ [A]
      ?s <http://x/p> ?v
      project: ?s ?v
  subquery 2 [concurrent]  est. cardinality 1  @ [B]
      ?v <http://x/q> ?o
      project: ?v ?o
";
        assert_eq!(plan.render(), expected);
    }

    #[test]
    fn golden_render_disjoint_plan() {
        let f = fed();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?v }", f.dict()).unwrap();
        let plan = Lusail::default().explain(&f, &q);
        let expected = "\
source selection:
  ?s <http://x/p> ?v  @ [A]
global join variables: []  (0 check queries)
plan: DISJOINT — ship the whole query to every relevant endpoint and concatenate
";
        assert_eq!(plan.render(), expected);
    }

    #[test]
    fn explain_does_not_fetch_data() {
        let f = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
            f.dict(),
        )
        .unwrap();
        let before = f.stats_snapshot();
        let _ = Lusail::default().explain(&f, &q);
        let window = f.stats_snapshot().since(&before);
        // Probes only: ASK + check + COUNT, no unbounded SELECT rows.
        assert!(window.rows_returned <= window.total_requests());
    }
}
