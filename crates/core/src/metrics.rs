//! Per-query metrics: phase timings and network counters.
//!
//! These are the quantities the paper's evaluation plots: response time
//! split into source selection / query analysis / query execution
//! (Fig. 10), number of remote requests (Fig. 3), and intermediate data
//! volume.

use lusail_endpoint::StatsSnapshot;
use std::time::Duration;

/// Everything measured while executing one query.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Wall time of the source-selection phase (ASK probes).
    pub source_selection: Duration,
    /// Wall time of the query-analysis phase (LADE check queries,
    /// decomposition, COUNT probes for the cost model).
    pub analysis: Duration,
    /// Wall time of the execution phase (SAPE).
    pub execution: Duration,
    /// Total wall time.
    pub total: Duration,
    /// Network counters accumulated during source selection.
    pub requests_source_selection: StatsSnapshot,
    /// Network counters accumulated during analysis.
    pub requests_analysis: StatsSnapshot,
    /// Network counters accumulated during execution.
    pub requests_execution: StatsSnapshot,
    /// Check queries evaluated by LADE (already contained in
    /// `requests_analysis`, split out for Fig. 10 commentary).
    pub check_queries: u64,
    /// Global join variables detected.
    pub gjvs: Vec<String>,
    /// Number of subqueries produced by decomposition (top-level group).
    pub subqueries: usize,
    /// How many of them the cost model delayed.
    pub delayed_subqueries: usize,
    /// Rows in the final result.
    pub result_rows: usize,
    /// ASK probes that failed and were degraded to "assume relevant".
    pub degraded_ask_probes: u64,
    /// LADE check queries that failed and were degraded to "assume
    /// conflict".
    pub degraded_check_queries: u64,
    /// COUNT probes that failed and fell back to the endpoint's total
    /// triple count.
    pub degraded_count_probes: u64,
}

impl QueryMetrics {
    /// Total remote requests across all phases.
    pub fn total_requests(&self) -> u64 {
        self.requests_source_selection.total_requests()
            + self.requests_analysis.total_requests()
            + self.requests_execution.total_requests()
    }

    /// Total bytes moved (both directions) across all phases.
    pub fn total_bytes(&self) -> u64 {
        let sum = |s: &StatsSnapshot| s.bytes_sent + s.bytes_returned;
        sum(&self.requests_source_selection)
            + sum(&self.requests_analysis)
            + sum(&self.requests_execution)
    }

    /// Accumulated simulated network time across all phases (nanoseconds).
    pub fn total_virtual_network_ns(&self) -> u64 {
        self.requests_source_selection.virtual_time_ns
            + self.requests_analysis.virtual_time_ns
            + self.requests_execution.virtual_time_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_phases() {
        let mut m = QueryMetrics::default();
        m.requests_source_selection.ask_requests = 4;
        m.requests_analysis.select_requests = 2;
        m.requests_analysis.count_requests = 3;
        m.requests_execution.select_requests = 5;
        assert_eq!(m.total_requests(), 14);
        m.requests_execution.bytes_sent = 10;
        m.requests_execution.bytes_returned = 20;
        m.requests_analysis.bytes_sent = 1;
        assert_eq!(m.total_bytes(), 31);
    }
}
