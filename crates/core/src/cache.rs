//! Memoization of ASK, check-query, and COUNT probes.
//!
//! Lusail "caches the results of previously submitted ASK queries in a hash
//! table" (§III). The cache key is a *normalized* triple pattern — variable
//! names are canonicalized by order of first appearance — so syntactically
//! different queries share probe results. Fig. 10(b,c) measures query
//! response time with and without this cache.

use lusail_endpoint::EndpointId;
use lusail_rdf::{FxHashMap, TermId};
use lusail_sparql::ast::{PatternTerm, TriplePattern};
use std::sync::Mutex;

/// A canonical form of a triple pattern: variables replaced by their index
/// of first appearance, constants kept.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternKey([KeyTerm; 3]);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyTerm {
    Var(u8),
    Const(TermId),
}

/// Normalizes a pattern into its cache key.
pub fn pattern_key(tp: &TriplePattern) -> PatternKey {
    let mut seen: Vec<String> = Vec::with_capacity(3);
    let mut norm = |t: &PatternTerm| match t {
        PatternTerm::Const(id) => KeyTerm::Const(*id),
        PatternTerm::Var(v) => {
            let idx = match seen.iter().position(|s| s == v) {
                Some(i) => i,
                None => {
                    seen.push(v.clone());
                    seen.len() - 1
                }
            };
            KeyTerm::Var(idx as u8)
        }
    };
    // Borrow checker: normalize in order.
    let s = norm(&tp.s);
    let p = norm(&tp.p);
    let o = norm(&tp.o);
    PatternKey([s, p, o])
}

/// A thread-safe memo table keyed by `(PatternKey, EndpointId)`.
pub struct ProbeCache<V: Copy> {
    enabled: bool,
    map: Mutex<FxHashMap<(PatternKey, EndpointId), V>>,
    hits: Mutex<u64>,
}

impl<V: Copy> ProbeCache<V> {
    /// Creates a cache; if `enabled` is false, every lookup misses.
    pub fn new(enabled: bool) -> Self {
        ProbeCache {
            enabled,
            map: Mutex::new(FxHashMap::default()),
            hits: Mutex::new(0),
        }
    }

    /// Looks up a memoized probe result.
    pub fn get(&self, key: &PatternKey, ep: EndpointId) -> Option<V> {
        if !self.enabled {
            return None;
        }
        let found = self.map.lock().unwrap().get(&(key.clone(), ep)).copied();
        if found.is_some() {
            *self.hits.lock().unwrap() += 1;
        }
        found
    }

    /// Stores a probe result.
    pub fn put(&self, key: PatternKey, ep: EndpointId, value: V) {
        if self.enabled {
            self.map.lock().unwrap().insert((key, ep), value);
        }
    }

    /// Number of cache hits so far (diagnostics).
    pub fn hits(&self) -> u64 {
        *self.hits.lock().unwrap()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (used between benchmark repetitions).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
        *self.hits.lock().unwrap() = 0;
    }
}

/// A generic string-keyed memo (used for check queries, whose identity
/// involves two patterns plus an optional type constraint).
pub struct KeyedCache<V: Copy> {
    enabled: bool,
    map: Mutex<FxHashMap<(String, EndpointId), V>>,
}

impl<V: Copy> KeyedCache<V> {
    /// Creates a cache; if `enabled` is false, every lookup misses.
    pub fn new(enabled: bool) -> Self {
        KeyedCache {
            enabled,
            map: Mutex::new(FxHashMap::default()),
        }
    }

    /// Looks up a memoized result.
    pub fn get(&self, key: &str, ep: EndpointId) -> Option<V> {
        if !self.enabled {
            return None;
        }
        self.map
            .lock()
            .unwrap()
            .get(&(key.to_string(), ep))
            .copied()
    }

    /// Stores a result.
    pub fn put(&self, key: String, ep: EndpointId, value: V) {
        if self.enabled {
            self.map.lock().unwrap().insert((key, ep), value);
        }
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    fn c(id: u32) -> PatternTerm {
        PatternTerm::Const(TermId(id))
    }

    #[test]
    fn keys_ignore_variable_names() {
        let a = TriplePattern::new(v("x"), c(1), v("y"));
        let b = TriplePattern::new(v("s"), c(1), v("o"));
        assert_eq!(pattern_key(&a), pattern_key(&b));
    }

    #[test]
    fn keys_distinguish_repeated_variables() {
        let a = TriplePattern::new(v("x"), c(1), v("x"));
        let b = TriplePattern::new(v("x"), c(1), v("y"));
        assert_ne!(pattern_key(&a), pattern_key(&b));
    }

    #[test]
    fn keys_distinguish_constants() {
        let a = TriplePattern::new(v("x"), c(1), v("y"));
        let b = TriplePattern::new(v("x"), c(2), v("y"));
        assert_ne!(pattern_key(&a), pattern_key(&b));
    }

    #[test]
    fn cache_roundtrip_and_hits() {
        let cache: ProbeCache<bool> = ProbeCache::new(true);
        let key = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        assert_eq!(cache.get(&key, 0), None);
        cache.put(key.clone(), 0, true);
        assert_eq!(cache.get(&key, 0), Some(true));
        assert_eq!(cache.get(&key, 1), None); // different endpoint
        assert_eq!(cache.hits(), 1);
        cache.clear();
        assert_eq!(cache.get(&key, 0), None);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache: ProbeCache<u64> = ProbeCache::new(false);
        let key = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        cache.put(key.clone(), 0, 42);
        assert_eq!(cache.get(&key, 0), None);
    }
}
