//! Memoization of ASK, check-query, and COUNT probes.
//!
//! Lusail "caches the results of previously submitted ASK queries in a hash
//! table" (§III). The cache key is a *normalized* triple pattern — variable
//! names are canonicalized by order of first appearance — so syntactically
//! different queries share probe results. Fig. 10(b,c) measures query
//! response time with and without this cache.

use lusail_endpoint::EndpointId;
use lusail_rdf::{FxHashMap, TermId};
use lusail_sparql::ast::{PatternTerm, TriplePattern};
use std::collections::VecDeque;
use std::sync::Mutex;

/// A canonical form of a triple pattern: variables replaced by their index
/// of first appearance, constants kept.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternKey([KeyTerm; 3]);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyTerm {
    Var(u8),
    Const(TermId),
}

/// Normalizes a pattern into its cache key.
pub fn pattern_key(tp: &TriplePattern) -> PatternKey {
    let mut seen: Vec<String> = Vec::with_capacity(3);
    let mut norm = |t: &PatternTerm| match t {
        PatternTerm::Const(id) => KeyTerm::Const(*id),
        PatternTerm::Var(v) => {
            let idx = match seen.iter().position(|s| s == v) {
                Some(i) => i,
                None => {
                    seen.push(v.clone());
                    seen.len() - 1
                }
            };
            KeyTerm::Var(idx as u8)
        }
    };
    // Borrow checker: normalize in order.
    let s = norm(&tp.s);
    let p = norm(&tp.p);
    let o = norm(&tp.o);
    PatternKey([s, p, o])
}

/// A thread-safe memo table keyed by `(PatternKey, EndpointId)`.
///
/// Optionally capacity-bounded: when full, inserting a *new* key evicts
/// the least-recently-used entry, so memory stays proportional to the
/// bound rather than the probe history. A hit counts as a touch, and the
/// touch is accounted under the same lock as the lookup itself — under
/// concurrent sharing (the server's cross-query cache) two racing hits
/// can interleave in either order but can never leave `order`
/// inconsistent with `map`. `new` builds an unbounded cache (the paper's
/// hash table); `with_capacity` bounds it.
pub struct ProbeCache<V: Copy> {
    enabled: bool,
    capacity: Option<usize>,
    inner: Mutex<ProbeCacheInner<V>>,
}

struct ProbeCacheInner<V> {
    map: FxHashMap<(PatternKey, EndpointId), V>,
    order: VecDeque<(PatternKey, EndpointId)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Copy> ProbeCache<V> {
    /// Creates an unbounded cache; if `enabled` is false, every lookup
    /// misses (and is not counted — the cache is never consulted).
    pub fn new(enabled: bool) -> Self {
        Self::build(enabled, None)
    }

    /// Creates a cache holding at most `capacity` entries.
    pub fn with_capacity(enabled: bool, capacity: usize) -> Self {
        Self::build(enabled, Some(capacity))
    }

    fn build(enabled: bool, capacity: Option<usize>) -> Self {
        ProbeCache {
            enabled,
            capacity,
            inner: Mutex::new(ProbeCacheInner {
                map: FxHashMap::default(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks up a memoized probe result, bumping the hit or miss counter.
    /// A hit also refreshes the entry's recency — the touch happens under
    /// the same lock as the lookup, so it is atomic with respect to
    /// concurrent readers and writers.
    pub fn get(&self, key: &PatternKey, ep: EndpointId) -> Option<V> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        let entry = (key.clone(), ep);
        let found = inner.map.get(&entry).copied();
        if found.is_some() {
            inner.hits += 1;
            // Only bounded caches maintain recency; an unbounded cache
            // never evicts, so the touch would be wasted work.
            if self.capacity.is_some() {
                if let Some(pos) = inner.order.iter().position(|e| *e == entry) {
                    inner.order.remove(pos);
                    inner.order.push_back(entry);
                }
            }
        } else {
            inner.misses += 1;
        }
        found
    }

    /// Stores a probe result, evicting the least-recently-used entry when
    /// a capacity bound is exceeded. Overwriting an existing key never
    /// evicts.
    pub fn put(&self, key: PatternKey, ep: EndpointId, value: V) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let entry = (key, ep);
        if inner.map.insert(entry.clone(), value).is_none() {
            inner.order.push_back(entry);
            if let Some(cap) = self.capacity {
                while inner.map.len() > cap {
                    match inner.order.pop_front() {
                        Some(oldest) => {
                            inner.map.remove(&oldest);
                            inner.evictions += 1;
                        }
                        None => break,
                    }
                }
            }
        }
    }

    /// Number of cache hits so far (diagnostics).
    pub fn hits(&self) -> u64 {
        self.inner.lock().unwrap().hits
    }

    /// Number of consulted-but-absent lookups so far (diagnostics).
    pub fn misses(&self) -> u64 {
        self.inner.lock().unwrap().misses
    }

    /// Number of entries evicted by the capacity bound so far — nonzero
    /// means the cache is saturated and recency actually matters.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters (used between benchmark
    /// repetitions).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }

    /// Drops every entry keyed to the given endpoint. Called when a query
    /// failed over away from the endpoint: probes answered before it went
    /// down are stale, and must not route the next query back to it.
    pub fn invalidate_endpoint(&self, ep: EndpointId) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.retain(|(_, e), _| *e != ep);
        inner.order.retain(|(_, e)| *e != ep);
    }
}

/// A generic string-keyed memo (used for check queries, whose identity
/// involves two patterns plus an optional type constraint).
pub struct KeyedCache<V: Copy> {
    enabled: bool,
    map: Mutex<FxHashMap<(String, EndpointId), V>>,
}

impl<V: Copy> KeyedCache<V> {
    /// Creates a cache; if `enabled` is false, every lookup misses.
    pub fn new(enabled: bool) -> Self {
        KeyedCache {
            enabled,
            map: Mutex::new(FxHashMap::default()),
        }
    }

    /// Looks up a memoized result.
    pub fn get(&self, key: &str, ep: EndpointId) -> Option<V> {
        if !self.enabled {
            return None;
        }
        self.map
            .lock()
            .unwrap()
            .get(&(key.to_string(), ep))
            .copied()
    }

    /// Stores a result.
    pub fn put(&self, key: String, ep: EndpointId, value: V) {
        if self.enabled {
            self.map.lock().unwrap().insert((key, ep), value);
        }
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }

    /// Drops every entry keyed to the given endpoint (stale after the
    /// endpoint failed mid-query).
    pub fn invalidate_endpoint(&self, ep: EndpointId) {
        self.map.lock().unwrap().retain(|(_, e), _| *e != ep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    fn c(id: u32) -> PatternTerm {
        PatternTerm::Const(TermId(id))
    }

    #[test]
    fn keys_ignore_variable_names() {
        let a = TriplePattern::new(v("x"), c(1), v("y"));
        let b = TriplePattern::new(v("s"), c(1), v("o"));
        assert_eq!(pattern_key(&a), pattern_key(&b));
    }

    #[test]
    fn keys_distinguish_repeated_variables() {
        let a = TriplePattern::new(v("x"), c(1), v("x"));
        let b = TriplePattern::new(v("x"), c(1), v("y"));
        assert_ne!(pattern_key(&a), pattern_key(&b));
    }

    #[test]
    fn keys_distinguish_constants() {
        let a = TriplePattern::new(v("x"), c(1), v("y"));
        let b = TriplePattern::new(v("x"), c(2), v("y"));
        assert_ne!(pattern_key(&a), pattern_key(&b));
    }

    #[test]
    fn cache_roundtrip_and_hits() {
        let cache: ProbeCache<bool> = ProbeCache::new(true);
        let key = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        assert_eq!(cache.get(&key, 0), None);
        cache.put(key.clone(), 0, true);
        assert_eq!(cache.get(&key, 0), Some(true));
        assert_eq!(cache.get(&key, 1), None); // different endpoint
        assert_eq!(cache.hits(), 1);
        cache.clear();
        assert_eq!(cache.get(&key, 0), None);
    }

    #[test]
    fn hit_and_miss_accounting_is_exact() {
        let cache: ProbeCache<u64> = ProbeCache::new(true);
        let key = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        assert_eq!(cache.get(&key, 0), None); // miss 1
        cache.put(key.clone(), 0, 7);
        assert_eq!(cache.get(&key, 0), Some(7)); // hit 1
        assert_eq!(cache.get(&key, 0), Some(7)); // hit 2
        assert_eq!(cache.get(&key, 1), None); // miss 2 (other endpoint)
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        cache.clear();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache: ProbeCache<u64> = ProbeCache::new(false);
        let key = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        cache.put(key.clone(), 0, 42);
        assert_eq!(cache.get(&key, 0), None);
        // A disabled cache is never consulted, so nothing is counted.
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn bounded_cache_evicts_oldest_insertion_first() {
        let cache: ProbeCache<u64> = ProbeCache::with_capacity(true, 2);
        let k1 = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        let k2 = pattern_key(&TriplePattern::new(v("x"), c(2), v("y")));
        let k3 = pattern_key(&TriplePattern::new(v("x"), c(3), v("y")));
        cache.put(k1.clone(), 0, 1);
        cache.put(k2.clone(), 0, 2);
        assert_eq!(cache.len(), 2);
        cache.put(k3.clone(), 0, 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&k1, 0), None); // oldest entry evicted
        assert_eq!(cache.get(&k2, 0), Some(2));
        assert_eq!(cache.get(&k3, 0), Some(3));
    }

    #[test]
    fn a_hit_refreshes_recency_so_the_cold_entry_is_evicted() {
        let cache: ProbeCache<u64> = ProbeCache::with_capacity(true, 2);
        let k1 = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        let k2 = pattern_key(&TriplePattern::new(v("x"), c(2), v("y")));
        let k3 = pattern_key(&TriplePattern::new(v("x"), c(3), v("y")));
        cache.put(k1.clone(), 0, 1);
        cache.put(k2.clone(), 0, 2);
        // Touch k1: under FIFO it would still be evicted next; under LRU
        // the untouched k2 is now the victim.
        assert_eq!(cache.get(&k1, 0), Some(1));
        cache.put(k3.clone(), 0, 3);
        assert_eq!(cache.get(&k1, 0), Some(1));
        assert_eq!(cache.get(&k2, 0), None);
        assert_eq!(cache.get(&k3, 0), Some(3));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn eviction_counter_tracks_saturation_and_resets_on_clear() {
        let cache: ProbeCache<u64> = ProbeCache::with_capacity(true, 1);
        assert_eq!(cache.evictions(), 0);
        for i in 0..5 {
            let k = pattern_key(&TriplePattern::new(v("x"), c(i), v("y")));
            cache.put(k, 0, u64::from(i));
        }
        assert_eq!(cache.evictions(), 4);
        cache.clear();
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn overwriting_an_existing_key_does_not_evict() {
        let cache: ProbeCache<u64> = ProbeCache::with_capacity(true, 2);
        let k1 = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        let k2 = pattern_key(&TriplePattern::new(v("x"), c(2), v("y")));
        cache.put(k1.clone(), 0, 1);
        cache.put(k2.clone(), 0, 2);
        cache.put(k1.clone(), 0, 10); // overwrite while full
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&k1, 0), Some(10));
        assert_eq!(cache.get(&k2, 0), Some(2));
    }

    #[test]
    fn invalidate_endpoint_drops_only_that_endpoints_entries() {
        let cache: ProbeCache<u64> = ProbeCache::with_capacity(true, 4);
        let k1 = pattern_key(&TriplePattern::new(v("x"), c(1), v("y")));
        let k2 = pattern_key(&TriplePattern::new(v("x"), c(2), v("y")));
        cache.put(k1.clone(), 0, 1);
        cache.put(k1.clone(), 1, 2);
        cache.put(k2.clone(), 0, 3);
        cache.invalidate_endpoint(0);
        assert_eq!(cache.get(&k1, 0), None);
        assert_eq!(cache.get(&k2, 0), None);
        assert_eq!(cache.get(&k1, 1), Some(2));
        // The eviction order stays consistent: filling the cache after
        // invalidation still evicts oldest-first without panicking.
        for i in 10..14 {
            cache.put(pattern_key(&TriplePattern::new(v("x"), c(i), v("y"))), 2, 0);
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache: ProbeCache<u64> = ProbeCache::new(true);
        for i in 0..100 {
            let k = pattern_key(&TriplePattern::new(v("x"), c(i), v("y")));
            cache.put(k, 0, u64::from(i));
        }
        assert_eq!(cache.len(), 100);
    }
}
